"""A small iterative solver with memory-fault injection.

The paper's Sec I motivation is that silent DRAM corruption "could lead
to scientific results being produced that were unknowingly erroneous"
(and its related work studies solver resilience).  This module provides
the minimal application substrate to quantify that: a Jacobi iteration
for the 2-D Poisson equation whose working set can suffer injected bit
flips at exact iterations, plus helpers to flip bits of IEEE-754 doubles
the way a DRAM upset would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def flip_float64_bit(value: float, bit: int) -> float:
    """Flip one bit (0 = LSB of the mantissa) of a float64's storage."""
    if not 0 <= bit < 64:
        raise ValueError("bit must be in 0..63")
    word = int.from_bytes(np.float64(value).tobytes(), "little") ^ (1 << bit)
    return float(np.frombuffer(word.to_bytes(8, "little"), dtype=np.float64)[0])


@dataclass(frozen=True)
class BitFlip:
    """One injected upset: cell (i, j), storage bit, iteration."""

    i: int
    j: int
    bit: int
    iteration: int


@dataclass(frozen=True)
class JacobiProblem:
    """A Poisson problem -laplace(u) = f on the unit square, u=0 boundary."""

    n: int = 64

    def point_source(self) -> np.ndarray:
        f = np.zeros((self.n, self.n))
        f[self.n // 2, self.n // 2] = -1.0
        return f

    def initial_guess(self) -> np.ndarray:
        return np.zeros((self.n, self.n))


@dataclass(frozen=True)
class SolveResult:
    solution: np.ndarray
    iterations: int
    residual: float

    @property
    def diverged(self) -> bool:
        return not np.isfinite(self.residual)


def jacobi_solve(
    problem: JacobiProblem,
    iterations: int,
    flips: tuple[BitFlip, ...] = (),
) -> SolveResult:
    """Run fixed-count Jacobi sweeps, injecting the given bit flips."""
    source = problem.point_source()
    u = problem.initial_guess()
    by_iteration: dict[int, list[BitFlip]] = {}
    for flip in flips:
        by_iteration.setdefault(flip.iteration, []).append(flip)
    for it in range(iterations):
        for flip in by_iteration.get(it, ()):
            u[flip.i, flip.j] = flip_float64_bit(float(u[flip.i, flip.j]), flip.bit)
        u[1:-1, 1:-1] = 0.25 * (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
            - source[1:-1, 1:-1]
        )
    with np.errstate(all="ignore"):
        lap = (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
            - 4.0 * u[1:-1, 1:-1]
        )
        residual = float(np.linalg.norm(lap - source[1:-1, 1:-1]))
    return SolveResult(solution=u, iterations=iterations, residual=residual)


def relative_error(result: SolveResult, reference: SolveResult) -> float:
    """Relative L2 distance between a corrupted run and the clean run."""
    with np.errstate(all="ignore"):
        denom = float(np.linalg.norm(reference.solution))
        if denom == 0.0:
            return 0.0
        return float(
            np.linalg.norm(result.solution - reference.solution) / denom
        )
