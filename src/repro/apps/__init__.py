"""Application substrate: how DRAM corruption reaches scientific results."""

from .impact import (
    Impact,
    ImpactPoint,
    ImpactStudy,
    bit_position_sweep,
    classify,
    injection_time_sweep,
)
from .jacobi import (
    BitFlip,
    JacobiProblem,
    SolveResult,
    flip_float64_bit,
    jacobi_solve,
    relative_error,
)

__all__ = [
    "BitFlip",
    "Impact",
    "ImpactPoint",
    "ImpactStudy",
    "JacobiProblem",
    "SolveResult",
    "bit_position_sweep",
    "classify",
    "flip_float64_bit",
    "injection_time_sweep",
    "jacobi_solve",
    "relative_error",
]
