"""SDC impact characterization: what a flipped bit does to the answer.

Sweeps bit positions (and injection times) over the Jacobi solver and
classifies each outcome the way an application scientist would experience
it: *benign* (washed out by the iteration's contraction), *silent error*
(finite but wrong answer — the paper's nightmare case), or *detectable
blow-up* (NaN/inf — at least you notice).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from .jacobi import BitFlip, JacobiProblem, jacobi_solve, relative_error


class Impact(str, Enum):
    BENIGN = "benign"          # below tolerance: indistinguishable
    SILENT = "silent"          # finite but wrong: unnoticed bad science
    BLOWUP = "blowup"          # NaN/inf: visible failure


@dataclass(frozen=True)
class ImpactPoint:
    """Outcome of one injected flip."""

    bit: int
    iteration: int
    relative_error: float
    impact: Impact


@dataclass(frozen=True)
class ImpactStudy:
    points: tuple[ImpactPoint, ...]

    def count(self, impact: Impact) -> int:
        return sum(1 for p in self.points if p.impact is impact)

    @property
    def silent_fraction(self) -> float:
        return self.count(Impact.SILENT) / len(self.points) if self.points else 0.0


def classify(rel_error: float, tolerance: float) -> Impact:
    if not np.isfinite(rel_error):
        return Impact.BLOWUP
    return Impact.SILENT if rel_error > tolerance else Impact.BENIGN


def bit_position_sweep(
    problem: JacobiProblem | None = None,
    iterations: int = 300,
    flip_iteration: int = 80,
    bits: tuple[int, ...] = tuple(range(0, 64, 4)) + (62, 63),
    tolerance: float = 1e-9,
    cell: tuple[int, int] | None = None,
) -> ImpactStudy:
    """One flip per bit position, fixed cell and injection time."""
    problem = problem or JacobiProblem()
    i, j = cell or (problem.n // 3, problem.n // 3)
    reference = jacobi_solve(problem, iterations)
    points = []
    for bit in bits:
        result = jacobi_solve(
            problem,
            iterations,
            flips=(BitFlip(i=i, j=j, bit=bit, iteration=flip_iteration),),
        )
        rel = relative_error(result, reference)
        points.append(
            ImpactPoint(
                bit=bit,
                iteration=flip_iteration,
                relative_error=rel,
                impact=classify(rel, tolerance),
            )
        )
    return ImpactStudy(points=tuple(points))


def injection_time_sweep(
    bit: int,
    problem: JacobiProblem | None = None,
    iterations: int = 300,
    flip_iterations: tuple[int, ...] = (10, 50, 100, 200, 290),
    tolerance: float = 1e-9,
) -> ImpactStudy:
    """The same bit flipped earlier or later in the run.

    Late flips have fewer contraction sweeps left to wash them out, so
    impact grows with injection time — the application-dependence the
    related work observes.
    """
    problem = problem or JacobiProblem()
    i = j = problem.n // 3
    reference = jacobi_solve(problem, iterations)
    points = []
    for when in flip_iterations:
        result = jacobi_solve(
            problem, iterations, flips=(BitFlip(i=i, j=j, bit=bit, iteration=when),)
        )
        rel = relative_error(result, reference)
        points.append(
            ImpactPoint(
                bit=bit,
                iteration=when,
                relative_error=rel,
                impact=classify(rel, tolerance),
            )
        )
    return ImpactStudy(points=tuple(points))
