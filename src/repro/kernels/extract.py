"""Extraction dedup kernels: repeated records -> independent errors.

Two observations are the same root-cause fault when they share
``(node, virtual address, flip mask)`` and sit within the merge window
(paper Sec II-C).  The vectorized kernel sorts the whole population
once (``np.lexsort``), cuts runs where the key changes or the time gap
exceeds the window, and gathers every run's fields with fancy indexing.
The reference kernel is the same collapse as a stable Python sort plus
a linear scan — the scalar predecessor and differential oracle.

Both sorts are stable over the identical composite key, so the two
implementations produce the same permutation, the same runs, and
bit-identical :class:`~repro.core.events.MemoryError_` lists.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ExtractionError
from ..core.events import MemoryError_
from ..logs.frame import ErrorFrame
from .dispatch import register_kernel


def _validate_window(merge_window_hours: float) -> None:
    if merge_window_hours < 0:
        raise ExtractionError("merge window must be non-negative")


def _collapse_runs_reference(
    frame: ErrorFrame, merge_window_hours: float
) -> list[MemoryError_]:
    """Stable tuple-sort + linear run scan (the scalar predecessor)."""
    _validate_window(merge_window_hours)
    n = len(frame)
    if n == 0:
        return []
    mask = frame.flip_mask.astype(np.int64)
    node = frame.node_code
    va = frame.virtual_address
    t = frame.time_hours
    order = sorted(
        range(n),
        key=lambda i: (int(node[i]), int(va[i]), int(mask[i]), float(t[i])),
    )

    errors: list[MemoryError_] = []

    def emit(first: int, last: int, raw: int) -> None:
        temp = float(frame.temperature_c[first])
        errors.append(
            MemoryError_(
                node=frame.node_names[int(node[first])],
                first_seen_hours=float(t[first]),
                last_seen_hours=float(t[last]),
                virtual_address=int(va[first]),
                physical_page=int(frame.physical_page[first]),
                expected=int(frame.expected[first]),
                actual=int(frame.actual[first]),
                raw_log_count=raw,
                temperature_c=None if np.isnan(temp) else temp,
            )
        )

    first = prev = order[0]
    raw = int(frame.repeat_count[first])
    for idx in order[1:]:
        same_fault = (
            int(node[idx]) == int(node[prev])
            and int(va[idx]) == int(va[prev])
            and int(mask[idx]) == int(mask[prev])
            and float(t[idx]) - float(t[prev]) <= merge_window_hours
        )
        if same_fault:
            raw += int(frame.repeat_count[idx])
        else:
            emit(first, prev, raw)
            first = idx
            raw = int(frame.repeat_count[idx])
        prev = idx
    emit(first, prev, raw)
    errors.sort(key=lambda e: (e.first_seen_hours, e.node))
    return errors


def _collapse_runs_vectorized(
    frame: ErrorFrame, merge_window_hours: float
) -> list[MemoryError_]:
    """One lexsort + run cutting + fancy-indexed gather per segment."""
    _validate_window(merge_window_hours)
    n = len(frame)
    if n == 0:
        return []
    mask = frame.flip_mask.astype(np.int64)
    order = np.lexsort(
        (frame.time_hours, mask, frame.virtual_address, frame.node_code)
    )
    node = frame.node_code[order]
    va = frame.virtual_address[order]
    fmask = mask[order]
    t = frame.time_hours[order]

    new_key = np.empty(n, dtype=bool)
    new_key[0] = True
    new_key[1:] = (
        (node[1:] != node[:-1])
        | (va[1:] != va[:-1])
        | (fmask[1:] != fmask[:-1])
        | ((t[1:] - t[:-1]) > merge_window_hours)
    )
    segment = np.cumsum(new_key) - 1
    n_segments = int(segment[-1]) + 1

    first_idx = np.flatnonzero(new_key)
    last_idx = np.append(first_idx[1:], n) - 1

    repeats = frame.repeat_count[order].astype(np.int64)
    raw_per_segment = np.zeros(n_segments, dtype=np.int64)
    np.add.at(raw_per_segment, segment, repeats)

    names = frame.node_names
    temps = frame.temperature_c[order][first_idx]
    temp_missing = np.isnan(temps)
    errors = [
        MemoryError_(
            node=names[int(code)],
            first_seen_hours=float(t0),
            last_seen_hours=float(t1),
            virtual_address=int(addr),
            physical_page=int(page),
            expected=int(exp),
            actual=int(act),
            raw_log_count=int(raw),
            temperature_c=None if missing else float(temp),
        )
        for code, t0, t1, addr, page, exp, act, raw, temp, missing in zip(
            node[first_idx],
            t[first_idx],
            t[last_idx],
            va[first_idx],
            frame.physical_page[order][first_idx],
            frame.expected[order][first_idx],
            frame.actual[order][first_idx],
            raw_per_segment,
            temps,
            temp_missing,
        )
    ]
    errors.sort(key=lambda e: (e.first_seen_hours, e.node))
    return errors


collapse_runs = register_kernel(
    "extract.collapse_runs",
    reference=_collapse_runs_reference,
    vectorized=_collapse_runs_vectorized,
)
