"""The reference/vectorized kernel switch.

Every hot-path kernel in this package ships as a *pair*: the scalar
predecessor it replaced (the oracle) and the whole-array NumPy rewrite
(the production path).  A :class:`KernelDispatch` is a callable that
picks one of the two at call time from the ``REPRO_KERNELS``
environment variable, so

* production code calls the dispatcher and gets the vectorized kernel
  by default;
* ``REPRO_KERNELS=reference`` runs an entire campaign through the
  scalar oracles (the differential harness's end-to-end parity check);
* tests reach either implementation directly via ``.reference`` /
  ``.vectorized`` or scope a switch with :func:`use_impl`.

The registry (:data:`KERNELS`) exists so the harness can enumerate
every kernel pair and assert each one actually has two distinct
implementations — a kernel silently aliasing its oracle would make the
differential tests vacuous.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from ..core.errors import ConfigurationError

#: Environment variable selecting the implementation for dispatched calls.
ENV_VAR = "REPRO_KERNELS"

#: Legal values of :data:`ENV_VAR`.
IMPLEMENTATIONS = ("reference", "vectorized")

#: Implementation used when the variable is unset or empty.
DEFAULT_IMPL = "vectorized"

#: Kernel name -> dispatcher, in registration order.
KERNELS: dict[str, "KernelDispatch"] = {}


def active_impl() -> str:
    """The implementation dispatched calls resolve to right now."""
    value = os.environ.get(ENV_VAR) or DEFAULT_IMPL
    if value not in IMPLEMENTATIONS:
        raise ConfigurationError(
            f"{ENV_VAR}={value!r} is not one of {IMPLEMENTATIONS}"
        )
    return value


class KernelDispatch:
    """A named kernel pair, callable through the active implementation."""

    __slots__ = ("name", "reference", "vectorized")

    def __init__(
        self,
        name: str,
        reference: Callable[..., Any],
        vectorized: Callable[..., Any],
    ):
        if reference is vectorized:
            raise ConfigurationError(
                f"kernel {name!r} registered one function as both "
                "implementations; the differential harness needs two"
            )
        self.name = name
        self.reference = reference
        self.vectorized = vectorized

    def impl(self, name: str) -> Callable[..., Any]:
        """The implementation registered under ``name``."""
        if name not in IMPLEMENTATIONS:
            raise ConfigurationError(
                f"unknown kernel implementation {name!r}; "
                f"choose from {IMPLEMENTATIONS}"
            )
        return self.vectorized if name == "vectorized" else self.reference

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.impl(active_impl())(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelDispatch({self.name!r}, active={active_impl()!r})"


def register_kernel(
    name: str,
    *,
    reference: Callable[..., Any],
    vectorized: Callable[..., Any],
) -> KernelDispatch:
    """Create and register a dispatcher (module-import time only)."""
    if name in KERNELS:
        raise ConfigurationError(f"kernel {name!r} registered twice")
    dispatch = KernelDispatch(name, reference, vectorized)
    KERNELS[name] = dispatch
    return dispatch


@contextmanager
def use_impl(name: str) -> Iterator[None]:
    """Scope the active implementation (tests and A/B comparisons).

    Mutates the process environment, so worker processes *forked inside*
    the scope inherit the switch; it is not safe against concurrent
    switches from other threads (tests serialize through it).
    """
    if name not in IMPLEMENTATIONS:
        raise ConfigurationError(
            f"unknown kernel implementation {name!r}; "
            f"choose from {IMPLEMENTATIONS}"
        )
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
