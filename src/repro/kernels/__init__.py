"""Hardware-speed hot-path kernels (ROADMAP item 4).

Three inner loops bound campaign throughput: the scanner verify pass,
ECC syndrome/classification replay, and extraction dedup.  Each lives
here as a :class:`~repro.kernels.dispatch.KernelDispatch` pair — the
scalar predecessor kept as the reference oracle, and a whole-array
NumPy rewrite selected by default — switched process-wide via
``REPRO_KERNELS=reference|vectorized``:

* :mod:`repro.kernels.scan` — one vectorized XOR + nonzero pass per
  pattern over an entire region, with unpackbits bit-position recovery;
* :mod:`repro.kernels.ecc` — matrix-at-once SECDED syndromes over
  packed uint64 words (parity-check matrix as a GF(2) bit-matrix
  multiply) and vectorized chipkill symbol-syndrome classification;
* :mod:`repro.kernels.extract` — sort-based collapse of repeated error
  records into independent errors.

Submodules are imported lazily by their call sites; importing one
registers its kernels in :data:`~repro.kernels.dispatch.KERNELS`.  The
differential harness under ``tests/kernels/`` is the acceptance oracle:
both implementations of every kernel must agree bit-for-bit
(docs/KERNELS.md).
"""

from .dispatch import (
    DEFAULT_IMPL,
    ENV_VAR,
    IMPLEMENTATIONS,
    KERNELS,
    KernelDispatch,
    active_impl,
    register_kernel,
    use_impl,
)

__all__ = [
    "DEFAULT_IMPL",
    "ENV_VAR",
    "IMPLEMENTATIONS",
    "KERNELS",
    "KernelDispatch",
    "active_impl",
    "register_kernel",
    "use_impl",
]
