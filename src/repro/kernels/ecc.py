"""Matrix-at-once ECC kernels over packed uint64 words.

SECDED: the (39,32) parity-check matrix is packed into one uint64
column mask per check bit; a whole population's syndromes are then a
bit-matrix multiply over GF(2) — ``popcount(words & H[check]) mod 2``
broadcast over an (n, checks) grid — instead of the scalar codec's
per-word bit spreading.  Classification replays the code's linearity:
the syndrome of the *flip mask* alone decides the outcome.

Chipkill: the SSC-DSD code over GF(16) is linear too, so the three
symbol syndromes of a corrupted word are the syndromes of its flip
nibbles: ``s0 = xor(f_i)``, ``s1 = xor(f_i * alpha^i)``,
``s2 = xor(f_i * alpha^{2i})`` — all computed with the vectorized
GF(16) table arithmetic, replacing the per-word encode/decode replay.

Each kernel keeps the scalar codec loop it replaced as its reference
oracle; outcome codes are shared with :mod:`repro.ecc.hamming_batch`
(``CORRECTED=0, DETECTED=1, SDC=2``).
"""

from __future__ import annotations

import numpy as np

from ..ecc.chipkill import CHIPKILL_32, ChipkillCode
from ..ecc.gf import GF16
from ..ecc.hamming import SECDED_32, DecodeStatus
from ..ecc.secded import SecdedOutcome, classify_word
from .dispatch import register_kernel

#: Outcome codes (identical to ``repro.ecc.hamming_batch``'s constants).
CORRECTED = 0
DETECTED = 1
SDC = 2

_WORD_MASK = 0xFFFFFFFF


def build_secded_tables(codec=SECDED_32):
    """Packed parity-check matrix + syndrome lookup tables for a codec.

    Returns ``(check_masks, syndrome_to_data, syndrome_is_check,
    max_position)``: ``check_masks[c]`` has bit ``d`` set when check
    ``c`` covers data bit ``d`` (the GF(2) parity-check matrix, one
    uint64 row per check), and the lookups map a syndrome value to the
    data bit it points at (or -1) / whether it names a check position.
    """
    n_checks = codec.check_bits
    data_positions = codec._data_positions
    check_masks = np.zeros(n_checks, dtype=np.uint64)
    for data_bit, pos in enumerate(data_positions):
        for check in range(n_checks):
            if int(pos) & (1 << check):
                check_masks[check] |= np.uint64(1) << np.uint64(data_bit)
    syndrome_to_data = np.full(1 << n_checks, -1, dtype=np.int64)
    for data_bit, pos in enumerate(data_positions):
        syndrome_to_data[int(pos)] = data_bit
    syndrome_is_check = np.zeros(1 << n_checks, dtype=bool)
    for pos in codec._check_positions:
        syndrome_is_check[int(pos)] = True
    max_position = codec.data_bits + codec.check_bits
    return check_masks, syndrome_to_data, syndrome_is_check, max_position


_H32, _SYN_TO_DATA, _SYN_IS_CHECK, _MAX_POSITION = build_secded_tables()

#: Syndrome bit weights for folding the (n, checks) bit plane to ints.
_SYN_WEIGHTS = np.left_shift(
    np.int64(1), np.arange(_H32.shape[0], dtype=np.int64)
)

if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount64(values: np.ndarray) -> np.ndarray:
        return np.bitwise_count(values).astype(np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0

    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)

    def _popcount64(values: np.ndarray) -> np.ndarray:
        flat = np.ascontiguousarray(values, dtype=np.uint64).reshape(-1)
        counts = _POP8[flat.view(np.uint8)].reshape(flat.shape[0], 8).sum(axis=1)
        return counts.reshape(values.shape)


def _as_u64(values: np.ndarray) -> np.ndarray:
    return np.asarray(values, dtype=np.uint64)


# ---------------------------------------------------------------------------
# SECDED syndromes
# ---------------------------------------------------------------------------


def _secded_syndromes_reference(data: np.ndarray) -> np.ndarray:
    """Per-word check-bit computation through the scalar codec."""
    codec = SECDED_32
    words = _as_u64(data)
    out = np.empty((words.shape[0], codec.check_bits), dtype=np.uint8)
    for i in range(words.shape[0]):
        bits = codec._data_to_codeword_bits(int(words[i]) & _WORD_MASK)
        out[i, :] = codec._compute_checks(bits).astype(np.uint8)
    return out


def _secded_syndromes_vectorized(data: np.ndarray) -> np.ndarray:
    """All check bits of all words at once: GF(2) bit-matrix multiply."""
    words = np.bitwise_and(_as_u64(data), np.uint64(_WORD_MASK))
    covered = np.bitwise_and(words[:, None], _H32[None, :])
    return (_popcount64(covered) & np.int64(1)).astype(np.uint8)


secded_syndromes = register_kernel(
    "ecc.secded_syndromes",
    reference=_secded_syndromes_reference,
    vectorized=_secded_syndromes_vectorized,
)


# ---------------------------------------------------------------------------
# SECDED classification
# ---------------------------------------------------------------------------

_OUTCOME_TO_CODE = {
    SecdedOutcome.CORRECTED: CORRECTED,
    SecdedOutcome.DETECTED: DETECTED,
    SecdedOutcome.SDC: SDC,
}


def _secded_classify_reference(
    expected: np.ndarray, actual: np.ndarray
) -> np.ndarray:
    """The per-word scalar path: popcount fast cases + codec replay."""
    exp = _as_u64(expected)
    act = _as_u64(actual)
    if np.any(np.bitwise_and(np.bitwise_xor(exp, act), np.uint64(_WORD_MASK)) == 0):
        raise ValueError("rows without corruption cannot be classified")
    out = np.empty(exp.shape[0], dtype=np.int8)
    for i in range(exp.shape[0]):
        outcome = classify_word(int(exp[i]) & _WORD_MASK, int(act[i]) & _WORD_MASK)
        out[i] = _OUTCOME_TO_CODE[outcome]
    return out


def _secded_classify_vectorized(
    expected: np.ndarray, actual: np.ndarray
) -> np.ndarray:
    """Matrix-at-once SECDED outcomes from the flip masks alone.

    Code linearity: the received codeword's syndrome equals the
    syndrome of the data-bit flip mask, and overall parity flips with
    the mask's popcount — so the whole decode reduces to one syndrome
    matrix product plus table lookups, mirroring
    :meth:`HammingSecded.decode_flips` case by case.
    """
    exp = _as_u64(expected)
    act = _as_u64(actual)
    masks = np.bitwise_and(np.bitwise_xor(exp, act), np.uint64(_WORD_MASK))
    if np.any(masks == 0):
        raise ValueError("rows without corruption cannot be classified")
    n_flipped = _popcount64(masks)
    syndrome = _secded_syndromes_vectorized(masks).astype(np.int64) @ _SYN_WEIGHTS

    out = np.empty(masks.shape[0], dtype=np.int8)
    parity_odd = (n_flipped & np.int64(1)).astype(bool)
    even = ~parity_odd
    # Even flips: nonzero syndrome is the DED guarantee (detected);
    # zero syndrome aliases to a valid codeword (silent corruption).
    out[even & (syndrome != 0)] = DETECTED
    out[even & (syndrome == 0)] = SDC
    single = parity_odd & (n_flipped == 1)
    out[single] = CORRECTED
    multi_odd = parity_odd & (n_flipped > 1)
    if np.any(multi_odd):
        syn = syndrome[multi_odd]
        points_at_data = _SYN_TO_DATA[syn] >= 0
        is_check = _SYN_IS_CHECK[syn]
        zero_syndrome = syn == 0
        in_range = syn <= _MAX_POSITION
        # Any "correction" of a >1-flip pattern restores the wrong word
        # (miscorrection, an SDC); out-of-range syndromes are detected.
        codes = np.where(
            zero_syndrome | points_at_data | is_check, SDC, DETECTED
        )
        codes = np.where(~in_range, DETECTED, codes)
        out[multi_odd] = codes.astype(np.int8)
    return out


secded_classify = register_kernel(
    "ecc.secded_classify",
    reference=_secded_classify_reference,
    vectorized=_secded_classify_vectorized,
)


# ---------------------------------------------------------------------------
# Chipkill classification
# ---------------------------------------------------------------------------

_STATUS_TO_CODE = {
    DecodeStatus.CORRECTED: CORRECTED,
    DecodeStatus.DETECTED: DETECTED,
    DecodeStatus.MISCORRECTED: SDC,
    DecodeStatus.UNDETECTED: SDC,
    # A nonzero data flip always changes the data, so CLEAN is refined
    # away by decode_flips; keep the honest mapping anyway.
    DecodeStatus.CLEAN: SDC,
}

_N_DATA_SYMBOLS = CHIPKILL_32.spec.n_data_symbols
_SYMBOL_BITS = CHIPKILL_32.spec.symbol_bits
_SYMBOL_SHIFTS = np.arange(
    0,
    _N_DATA_SYMBOLS * _SYMBOL_BITS,
    _SYMBOL_BITS,
    dtype=np.uint64,
)
_SYMBOL_MASK = np.uint64((1 << _SYMBOL_BITS) - 1)
_ALPHA_I = np.asarray(
    GF16.pow_alpha(np.arange(_N_DATA_SYMBOLS, dtype=np.int64)), dtype=np.int64
)
_ALPHA_2I = np.asarray(
    GF16.pow_alpha(2 * np.arange(_N_DATA_SYMBOLS, dtype=np.int64)),
    dtype=np.int64,
)


def _chipkill_classify_reference(
    expected: np.ndarray, actual: np.ndarray, code: ChipkillCode = CHIPKILL_32
) -> np.ndarray:
    """Per-word encode/decode replay through the scalar symbol codec."""
    exp = _as_u64(expected)
    act = _as_u64(actual)
    masks = np.bitwise_and(np.bitwise_xor(exp, act), np.uint64(_WORD_MASK))
    if np.any(masks == 0):
        raise ValueError("rows without corruption cannot be classified")
    out = np.empty(exp.shape[0], dtype=np.int8)
    for i in range(exp.shape[0]):
        result = code.decode_flips(int(exp[i]) & _WORD_MASK, int(masks[i]))
        out[i] = _STATUS_TO_CODE[result.status]
    return out


def _chipkill_classify_vectorized(
    expected: np.ndarray, actual: np.ndarray, code: ChipkillCode = CHIPKILL_32
) -> np.ndarray:
    """Whole-population chipkill outcomes from symbol syndromes.

    Linearity over GF(16) means the syndromes depend only on the flip
    nibbles, and (for nonzero data flips) the scalar decode tree maps to
    outcome codes as: consistent single-symbol locator at a data
    position -> CORRECTED when exactly one symbol flipped, else a
    miscorrection (SDC); all syndromes zero -> aliased (SDC); exactly
    one nonzero syndrome -> a "check symbol correction" that hands over
    corrupt data (SDC); anything else -> DETECTED.
    """
    if code is not CHIPKILL_32:
        return _chipkill_classify_reference(expected, actual, code)
    exp = _as_u64(expected)
    act = _as_u64(actual)
    masks = np.bitwise_and(np.bitwise_xor(exp, act), np.uint64(_WORD_MASK))
    if np.any(masks == 0):
        raise ValueError("rows without corruption cannot be classified")

    flips = (
        np.bitwise_and(masks[:, None] >> _SYMBOL_SHIFTS[None, :], _SYMBOL_MASK)
    ).astype(np.int64)
    n_symbols = np.count_nonzero(flips, axis=1)
    s0 = np.bitwise_xor.reduce(flips, axis=1)
    s1 = np.bitwise_xor.reduce(GF16.mul(flips, _ALPHA_I[None, :]), axis=1)
    s2 = np.bitwise_xor.reduce(GF16.mul(flips, _ALPHA_2I[None, :]), axis=1)

    out = np.full(masks.shape[0], DETECTED, dtype=np.int8)
    nonzero = (
        (s0 != 0).astype(np.int64)
        + (s1 != 0).astype(np.int64)
        + (s2 != 0).astype(np.int64)
    )
    out[nonzero == 0] = SDC
    out[nonzero == 1] = SDC

    all_nonzero = nonzero == 3
    # Safe substitutes keep the table lookups total; results are only
    # consumed where the guards hold.
    ratio1 = GF16.div(np.where(all_nonzero, s1, 1), np.where(all_nonzero, s0, 1))
    ratio2 = GF16.div(np.where(all_nonzero, s2, 1), np.where(all_nonzero, s1, 1))
    consistent = all_nonzero & (ratio1 == ratio2)
    locator = GF16.log_alpha(np.where(consistent, ratio1, 1))
    looks_single = consistent & (locator < _N_DATA_SYMBOLS)
    out[looks_single & (n_symbols == 1)] = CORRECTED
    # A multi-symbol pattern whose syndromes mimic a single-symbol error
    # gets "corrected" into the wrong word: miscorrection.
    out[looks_single & (n_symbols > 1)] = SDC
    return out


chipkill_classify = register_kernel(
    "ecc.chipkill_classify",
    reference=_chipkill_classify_reference,
    vectorized=_chipkill_classify_vectorized,
)
