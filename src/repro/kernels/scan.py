"""Scanner verify kernels: whole-region pattern comparison.

The scanner's inner loop checks every word of a region against the
pattern value written on the previous pass.  The vectorized kernel does
one XOR + ``flatnonzero`` pass per pattern and recovers per-hit flip
masks (and, on demand, flipped bit positions via little-endian
``unpackbits``); the reference kernel is the per-word Python loop the
scanner shipped with, kept as the differential oracle.

Both implementations return the same :class:`ScanHits` — hit order is
ascending word index, so outputs compare with ``==`` on every array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .dispatch import register_kernel

#: Bits per scanned word (the device stores uint32 words).
WORD_BITS = 32

_WORD_MASK = 0xFFFFFFFF


def _as_words(values: np.ndarray) -> np.ndarray:
    """Coerce a region to uint32 words (wider ints are masked, like bitops)."""
    if not isinstance(values, np.ndarray):
        values = np.asarray(values, dtype=np.uint64)
    if values.dtype == np.uint32:
        return values
    return np.bitwise_and(
        values.astype(np.uint64), np.uint64(_WORD_MASK)
    ).astype(np.uint32)


@dataclass(frozen=True)
class ScanHits:
    """Mismatching words of one verify pass, in ascending word order."""

    #: Indices of mismatching words within the scanned region (int64).
    word_index: np.ndarray
    #: Observed word value at each hit (uint32).
    actual: np.ndarray
    #: ``actual ^ expected`` at each hit — never zero (uint32).
    flip_mask: np.ndarray

    def __len__(self) -> int:
        return int(self.word_index.shape[0])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScanHits):
            return NotImplemented
        return (
            np.array_equal(self.word_index, other.word_index)
            and np.array_equal(self.actual, other.actual)
            and np.array_equal(self.flip_mask, other.flip_mask)
        )


def _verify_words_reference(observed: np.ndarray, expected: int) -> ScanHits:
    """Per-word scan loop: the scalar predecessor of the verify pass."""
    words = _as_words(observed)
    value = int(expected) & _WORD_MASK
    index: list[int] = []
    actual: list[int] = []
    masks: list[int] = []
    for i in range(words.shape[0]):
        word = int(words[i])
        if word != value:
            index.append(i)
            actual.append(word)
            masks.append(word ^ value)
    return ScanHits(
        word_index=np.asarray(index, dtype=np.int64),
        actual=np.asarray(actual, dtype=np.uint32),
        flip_mask=np.asarray(masks, dtype=np.uint32),
    )


def _verify_words_vectorized(observed: np.ndarray, expected: int) -> ScanHits:
    """One XOR + nonzero pass over the whole region."""
    words = _as_words(observed)
    flips = np.bitwise_xor(words, np.uint32(int(expected) & _WORD_MASK))
    index = np.flatnonzero(flips).astype(np.int64)
    return ScanHits(
        word_index=index, actual=words[index], flip_mask=flips[index]
    )


verify_words = register_kernel(
    "scan.verify_words",
    reference=_verify_words_reference,
    vectorized=_verify_words_vectorized,
)


def _hit_bit_positions_reference(
    flip_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Shift-and-test loop over every bit of every mask."""
    masks = _as_words(flip_mask)
    rows: list[int] = []
    bits: list[int] = []
    for row in range(masks.shape[0]):
        mask = int(masks[row])
        for bit in range(WORD_BITS):
            if (mask >> bit) & 1:
                rows.append(row)
                bits.append(bit)
    return (
        np.asarray(rows, dtype=np.int64),
        np.asarray(bits, dtype=np.int64),
    )


def _hit_bit_positions_vectorized(
    flip_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Little-endian unpackbits: bit b of word w -> (row w, position b).

    Views each uint32 mask as 4 little-endian bytes, so byte*8 + bit is
    the logical bit position; ``np.nonzero`` on the (n, 32) bit plane
    yields row-major order — identical to the reference loop's.
    """
    masks = np.ascontiguousarray(_as_words(flip_mask), dtype=np.uint32)
    planes = np.unpackbits(
        masks.reshape(-1, 1).view(np.uint8), axis=1, bitorder="little"
    )
    rows, positions = np.nonzero(planes)
    return rows.astype(np.int64), positions.astype(np.int64)


hit_bit_positions = register_kernel(
    "scan.hit_bit_positions",
    reference=_hit_bit_positions_reference,
    vectorized=_hit_bit_positions_vectorized,
)


def _scan_region_reference(
    observed: np.ndarray, pattern_values: Sequence[int]
) -> list[ScanHits]:
    return [
        _verify_words_reference(observed, value) for value in pattern_values
    ]


def _scan_region_vectorized(
    observed: np.ndarray, pattern_values: Sequence[int]
) -> list[ScanHits]:
    """One vectorized verify pass per pattern over the same region."""
    words = _as_words(observed)
    return [
        _verify_words_vectorized(words, value) for value in pattern_values
    ]


scan_region = register_kernel(
    "scan.scan_region",
    reference=_scan_region_reference,
    vectorized=_scan_region_vectorized,
)
