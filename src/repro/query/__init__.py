"""Embedded analytical query engine over columnar shard archives.

The paper's analyses are predicate-plus-aggregate scans over the raw
error population (errors by node/hour/temperature/bit-count).  This
package answers them without materializing whole archives: a small
logical plan (``scan -> filter -> project -> group-aggregate ->
order/limit``), executed with vectorized NumPy kernels, **per-shard
zone maps** (format v2 manifests, :mod:`repro.logs.columnar`) so shard
files that cannot match a predicate are never read from disk, lazy
per-shard column loading, and an LRU result cache keyed by
``(archive fingerprint, plan digest)``.

See ``docs/QUERY.md`` for the plan language and semantics.
"""

from .cache import QueryCache
from .engine import ExecutionStats, QueryEngine, QueryResult
from .plan import Aggregate, Derive, Predicate, Query, QueryPlanError
from .ported import daily_histogram, hourly_histogram, temperature_histogram
from .resilient import (
    CircuitBreaker,
    ExecutionOutcome,
    ReadRetryPolicy,
    ResilientExecutor,
    ResilientSource,
    StaleResultCache,
)
from .scatter import ScatterGatherEngine, ScatterResult
from .source import ArchiveSource, MemorySource, ShardInfo, as_source

__all__ = [
    "Aggregate",
    "ArchiveSource",
    "CircuitBreaker",
    "Derive",
    "ExecutionOutcome",
    "ExecutionStats",
    "MemorySource",
    "Predicate",
    "Query",
    "QueryCache",
    "QueryEngine",
    "QueryPlanError",
    "QueryResult",
    "ReadRetryPolicy",
    "ResilientExecutor",
    "ResilientSource",
    "ScatterGatherEngine",
    "ScatterResult",
    "ShardInfo",
    "StaleResultCache",
    "as_source",
    "daily_histogram",
    "hourly_histogram",
    "temperature_histogram",
]
