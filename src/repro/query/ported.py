"""Analysis hot paths recompiled as query plans — bit-identical ports.

These reimplement :func:`repro.analysis.correlation.temperature_histogram`
(Figs 7/8) and the hourly/daily grids of :mod:`repro.analysis.temporal`
(Figs 5/10) on top of the query engine, so they prune shards and reuse
the result cache instead of materializing an :class:`ErrorFrame`.  The
contract — enforced by golden tests in ``tests/query`` — is that each
returns *exactly* what the direct implementation returns on the same
archive: same dict keys in the same order, same vectors, same dtypes.

That works because the engine's derived columns reproduce the frames'
arithmetic to the ufunc: ``temp_c`` round-trips through float32 (the
ErrorFrame temperature dtype), ``temp_bin`` uses ``np.histogram``'s
explicit-edge-array binning, and ``hour``/``day``/``bit_bucket`` are the
same integer expressions the temporal module applies.
"""

from __future__ import annotations

import numpy as np

from ..analysis.correlation import TEMP_BINS, TemperatureHistogram
from ..logs.columnar import KIND_ERROR
from .engine import QueryEngine
from .plan import Aggregate, Derive, Predicate, Query


def _engine_for(target, engine: QueryEngine | None) -> QueryEngine:
    if engine is not None:
        return engine
    if target is None:
        raise ValueError("need an archive target or an engine")
    return QueryEngine(target)


def _error_filter(extra: tuple[Predicate, ...] = ()) -> tuple[Predicate, ...]:
    return (Predicate("kind", "eq", int(KIND_ERROR)),) + extra


def _fill_grid(result, key_name: str, bin_name: str, length: int,
               out: dict[int, np.ndarray] | None = None) -> dict[int, np.ndarray]:
    """Scatter (key, bin, count) group rows into per-key count vectors.

    Group output is ordered by (key, bin) ascending, so keys enter the
    dict in the same ascending order ``np.unique`` yields in the direct
    implementations.
    """
    if out is None:
        out = {}
    keys = result.column(key_name).tolist()
    bins = result.column(bin_name).tolist()
    counts = result.column("count").tolist()
    for key, idx, count in zip(keys, bins, counts):
        vec = out.get(int(key))
        if vec is None:
            vec = out[int(key)] = np.zeros(length, dtype=np.intp)
        vec[int(idx)] = count
    return out


def temperature_histogram(
    target=None,
    bins: np.ndarray = TEMP_BINS,
    multibit_only: bool = False,
    *,
    engine: QueryEngine | None = None,
) -> TemperatureHistogram:
    """Port of :func:`repro.analysis.correlation.temperature_histogram`.

    Three plans replace the frame scan: a (bit_bucket, temp_bin) count
    grid over in-range temperatures; a per-bucket count of
    temperature-logged rows (so a bucket whose temperatures all fall
    outside the bin range still appears, with an all-zero vector, as
    ``np.histogram`` would produce); and a grand count of rows without
    temperature.
    """
    eng = _engine_for(target, engine)
    bins = np.asarray(bins)
    base = _error_filter(
        (Predicate("n_bits", "ge", 2),) if multibit_only else ()
    )
    base_derive = (Derive("n_bits", "n_bits"),) if multibit_only else ()
    bucket = Derive("bit_bucket", "bit_bucket")
    grid = eng.execute(Query(
        filters=base + (Predicate("temp_bin", "ge", 0),),
        derive=base_derive + (bucket, Derive("temp_bin", "temp_bin", {"edges": bins})),
        group_by=("bit_bucket", "temp_bin"),
        aggregates=(Aggregate("count"),),
    ))
    logged = eng.execute(Query(
        filters=base + (Predicate("temp_c", "notnull"),),
        derive=base_derive + (bucket, Derive("temp_c", "temp_c")),
        group_by=("bit_bucket",),
        aggregates=(Aggregate("count"),),
    ))
    unlogged = eng.execute(Query(
        filters=base + (Predicate("temp_c", "isnull"),),
        derive=base_derive + (Derive("temp_c", "temp_c"),),
        aggregates=(Aggregate("count"),),
    ))

    n_bins = bins.shape[0] - 1
    counts: dict[int, np.ndarray] = {
        int(b): np.zeros(n_bins, dtype=np.intp)
        for b in logged.column("bit_bucket").tolist()
    }
    _fill_grid(grid, "bit_bucket", "temp_bin", n_bins, counts)
    return TemperatureHistogram(
        bin_edges=bins,
        counts=counts,
        n_without_temperature=int(unlogged.column("count")[0]),
    )


def hourly_histogram(
    target=None,
    buckets: bool = True,
    *,
    engine: QueryEngine | None = None,
) -> dict[int, np.ndarray]:
    """Port of :func:`repro.analysis.temporal.hourly_histogram` (Fig 5)."""
    eng = _engine_for(target, engine)
    key = "bit_bucket" if buckets else "n_bits"
    result = eng.execute(Query(
        filters=_error_filter(),
        derive=(Derive(key, key), Derive("hour", "hour")),
        group_by=(key, "hour"),
        aggregates=(Aggregate("count"),),
    ))
    return _fill_grid(result, key, "hour", 24)


def daily_histogram(
    target=None,
    n_days: int = 0,
    *,
    engine: QueryEngine | None = None,
) -> dict[int, np.ndarray]:
    """Port of :func:`repro.analysis.temporal.daily_histogram` (Fig 10)."""
    if n_days <= 0:
        raise ValueError("n_days must be positive")
    eng = _engine_for(target, engine)
    result = eng.execute(Query(
        filters=_error_filter(),
        derive=(
            Derive("bit_bucket", "bit_bucket"),
            Derive("day", "day", {"n_days": int(n_days)}),
        ),
        group_by=("bit_bucket", "day"),
        aggregates=(Aggregate("count"),),
    ))
    return _fill_grid(result, "bit_bucket", "day", int(n_days))
