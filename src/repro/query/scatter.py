"""Scatter-gather execution: one plan fanned across sharded workers.

The front-end partitions the archive's node population into contiguous
ranges of the sorted node list, runs the plan against each partition on
its own worker lane (a :class:`~repro.query.engine.QueryEngine` over an
independently constructed source), and merges the partial outputs into
a result matching single-engine execution — exactly for keys, row
data, counts and min/max, and up to float-summation association (the
merge re-orders the additions) for float sums and means.  Proven by
the parity suite in ``tests/server/test_scatter.py``.

Contiguous partitioning is what makes row-mode merging exact: the
concatenation of partition outputs in partition order *is* the single
engine's shard scan order, so order/limit semantics (including the
stable-sort tie rules) survive the fan-out.  Aggregates are merged with
classic partial aggregation — ``count``/``sum`` add, ``min``/``max``
fold, and ``mean`` is rewritten for the workers as ``sum`` plus a
shared group ``count`` and divided at the merge.

Two resilience mechanisms ride on the fan-out:

* **Hedged retries** — a partition whose first attempt fails is retried
  immediately on a spare lane; one that is merely *slow* (no answer
  within ``hedge_delay_s``) gets a duplicate attempt on a spare lane
  and the first success wins.  A wedged worker therefore costs one
  hedge, not the whole query.
* **Partial-result accounting** — a partition that fails all attempts
  (or times out at ``partition_timeout_s``) is dropped from the merge
  and *accounted*: the result carries ``partial=True`` and the missing
  node list, and is never admitted to the result cache.  Only when
  every partition fails does the query raise.

Abandoned attempts (hedge losers, timed-out lanes) park on the lane
pool until their blocking read returns; the pool is sized ``2x`` the
worker count so a bounded number of wedged reads cannot starve fresh
queries, and ``stats.abandoned`` counts them for the metrics endpoint.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from .cache import QueryCache
from .engine import ExecutionStats, QueryEngine, QueryResult, order_and_limit
from .plan import Aggregate, Query

#: Reserved alias prefix for merge-internal aggregate columns.
_INTERNAL = "__sg_"


def partition_nodes(nodes: list[str], n_partitions: int) -> list[tuple[str, ...]]:
    """Split sorted ``nodes`` into at most ``n_partitions`` contiguous runs.

    Contiguity in sorted order is load-bearing (see module docstring);
    empty partitions are dropped, so fewer nodes than workers simply
    yields fewer partitions.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    ordered = sorted(nodes)
    if not ordered:
        return []
    size, extra = divmod(len(ordered), n_partitions)
    parts: list[tuple[str, ...]] = []
    start = 0
    for i in range(n_partitions):
        stop = start + size + (1 if i < extra else 0)
        if stop > start:
            parts.append(tuple(ordered[start:stop]))
        start = stop
    return parts


def worker_plan(plan: Query, nodes: tuple[str, ...]) -> Query:
    """The subplan one partition executes.

    Row mode keeps order/limit (per-partition top-N is a superset of the
    partition's contribution to the global top-N).  Aggregate mode
    strips order/limit (re-applied after the merge) and rewrites every
    ``mean`` as a ``sum`` plus one shared group ``count``.
    """
    if not plan.is_aggregate:
        return replace(plan, nodes=nodes)
    aggs: list[Aggregate] = []
    need_count = any(a.fn == "mean" for a in plan.aggregates)
    have_count = any(a.fn == "count" for a in plan.aggregates)
    for agg in plan.aggregates:
        if agg.fn == "mean":
            aggs.append(
                Aggregate("sum", column=agg.column, alias=f"{_INTERNAL}sum_{agg.alias}")
            )
        else:
            aggs.append(agg)
    if need_count and not have_count:
        aggs.append(Aggregate("count", alias=f"{_INTERNAL}n"))
    return replace(
        plan, aggregates=tuple(aggs), order_by=(), limit=None, nodes=nodes
    )


def _merge_aggregates(plan: Query, parts: list[QueryResult]) -> dict:
    """Partial-aggregation merge of per-partition aggregate outputs."""
    count_alias = next(
        (a.alias for a in plan.aggregates if a.fn == "count"), f"{_INTERNAL}n"
    )
    keys = plan.group_by or ()

    def worker_alias(agg: Aggregate) -> str:
        return f"{_INTERNAL}sum_{agg.alias}" if agg.fn == "mean" else agg.alias

    if not keys:
        # Grand total: one row per partition; zero-row partitions carry
        # count 0 and NaN placeholders that must not pollute the fold.
        counts = np.array(
            [int(p.columns[count_alias][0]) for p in parts], dtype=np.int64
        )
        live = counts > 0
        out: dict[str, np.ndarray] = {}
        for agg in plan.aggregates:
            vals = np.concatenate([p.columns[worker_alias(agg)] for p in parts])
            if agg.fn == "count":
                out[agg.alias] = np.array([counts.sum()], dtype=np.int64)
            elif not live.any():
                out[agg.alias] = np.array([np.nan], dtype=np.float64)
            elif agg.fn == "sum":
                total = vals[live].sum()
                out[agg.alias] = np.array([total], dtype=total.dtype)
            elif agg.fn == "min":
                low = vals[live].min()
                out[agg.alias] = np.array([low], dtype=low.dtype)
            elif agg.fn == "max":
                high = vals[live].max()
                out[agg.alias] = np.array([high], dtype=high.dtype)
            else:  # mean = merged sum / merged count
                total = vals[live].astype(np.float64).sum()
                out[agg.alias] = np.array(
                    [total / counts.sum()], dtype=np.float64
                )
        return out

    live_parts = [p for p in parts if p.n_rows]
    if not live_parts:
        return {
            name: np.empty(0, dtype=np.float64) for name in plan.output_columns()
        }

    def gather(name: str) -> np.ndarray:
        return np.concatenate([p.columns[name] for p in live_parts])

    key_arrays = [gather(k) for k in keys]
    n_rows = int(key_arrays[0].shape[0])
    order = np.lexsort(key_arrays[::-1])
    sorted_keys = [k[order] for k in key_arrays]
    boundary = np.zeros(n_rows, dtype=bool)
    boundary[0] = True
    for k in sorted_keys:
        boundary[1:] |= k[1:] != k[:-1]
    starts = np.flatnonzero(boundary)
    out = {name: k[starts] for name, k in zip(keys, sorted_keys)}
    merged_counts: np.ndarray | None = None
    if any(a.fn == "mean" for a in plan.aggregates):
        merged_counts = np.add.reduceat(gather(count_alias)[order], starts)
    for agg in plan.aggregates:
        values = gather(worker_alias(agg))[order]
        if agg.fn in ("count", "sum"):
            out[agg.alias] = np.add.reduceat(values, starts)
        elif agg.fn == "min":
            out[agg.alias] = np.minimum.reduceat(values, starts)
        elif agg.fn == "max":
            out[agg.alias] = np.maximum.reduceat(values, starts)
        else:  # mean
            sums = np.add.reduceat(values.astype(np.float64), starts)
            out[agg.alias] = sums / merged_counts
    return out


def _merge_rows(plan: Query, parts: list[QueryResult]) -> dict:
    names = plan.output_columns()
    live = [p for p in parts if p.n_rows]
    if not live:
        return {name: np.empty(0, dtype=np.float64) for name in names}
    return {
        name: np.concatenate([p.columns[name] for p in live]) for name in names
    }


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass
class ScatterResult(QueryResult):
    """A merged result plus its fan-out accounting."""

    partial: bool = False
    missing_nodes: tuple[str, ...] = ()
    failed_partitions: int = 0
    hedges_launched: int = 0
    hedge_wins: int = 0
    retries: int = 0


@dataclass
class ScatterStats:
    """Cumulative fan-out counters (the metrics endpoint's view)."""

    queries: int = 0
    partitions_run: int = 0
    partitions_failed: int = 0
    hedges_launched: int = 0
    hedge_wins: int = 0
    retries: int = 0
    partial_results: int = 0
    abandoned: int = 0

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "partitions_run": self.partitions_run,
            "partitions_failed": self.partitions_failed,
            "hedges_launched": self.hedges_launched,
            "hedge_wins": self.hedge_wins,
            "retries": self.retries,
            "partial_results": self.partial_results,
            "abandoned": self.abandoned,
        }


class _Partition:
    """Mutable per-partition state for one scatter execution."""

    __slots__ = ("index", "nodes", "subplan", "attempts", "result", "errors")

    def __init__(self, index: int, nodes: tuple[str, ...], subplan: Query):
        self.index = index
        self.nodes = nodes
        self.subplan = subplan
        self.attempts = 0
        self.result: QueryResult | None = None
        self.errors: list[Exception] = []


class ScatterGatherEngine:
    """Engine-protocol fan-out across sharded archive worker lanes.

    ``source_factory`` constructs one independent source per lane (plus
    one front-end source for ``shards()``/``fingerprint()``), so a fault
    or a wedge in one lane's storage path cannot infect another's.
    Exposes the same surface the telemetry server expects of
    :class:`~repro.query.engine.QueryEngine`: ``execute``, ``source``,
    ``cache``, ``queries_run``.
    """

    def __init__(
        self,
        source_factory,
        *,
        n_workers: int = 4,
        hedge_delay_s: float = 0.1,
        partition_timeout_s: float = 30.0,
        max_attempts: int = 2,
        cache: QueryCache | None = None,
        prune: bool = True,
        clock=time.monotonic,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.n_workers = n_workers
        self.hedge_delay_s = hedge_delay_s
        self.partition_timeout_s = partition_timeout_s
        self.max_attempts = max_attempts
        self.prune = prune
        self.cache = cache if cache is not None else QueryCache()
        self.stats = ScatterStats()
        self.queries_run = 0
        self.source = source_factory()
        self._factory = source_factory
        self._clock = clock
        self._lanes = [self._make_lane() for _ in range(n_workers)]
        self._spares: list[QueryEngine] = []
        self._lock = threading.Lock()
        self._seen_fingerprint: str | None = None
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=2 * n_workers, thread_name_prefix="repro-scatter"
        )

    def _make_lane(self) -> QueryEngine:
        # Lanes never cache: the scatter-level cache keys the merged
        # result, and per-lane caches would just hold dead partials.
        return QueryEngine(
            self._factory(), cache=QueryCache(max_entries=0), prune=self.prune
        )

    def _spare_lane(self, index: int) -> QueryEngine:
        with self._lock:
            while len(self._spares) <= index % self.n_workers:
                self._spares.append(self._make_lane())
            return self._spares[index % self.n_workers]

    # -- public API --------------------------------------------------------

    def execute(self, plan: Query, *, use_cache: bool = True) -> ScatterResult:
        start = time.perf_counter()
        self.queries_run += 1
        with self._lock:
            self.stats.queries += 1
        fingerprint = self.source.fingerprint()
        if fingerprint != self._seen_fingerprint:
            if self._seen_fingerprint is not None:
                self.cache.invalidate(fingerprint)
            self._seen_fingerprint = fingerprint
        key = (fingerprint, plan.digest())
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                stats = ExecutionStats(
                    shards_total=cached.stats.shards_total,
                    shards_pruned=cached.stats.shards_pruned,
                    rows_output=cached.stats.rows_output,
                    cache_hit=True,
                    elapsed_s=time.perf_counter() - start,
                )
                return ScatterResult(columns=cached.columns, stats=stats)

        nodes = [s.node for s in self.source.shards()]
        if plan.nodes is not None:
            wanted = set(plan.nodes)
            nodes = [n for n in nodes if n in wanted]
        partitions = [
            _Partition(i, part, worker_plan(plan, part))
            for i, part in enumerate(partition_nodes(nodes, self.n_workers))
        ]
        result = self._scatter(plan, partitions)
        result.stats.elapsed_s = time.perf_counter() - start
        if use_cache and not result.partial:
            self.cache.put(key, result)
        return result

    # -- fan-out -----------------------------------------------------------

    def _scatter(self, plan: Query, partitions: list[_Partition]) -> ScatterResult:
        hedges = wins = retries = 0
        if partitions:
            # future -> (partition, attempt number it carries)
            pending: dict[concurrent.futures.Future, tuple[_Partition, int]] = {}

            def launch(part: _Partition, lane: QueryEngine) -> None:
                part.attempts += 1
                future = self._pool.submit(lane.execute, part.subplan, use_cache=False)
                pending[future] = (part, part.attempts)

            for part in partitions:
                launch(part, self._lanes[part.index % len(self._lanes)])
            with self._lock:
                self.stats.partitions_run += len(partitions)

            start = self._clock()
            deadline = start + self.partition_timeout_s
            hedge_at = start + self.hedge_delay_s
            hedged_late: set[int] = set()
            abandoned = 0
            while pending:
                # Attempts superseded by a winning sibling produce results
                # nobody will read: stop waiting on them.  A cancel that
                # fails means the worker is still burning a pool slot —
                # that is the abandoned case the metrics report.
                for future in [
                    f for f, (part, _) in pending.items() if part.result is not None
                ]:
                    del pending[future]
                    if not future.cancel():
                        abandoned += 1
                if not pending:
                    break
                now = self._clock()
                if now >= deadline:
                    break
                can_hedge = any(
                    part.result is None and part.attempts < self.max_attempts
                    for part, _ in pending.values()
                )
                timeout = deadline - now
                if can_hedge and hedge_at > now:
                    timeout = min(timeout, hedge_at - now)
                done, _ = concurrent.futures.wait(
                    list(pending),
                    timeout=timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    part, attempt = pending.pop(future)
                    if part.result is not None:
                        continue  # another attempt already won this partition
                    try:
                        part.result = future.result()
                        if attempt > 1 and part.index in hedged_late:
                            wins += 1
                    except Exception as exc:  # noqa: BLE001 — accounted below
                        part.errors.append(exc)
                        if part.attempts < self.max_attempts:
                            retries += 1
                            launch(part, self._spare_lane(part.index))
                if self._clock() >= hedge_at:
                    for part, _ in list(pending.values()):
                        if (
                            part.result is None
                            and part.attempts < self.max_attempts
                        ):
                            hedges += 1
                            hedged_late.add(part.index)
                            launch(part, self._spare_lane(part.index))
            for future in pending:  # deadline hit: whatever is left is lost
                if not future.cancel():
                    abandoned += 1
            with self._lock:
                self.stats.hedges_launched += hedges
                self.stats.hedge_wins += wins
                self.stats.retries += retries
                self.stats.abandoned += abandoned

        succeeded = [p for p in partitions if p.result is not None]
        failed = [p for p in partitions if p.result is None]
        if partitions and not succeeded:
            # Nothing to merge: surface the first real error (or a
            # timeout) so the degradation layer can serve stale.
            for part in failed:
                if part.errors:
                    raise part.errors[0]
            raise TimeoutError(
                f"all {len(partitions)} scatter partitions timed out "
                f"after {self.partition_timeout_s}s"
            )
        with self._lock:
            self.stats.partitions_failed += len(failed)
            if failed:
                self.stats.partial_results += 1

        parts = [p.result for p in succeeded]
        if plan.is_aggregate:
            columns = _merge_aggregates(plan, parts)
        else:
            columns = _merge_rows(plan, parts)
        columns = order_and_limit(plan, columns)
        for arr in columns.values():
            arr.flags.writeable = False

        stats = ExecutionStats()
        for p in parts:
            stats.shards_total += p.stats.shards_total
            stats.shards_pruned += p.stats.shards_pruned
            stats.shards_scanned += p.stats.shards_scanned
            stats.rows_scanned += p.stats.rows_scanned
        for part in failed:
            stats.shards_total += len(part.nodes)
        stats.rows_output = (
            int(next(iter(columns.values())).shape[0]) if columns else 0
        )
        missing = tuple(n for part in failed for n in part.nodes)
        return ScatterResult(
            columns=columns,
            stats=stats,
            partial=bool(failed),
            missing_nodes=missing,
            failed_partitions=len(failed),
            hedges_launched=hedges,
            hedge_wins=wins,
            retries=retries,
        )

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
