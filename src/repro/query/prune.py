"""Zone-map pruning: decide, per shard, whether any row *could* match.

The rule is strictly conservative — ``shard_may_match`` may only return
False when the zone map proves the filter conjunction is unsatisfiable
on that shard.  Columns without zone information (``hour``, ``day``,
``temp_bin``) always answer "maybe"; v1 manifests carry no zone maps at
all, so every shard answers "maybe" and pruning degrades to a no-op.

A property test in ``tests/query`` enforces the contract the other way
round: for random plans, results with pruning enabled must equal
results with pruning disabled.
"""

from __future__ import annotations

import numpy as np

from ..logs.columnar import KIND_ERROR
from .plan import Derive, Predicate


def _interval_may_match(lo, hi, pred: Predicate) -> bool:
    """Can any value in [lo, hi] satisfy the predicate?"""
    op, v = pred.op, pred.value
    try:
        if op == "eq":
            return lo <= v <= hi
        if op == "ne":
            return not (lo == hi == v)
        if op == "lt":
            return lo < v
        if op == "le":
            return lo <= v
        if op == "gt":
            return hi > v
        if op == "ge":
            return hi >= v
        if op == "in":
            return any(lo <= item <= hi for item in v)
    except TypeError:
        return True  # incomparable types: let the executor decide
    return True


def _widen_f32(lo: float, hi: float) -> tuple[float, float]:
    """Bounds that survive a float64 -> float32 -> float64 round trip.

    ``temp_c`` re-rounds shard temperatures through float32 (the
    ErrorFrame dtype); rounding can push a value just past the shard's
    float64 min/max, so pruning against ``temp_c`` widens the zone by
    one float32 ULP on each side.
    """
    lo32 = np.nextafter(np.float32(lo), np.float32(-np.inf))
    hi32 = np.nextafter(np.float32(hi), np.float32(np.inf))
    return float(lo32), float(hi32)


def _bits_bounds(zone: dict) -> tuple[int, int] | None:
    """Full-column n_bits range: ERROR rows from the zone's ``bits``
    entry, every non-ERROR row contributing 0 (expected == actual == 0)."""
    n_records = zone.get("n_records") or 0
    if n_records == 0:
        return None
    n_errors = int(zone.get("kinds", {}).get(str(KIND_ERROR), 0))
    bits = zone.get("bits")
    if bits is None:
        return (0, 0)
    lo, hi = int(bits[0]), int(bits[1])
    if n_records > n_errors:  # non-error rows exist -> 0 is present
        lo = min(lo, 0)
    return (lo, hi)


def _predicate_may_match(zone: dict, node: str, pred: Predicate,
                         derives: dict[str, Derive]) -> bool:
    n_records = zone.get("n_records") or 0
    if n_records == 0:
        return False
    column = pred.column
    spec = derives.get(column)
    if spec is not None:
        # Resolve the derived column to something zone-mappable.
        if spec.fn == "temp_c":
            column = "temp_c"
        elif spec.fn == "has_temp":
            column = "has_temp"
        elif spec.fn == "n_bits":
            column = "n_bits"
        elif spec.fn == "bit_bucket":
            bounds = _bits_bounds(zone)
            if bounds is None:
                return False
            max_bucket = int(dict(spec.args).get("max_bucket", 6))
            return _interval_may_match(
                min(bounds[0], max_bucket), min(bounds[1], max_bucket), pred
            )
        else:
            return True  # hour/day/temp_bin: no zone information

    if column == "node":
        if pred.op in ("isnull", "notnull"):
            return pred.op == "notnull"
        return _interval_may_match(node, node, pred)

    if column == "t":
        if pred.op in ("isnull", "notnull"):
            return pred.op == "notnull"
        zone_t = zone.get("t")
        if zone_t is None:
            return False
        return _interval_may_match(float(zone_t[0]), float(zone_t[1]), pred)

    if column == "kind":
        kinds = zone.get("kinds") or {}
        present = sorted(int(k) for k, c in kinds.items() if c)
        if pred.op in ("isnull", "notnull"):
            return pred.op == "notnull"
        if not present:
            return False
        if pred.op == "eq":
            try:
                return int(pred.value) in present
            except (TypeError, ValueError):
                return True
        return _interval_may_match(present[0], present[-1], pred)

    if column in ("temp", "temp_c"):
        n_temp = int(zone.get("n_temp") or 0)
        if pred.op == "isnull":
            return n_temp < n_records
        if pred.op == "notnull":
            return n_temp > 0
        if pred.op == "ne" and n_temp < n_records:
            return True  # NaN != value is true: unlogged rows match
        if n_temp == 0:
            return False  # all other comparisons are False on NaN rows
        zone_temp = zone.get("temp")
        if zone_temp is None:
            return True  # inconsistent zone: stay conservative
        lo, hi = float(zone_temp[0]), float(zone_temp[1])
        if column == "temp_c":
            lo, hi = _widen_f32(lo, hi)
        return _interval_may_match(lo, hi, pred)

    if column == "has_temp":
        n_temp = int(zone.get("n_temp") or 0)
        truthy = {True: n_temp > 0, False: n_temp < n_records}
        if pred.op == "eq":
            return truthy.get(bool(pred.value), True)
        if pred.op == "ne":
            return truthy.get(not bool(pred.value), True)
        return True

    if column == "n_bits":
        if pred.op in ("isnull", "notnull"):
            return pred.op == "notnull"
        bounds = _bits_bounds(zone)
        if bounds is None:
            return False
        return _interval_may_match(bounds[0], bounds[1], pred)

    return True  # mb/va/pp/expected/actual/rep: no zone information


def merge_zone_maps(zones) -> dict | None:
    """Union of several zone maps, exact for the merged row set.

    Every zone-map field is decomposable: counts add, ranges union.  A
    multi-part node (live L0 segments plus compacted shards) can
    therefore be pruned against the merge of its part zones with the
    same conservatism guarantee as a single shard — no predicate path
    in :func:`_predicate_may_match` can prune a merged zone whose parts
    contain a matching row.  Returns ``None`` (never prune) if any part
    lacks zone information.
    """
    zones = list(zones)
    if not zones or any(z is None for z in zones):
        return None
    merged: dict = {
        "n_records": 0,
        "t": None,
        "temp": None,
        "n_temp": 0,
        "kinds": {},
        "bits": None,
    }

    def _union(current, extra):
        if extra is None:
            return current
        lo, hi = float(extra[0]), float(extra[1])
        if current is None:
            return [lo, hi]
        return [min(current[0], lo), max(current[1], hi)]

    for zone in zones:
        merged["n_records"] += int(zone.get("n_records") or 0)
        merged["n_temp"] += int(zone.get("n_temp") or 0)
        merged["t"] = _union(merged["t"], zone.get("t"))
        merged["temp"] = _union(merged["temp"], zone.get("temp"))
        bits = zone.get("bits")
        if bits is not None:
            lo, hi = int(bits[0]), int(bits[1])
            if merged["bits"] is None:
                merged["bits"] = [lo, hi]
            else:
                merged["bits"] = [
                    min(merged["bits"][0], lo),
                    max(merged["bits"][1], hi),
                ]
        for code, count in (zone.get("kinds") or {}).items():
            merged["kinds"][code] = merged["kinds"].get(code, 0) + int(count)
    return merged


def shard_may_match(zone: dict | None, node: str,
                    predicates: tuple[Predicate, ...],
                    derives: dict[str, Derive]) -> bool:
    """Conservative satisfiability of the filter conjunction on a shard."""
    if zone is None:
        return True  # v1 archive: no zone maps, never prune
    if (zone.get("n_records") or 0) == 0:
        return False  # empty shard matches nothing
    return all(
        _predicate_may_match(zone, node, pred, derives) for pred in predicates
    )
