"""The logical plan: a declarative description of one analytical query.

A :class:`Query` is a frozen value object — ``scan`` (implicit, the
archive the engine is bound to) ``-> filter -> derive -> project |
group-aggregate -> order -> limit`` — with a canonical JSON rendering
used three ways: as the server's wire format, as the stable
:meth:`Query.digest` that keys the result cache, and as the CLI's plan
input.  Validation happens at construction, so a malformed plan fails
with :class:`QueryPlanError` before any shard is touched.

Columns
-------

Base columns are the shard columns of the archive format
(:data:`repro.logs.columnar.SHARD_COLUMNS`) plus ``node`` (the shard's
node name).  Derived columns come from a fixed registry (see
:data:`repro.query.engine.DERIVED_COLUMNS`): ``hour``, ``day``,
``n_bits``, ``bit_bucket``, ``temp_c``, ``temp_bin``, ``has_temp`` —
the vocabulary of the paper's figures.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..core.errors import QueryPlanError
from ..logs.columnar import SHARD_COLUMNS

#: Comparison operators a predicate may use.
PREDICATE_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "in", "isnull", "notnull")

#: Aggregate functions the group-aggregate stage supports.
AGGREGATE_FNS = ("count", "sum", "min", "max", "mean")

#: Base (on-disk) columns every shard provides.
BASE_COLUMNS = tuple(SHARD_COLUMNS) + ("node",)

#: Derived-column registry names (implementations live in engine.py).
DERIVED_NAMES = (
    "hour", "day", "n_bits", "bit_bucket", "temp_c", "temp_bin", "has_temp",
)


@dataclass(frozen=True)
class Predicate:
    """One filter clause: ``column op value``.

    ``value`` is a scalar for comparisons, a list for ``in``, and absent
    for ``isnull``/``notnull``.  NaN follows IEEE semantics: comparisons
    are false for NaN rows, so ``temp_c >= x`` already excludes
    unlogged temperatures; use ``isnull``/``notnull`` to select on
    presence explicitly.
    """

    column: str
    op: str
    value: object = None

    def __post_init__(self) -> None:
        if self.op not in PREDICATE_OPS:
            raise QueryPlanError(
                f"unknown predicate op {self.op!r} (supported: {PREDICATE_OPS})"
            )
        if self.op == "in":
            if not isinstance(self.value, (list, tuple)) or not self.value:
                raise QueryPlanError("'in' predicate needs a non-empty list value")
            object.__setattr__(self, "value", tuple(_plain(v) for v in self.value))
        elif self.op in ("isnull", "notnull"):
            if self.value is not None:
                raise QueryPlanError(f"{self.op!r} predicate takes no value")
        elif isinstance(self.value, (list, tuple, dict)) or self.value is None:
            raise QueryPlanError(
                f"predicate {self.column} {self.op} needs a scalar value, "
                f"got {self.value!r}"
            )
        else:
            object.__setattr__(self, "value", _plain(self.value))

    def to_dict(self) -> dict:
        out = {"column": self.column, "op": self.op}
        if self.op == "in":
            out["value"] = list(self.value)
        elif self.op not in ("isnull", "notnull"):
            out["value"] = self.value
        return out

    @classmethod
    def from_dict(cls, spec: dict) -> "Predicate":
        _require_keys(spec, {"column", "op"}, "predicate")
        return cls(
            column=str(spec["column"]), op=str(spec["op"]), value=spec.get("value")
        )


@dataclass(frozen=True)
class Derive:
    """One derived column: registry function + (hashable) arguments."""

    name: str
    fn: str
    args: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.fn not in DERIVED_NAMES:
            raise QueryPlanError(
                f"unknown derive function {self.fn!r} (supported: {DERIVED_NAMES})"
            )
        args = self.args
        if isinstance(args, dict):
            args = tuple(sorted(args.items()))
        normalized = []
        for key, value in args:
            if isinstance(value, (list, tuple)):
                value = tuple(_plain(v) for v in value)
            elif getattr(value, "ndim", 0):  # numpy array (e.g. bin edges)
                value = tuple(_plain(v) for v in value.tolist())
            else:
                value = _plain(value)
            normalized.append((str(key), value))
        object.__setattr__(self, "args", tuple(normalized))

    @property
    def kwargs(self) -> dict:
        return {k: (list(v) if isinstance(v, tuple) else v) for k, v in self.args}

    def to_dict(self) -> dict:
        return {"name": self.name, "fn": self.fn, "args": self.kwargs}

    @classmethod
    def from_dict(cls, spec: dict) -> "Derive":
        _require_keys(spec, {"name", "fn"}, "derive")
        args = spec.get("args", {})
        if not isinstance(args, dict):
            raise QueryPlanError(f"derive args must be an object, got {args!r}")
        return cls(name=str(spec["name"]), fn=str(spec["fn"]), args=tuple(sorted(args.items())))


@dataclass(frozen=True)
class Aggregate:
    """One aggregate output: ``fn(column) AS alias``.

    ``count`` takes no column; every other function requires one.
    """

    fn: str
    column: str | None = None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.fn not in AGGREGATE_FNS:
            raise QueryPlanError(
                f"unknown aggregate {self.fn!r} (supported: {AGGREGATE_FNS})"
            )
        if self.fn == "count" and self.column is not None:
            raise QueryPlanError("count() takes no column")
        if self.fn != "count" and self.column is None:
            raise QueryPlanError(f"{self.fn}() needs a column")
        if self.alias is None:
            name = self.fn if self.column is None else f"{self.fn}_{self.column}"
            object.__setattr__(self, "alias", name)

    def to_dict(self) -> dict:
        out: dict = {"fn": self.fn, "alias": self.alias}
        if self.column is not None:
            out["column"] = self.column
        return out

    @classmethod
    def from_dict(cls, spec: dict) -> "Aggregate":
        _require_keys(spec, {"fn"}, "aggregate")
        return cls(
            fn=str(spec["fn"]),
            column=spec.get("column"),
            alias=spec.get("alias"),
        )


@dataclass(frozen=True)
class Query:
    """The logical plan.  Frozen, hashable, JSON-round-trippable.

    * ``filters`` — conjunction of predicates (AND semantics);
    * ``derive`` — derived columns usable by filters/keys/aggregates;
    * either ``project`` (row mode: return matching rows' columns) or
      ``group_by`` + ``aggregates`` (aggregate mode);
    * ``order_by`` — column names, ``-`` prefix for descending; group
      mode defaults to ordering by the group keys ascending;
    * ``limit`` — cap on output rows, applied after ordering;
    * ``nodes`` — restrict the scan to these shards up front.
    """

    filters: tuple[Predicate, ...] = ()
    derive: tuple[Derive, ...] = ()
    project: tuple[str, ...] | None = None
    group_by: tuple[str, ...] | None = None
    aggregates: tuple[Aggregate, ...] = ()
    order_by: tuple[str, ...] = ()
    limit: int | None = None
    nodes: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "filters", tuple(self.filters))
        object.__setattr__(self, "derive", tuple(self.derive))
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        object.__setattr__(self, "order_by", tuple(self.order_by))
        if self.project is not None:
            object.__setattr__(self, "project", tuple(self.project))
        if self.group_by is not None:
            object.__setattr__(self, "group_by", tuple(self.group_by))
        if self.nodes is not None:
            object.__setattr__(self, "nodes", tuple(self.nodes))
        self._validate()

    def _validate(self) -> None:
        if self.project is not None and self.group_by is not None:
            raise QueryPlanError("a plan is either row mode (project) or "
                                 "aggregate mode (group_by), not both")
        if self.aggregates and self.group_by is None:
            # Grand-total aggregation: allowed, modelled as one group.
            pass
        if self.group_by is not None and not self.aggregates:
            raise QueryPlanError("group_by without aggregates")
        if self.limit is not None and self.limit < 0:
            raise QueryPlanError(f"negative limit {self.limit}")
        derived = {}
        for d in self.derive:
            if d.name in derived or d.name in BASE_COLUMNS:
                raise QueryPlanError(f"duplicate column name {d.name!r}")
            derived[d.name] = d
        known = set(BASE_COLUMNS) | set(derived)
        for pred in self.filters:
            if pred.column not in known:
                raise QueryPlanError(f"filter references unknown column "
                                     f"{pred.column!r}")
        for name in (self.project or ()) + (self.group_by or ()):
            if name not in known:
                raise QueryPlanError(f"unknown column {name!r}")
        for agg in self.aggregates:
            if agg.column is not None and agg.column not in known:
                raise QueryPlanError(f"aggregate references unknown column "
                                     f"{agg.column!r}")
        out_columns = self.output_columns()
        if len(set(out_columns)) != len(out_columns):
            raise QueryPlanError(f"duplicate output columns in {out_columns}")
        for name in self.order_by:
            if name.lstrip("-") not in out_columns:
                raise QueryPlanError(
                    f"order_by references {name.lstrip('-')!r}, which is not "
                    f"an output column of this plan"
                )

    # -- shape -------------------------------------------------------------

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates)

    def output_columns(self) -> tuple[str, ...]:
        if self.is_aggregate:
            return (self.group_by or ()) + tuple(a.alias for a in self.aggregates)
        if self.project is not None:
            return self.project
        return BASE_COLUMNS + tuple(d.name for d in self.derive)

    def required_columns(self) -> set[str]:
        """Base + derived names the executor must materialize."""
        needed = set(p.column for p in self.filters)
        needed.update(self.group_by or ())
        needed.update(a.column for a in self.aggregates if a.column)
        if not self.is_aggregate:
            needed.update(self.output_columns())
        return needed

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        out: dict = {}
        if self.filters:
            out["filters"] = [p.to_dict() for p in self.filters]
        if self.derive:
            out["derive"] = [d.to_dict() for d in self.derive]
        if self.project is not None:
            out["project"] = list(self.project)
        if self.group_by is not None:
            out["group_by"] = list(self.group_by)
        if self.aggregates:
            out["aggregates"] = [a.to_dict() for a in self.aggregates]
        if self.order_by:
            out["order_by"] = list(self.order_by)
        if self.limit is not None:
            out["limit"] = self.limit
        if self.nodes is not None:
            out["nodes"] = list(self.nodes)
        return out

    @classmethod
    def from_dict(cls, spec: dict) -> "Query":
        if not isinstance(spec, dict):
            raise QueryPlanError(f"plan must be a JSON object, got {type(spec).__name__}")
        unknown = set(spec) - {
            "filters", "derive", "project", "group_by", "aggregates",
            "order_by", "limit", "nodes",
        }
        if unknown:
            raise QueryPlanError(f"unknown plan fields: {sorted(unknown)}")
        try:
            return cls(
                filters=tuple(
                    Predicate.from_dict(p) for p in spec.get("filters", ())
                ),
                derive=tuple(Derive.from_dict(d) for d in spec.get("derive", ())),
                project=_str_tuple(spec.get("project")),
                group_by=_str_tuple(spec.get("group_by")),
                aggregates=tuple(
                    Aggregate.from_dict(a) for a in spec.get("aggregates", ())
                ),
                order_by=_str_tuple(spec.get("order_by")) or (),
                limit=spec.get("limit"),
                nodes=_str_tuple(spec.get("nodes")),
            )
        except (TypeError, AttributeError) as exc:
            raise QueryPlanError(f"malformed plan: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Query":
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise QueryPlanError(f"plan is not valid JSON: {exc}") from exc
        return cls.from_dict(spec)

    def digest(self) -> str:
        """Stable content digest; half of the result-cache key."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:32]


def _plain(value):
    """Coerce NumPy scalars to plain Python so plans serialize to JSON."""
    return value.item() if hasattr(value, "item") else value


def _str_tuple(value) -> tuple[str, ...] | None:
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise QueryPlanError(f"expected a list of column names, got {value!r}")
    return tuple(str(v) for v in value)


def _require_keys(spec: dict, keys: set[str], what: str) -> None:
    if not isinstance(spec, dict) or not keys <= set(spec):
        raise QueryPlanError(f"malformed {what}: {spec!r} (needs {sorted(keys)})")
