"""The vectorized executor: plans in, column arrays out.

Execution is shard-at-a-time: prune against the zone map, load only the
base columns the plan touches, materialize derived columns, evaluate
the filter conjunction as one boolean mask, then either collect
projected rows or fold the shard into the group-aggregate accumulator.
No record objects, no per-row Python — every stage is a NumPy kernel,
which is what makes the ported analyses bit-identical to their
hand-written ancestors: they bottom out in the same ufuncs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core import bitops
from ..core.errors import QueryPlanError
from .cache import QueryCache
from .plan import BASE_COLUMNS, Aggregate, Predicate, Query
from .prune import shard_may_match
from .source import as_source

# ---------------------------------------------------------------------------
# Derived columns
# ---------------------------------------------------------------------------


def _derive_hour(cols: dict) -> np.ndarray:
    # Matches repro.analysis.temporal.hourly_histogram exactly.
    return (cols["t"] % 24.0).astype(np.int64) % 24


def _derive_day(cols: dict, *, n_days: int) -> np.ndarray:
    # Matches repro.analysis.temporal.daily_histogram exactly.
    return np.clip((cols["t"] // 24.0).astype(np.int64), 0, int(n_days) - 1)


def _derive_n_bits(cols: dict) -> np.ndarray:
    return np.asarray(
        bitops.n_flipped_bits(cols["expected"], cols["actual"]), dtype=np.int64
    ).reshape(-1)


def _derive_bit_bucket(cols: dict, *, max_bucket: int = 6) -> np.ndarray:
    return np.minimum(_derive_n_bits(cols), int(max_bucket))


def _derive_temp_c(cols: dict) -> np.ndarray:
    # The ErrorFrame temperature semantic: shard float64 values pass
    # through the frame's float32 column before analyses widen them
    # back.  Reproducing the round trip is what keeps ported histograms
    # bit-identical.
    return cols["temp"].astype(np.float32).astype(np.float64)


def _derive_has_temp(cols: dict) -> np.ndarray:
    return ~np.isnan(cols["temp"])


def _derive_temp_bin(cols: dict, *, edges) -> np.ndarray:
    """np.histogram-compatible binning of ``temp_c``; -1 = out of range.

    Same arithmetic as ``np.histogram(x, bins=edges)`` for an explicit
    edge array: right-open bins, the last bin closed, NaN and
    out-of-range values dropped (here: marked -1 for the filter stage).
    """
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.shape[0] < 2:
        raise QueryPlanError("temp_bin needs at least two bin edges")
    if np.any(np.diff(edges) <= 0):
        raise QueryPlanError("temp_bin edges must be strictly increasing")
    x = _derive_temp_c(cols)
    idx = np.searchsorted(edges, x, side="right").astype(np.int64) - 1
    idx = np.where(x == edges[-1], edges.shape[0] - 2, idx)
    valid = (x >= edges[0]) & (x <= edges[-1])
    return np.where(valid, idx, np.int64(-1))


#: fn name -> (callable, base columns it needs).  Every function must be
#: elementwise (row i of the output depends only on row i of the deps):
#: the executor exploits this by computing derived *output* columns on
#: already-filtered rows instead of whole shards.
DERIVED_COLUMNS = {
    "hour": (_derive_hour, {"t"}),
    "day": (_derive_day, {"t"}),
    "n_bits": (_derive_n_bits, {"expected", "actual"}),
    "bit_bucket": (_derive_bit_bucket, {"expected", "actual"}),
    "temp_c": (_derive_temp_c, {"temp"}),
    "has_temp": (_derive_has_temp, {"temp"}),
    "temp_bin": (_derive_temp_bin, {"temp"}),
}


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class ExecutionStats:
    """What one execution did (and did not) touch."""

    shards_total: int = 0
    shards_pruned: int = 0
    shards_scanned: int = 0
    rows_scanned: int = 0
    rows_output: int = 0
    cache_hit: bool = False
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "shards_total": self.shards_total,
            "shards_pruned": self.shards_pruned,
            "shards_scanned": self.shards_scanned,
            "rows_scanned": self.rows_scanned,
            "rows_output": self.rows_output,
            "cache_hit": self.cache_hit,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class QueryResult:
    """Ordered output columns plus execution accounting."""

    columns: dict[str, np.ndarray]
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def n_rows(self) -> int:
        if not self.columns:
            return 0
        return int(next(iter(self.columns.values())).shape[0])

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def to_dict(self) -> dict:
        """JSON-shaped rendering (the server's response body)."""
        return {
            "columns": {
                name: _jsonable_list(arr) for name, arr in self.columns.items()
            },
            "n_rows": self.n_rows,
            "stats": self.stats.to_dict(),
        }


def _jsonable_list(arr: np.ndarray) -> list:
    # repro: noqa[NPY002]: JSON wire boundary — results leave the array domain here
    out = arr.tolist()
    if arr.dtype.kind == "f":
        # JSON has no NaN/Inf literal; the wire format uses null.
        out = [None if (v != v or v in (float("inf"), float("-inf"))) else v
               for v in out]
    return out


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class QueryEngine:
    """Executes :class:`Query` plans against one shard source."""

    def __init__(self, source, *, cache: QueryCache | None = None,
                 prune: bool = True):
        self.source = as_source(source)
        self.cache = cache if cache is not None else QueryCache()
        self.prune = prune
        self.queries_run = 0
        self._seen_fingerprint: str | None = None

    # -- public API --------------------------------------------------------

    def execute(self, plan: Query, *, use_cache: bool = True) -> QueryResult:
        start = time.perf_counter()
        self.queries_run += 1
        fingerprint = self.source.fingerprint()
        if fingerprint != self._seen_fingerprint:
            # The archive changed under us (live ingest/compaction
            # commit): results keyed on any older state are dead weight.
            if self._seen_fingerprint is not None:
                self.cache.invalidate(fingerprint)
            self._seen_fingerprint = fingerprint
        key = (fingerprint, plan.digest())
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                stats = ExecutionStats(
                    shards_total=cached.stats.shards_total,
                    shards_pruned=cached.stats.shards_pruned,
                    rows_output=cached.stats.rows_output,
                    cache_hit=True,
                    elapsed_s=time.perf_counter() - start,
                )
                return QueryResult(columns=cached.columns, stats=stats)
        result = self._execute_cold(plan)
        result.stats.elapsed_s = time.perf_counter() - start
        if use_cache:
            self.cache.put(key, result)
        return result

    # -- execution ---------------------------------------------------------

    def _execute_cold(self, plan: Query) -> QueryResult:
        stats = ExecutionStats()
        derives = {d.name: d for d in plan.derive}
        needed = plan.required_columns()
        base_needed = {n for n in needed if n in BASE_COLUMNS}
        for name in needed:
            spec = derives.get(name)
            if spec is not None:
                base_needed |= DERIVED_COLUMNS[spec.fn][1]
        if not base_needed - {"node"}:
            base_needed.add("kind")  # narrowest column, for row counts

        shards = self.source.shards()
        if plan.nodes is not None:
            wanted_nodes = set(plan.nodes)
            shards = [s for s in shards if s.node in wanted_nodes]
        stats.shards_total = len(shards)

        parts: list[dict[str, np.ndarray]] = []
        for shard in shards:
            if self.prune and not shard_may_match(
                shard.zone_map, shard.node, plan.filters, derives
            ):
                stats.shards_pruned += 1
                continue
            stats.shards_scanned += 1
            base = self.source.load_columns(shard.node, base_needed)
            n = int(next(iter(base.values())).shape[0]) if base else 0
            stats.rows_scanned += n
            if n == 0:
                continue
            columns = dict(base)
            mask = self._filter_mask(plan, columns, derives, n)
            if mask is not None and not mask.any():
                continue
            part = self._assemble_part(plan, columns, derives, mask, n)
            parts.append(part)

        if plan.is_aggregate:
            columns = self._aggregate(plan, parts)
        else:
            columns = self._collect_rows(plan, parts)
        columns = self._order_and_limit(plan, columns)
        for arr in columns.values():
            arr.flags.writeable = False
        stats.rows_output = (
            int(next(iter(columns.values())).shape[0]) if columns else 0
        )
        return QueryResult(columns=columns, stats=stats)

    def _materialize(self, name: str, columns: dict, derives: dict) -> np.ndarray:
        if name in columns:
            return columns[name]
        spec = derives.get(name)
        if spec is None:
            raise QueryPlanError(f"column {name!r} is not available")
        fn, _deps = DERIVED_COLUMNS[spec.fn]
        arr = fn(columns, **spec.kwargs)
        columns[name] = arr
        return arr

    def _filter_mask(self, plan: Query, columns: dict, derives: dict,
                     n: int) -> np.ndarray | None:
        mask: np.ndarray | None = None
        for pred in plan.filters:
            arr = self._materialize(pred.column, columns, derives)
            clause = _evaluate(pred, arr)
            mask = clause if mask is None else (mask & clause)
            if not mask.any():
                return mask
        return mask

    def _assemble_part(self, plan: Query, columns: dict, derives: dict,
                       mask: np.ndarray | None, n: int) -> dict:
        """One shard's contribution to the output: only the columns the
        output stage consumes (group keys, aggregate inputs, projected
        rows) — filter-only columns are dropped here, and derived output
        columns not referenced by a filter are computed on the already
        masked rows (derive fns are elementwise, so this is exact).
        """
        if plan.is_aggregate:
            wanted = list(plan.group_by or ())
            wanted += [a.column for a in plan.aggregates if a.column]
        else:
            wanted = list(plan.output_columns())
        masked: dict[str, np.ndarray] = {}

        def resolve(name: str) -> np.ndarray:
            if name in masked:
                return masked[name]
            if name in columns:  # base, or derived materialized for a filter
                arr = columns[name]
                out = arr[mask] if mask is not None else arr
            else:
                spec = derives.get(name)
                if spec is None:
                    raise QueryPlanError(f"column {name!r} is not available")
                fn, deps = DERIVED_COLUMNS[spec.fn]
                out = fn({dep: resolve(dep) for dep in deps}, **spec.kwargs)
            masked[name] = out
            return out

        part = {name: resolve(name) for name in wanted}
        if not part:  # pure count over all rows
            kept = int(mask.sum()) if mask is not None else n
            part["__rows__"] = np.empty(kept, dtype=np.uint8)
        return part

    # -- output assembly ---------------------------------------------------

    def _collect_rows(self, plan: Query, parts: list[dict]) -> dict:
        names = plan.output_columns()
        if not parts:
            return {name: np.empty(0, dtype=np.float64) for name in names}
        return {
            name: np.concatenate([p[name] for p in parts]) for name in names
        }

    def _aggregate(self, plan: Query, parts: list[dict]) -> dict:
        keys = plan.group_by or ()
        out: dict[str, np.ndarray] = {}
        if not parts:
            if keys:
                return {
                    name: np.empty(0, dtype=np.float64)
                    for name in plan.output_columns()
                }
            # Grand total over zero rows: count 0, everything else NaN.
            for agg in plan.aggregates:
                out[agg.alias] = (
                    np.array([0], dtype=np.int64)
                    if agg.fn == "count"
                    else np.array([np.nan], dtype=np.float64)
                )
            return out

        def gather(name: str) -> np.ndarray:
            return np.concatenate([p[name] for p in parts])

        n_rows = int(sum(next(iter(p.values())).shape[0] for p in parts))
        if not keys:
            for agg in plan.aggregates:
                values = gather(agg.column) if agg.column else None
                out[agg.alias] = _fold_all(agg, values, n_rows)
            return out

        key_arrays = [gather(k) for k in keys]
        order = np.lexsort(key_arrays[::-1])
        sorted_keys = [k[order] for k in key_arrays]
        boundary = np.zeros(n_rows, dtype=bool)
        boundary[0] = True
        for k in sorted_keys:
            boundary[1:] |= k[1:] != k[:-1]
        starts = np.flatnonzero(boundary)
        for name, k in zip(keys, sorted_keys):
            out[name] = k[starts]
        counts = np.diff(np.append(starts, n_rows))
        for agg in plan.aggregates:
            if agg.fn == "count":
                out[agg.alias] = counts.astype(np.int64)
                continue
            values = gather(agg.column)[order]
            if agg.fn == "sum":
                out[agg.alias] = np.add.reduceat(values, starts)
            elif agg.fn == "min":
                out[agg.alias] = np.minimum.reduceat(values, starts)
            elif agg.fn == "max":
                out[agg.alias] = np.maximum.reduceat(values, starts)
            elif agg.fn == "mean":
                sums = np.add.reduceat(values.astype(np.float64), starts)
                out[agg.alias] = sums / counts
        return out

    def _order_and_limit(self, plan: Query, columns: dict) -> dict:
        return order_and_limit(plan, columns)


def order_and_limit(plan: Query, columns: dict) -> dict:
    """Apply a plan's order/limit stage to assembled output columns.

    Module-level because the scatter-gather merge re-applies the same
    stage after combining per-partition results — the ordering must be
    byte-identical to single-engine execution.
    """
    if columns and next(iter(columns.values())).shape[0]:
        order_by = plan.order_by
        if not order_by and plan.is_aggregate and plan.group_by:
            order_by = plan.group_by  # deterministic default
        if order_by:
            idx = np.arange(next(iter(columns.values())).shape[0])
            for name in reversed(order_by):
                descending = name.startswith("-")
                col = columns[name.lstrip("-")][idx]
                sub = np.argsort(col, kind="stable")
                if descending:
                    sub = sub[::-1]
                idx = idx[sub]
            columns = {name: arr[idx] for name, arr in columns.items()}
    if plan.limit is not None:
        columns = {
            name: arr[: plan.limit] for name, arr in columns.items()
        }
    return columns


def _evaluate(pred: Predicate, arr: np.ndarray) -> np.ndarray:
    op, value = pred.op, pred.value
    if op == "isnull":
        return np.isnan(arr) if arr.dtype.kind == "f" else np.zeros(
            arr.shape[0], dtype=bool
        )
    if op == "notnull":
        return ~np.isnan(arr) if arr.dtype.kind == "f" else np.ones(
            arr.shape[0], dtype=bool
        )
    with np.errstate(invalid="ignore"):
        if op == "eq":
            return arr == value
        if op == "ne":
            return arr != value
        if op == "lt":
            return arr < value
        if op == "le":
            return arr <= value
        if op == "gt":
            return arr > value
        if op == "ge":
            return arr >= value
        if op == "in":
            return np.isin(arr, list(value))
    raise QueryPlanError(f"unhandled predicate op {op!r}")  # pragma: no cover


def _fold_all(agg: Aggregate, values: np.ndarray | None, n_rows: int) -> np.ndarray:
    if agg.fn == "count":
        return np.array([n_rows], dtype=np.int64)
    assert values is not None
    if agg.fn == "sum":
        total = values.sum()
        return np.array([total], dtype=total.dtype)
    if agg.fn == "min":
        low = values.min()
        return np.array([low], dtype=low.dtype)
    if agg.fn == "max":
        high = values.max()
        return np.array([high], dtype=high.dtype)
    return np.array([values.astype(np.float64).mean()], dtype=np.float64)
