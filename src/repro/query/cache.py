"""LRU result cache keyed by ``(archive fingerprint, plan digest)``.

Both key halves are content digests: the fingerprint covers the shard
bytes (so any data change is a new key — and a zone-map-only manifest
rewrite is *not*), and the plan digest covers the canonical JSON of the
logical plan.  Entries are therefore immutable by construction; cached
result arrays are marked read-only before they are stored so an
aliasing caller cannot poison later hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock


@dataclass
class QueryCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class QueryCache:
    """A small thread-safe LRU over query results.

    Thread safety matters because the telemetry server executes queries
    on a thread pool; the lock protects the OrderedDict's move-to-end
    bookkeeping, not the (immutable) cached values.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self.stats = QueryCacheStats()
        self._entries: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._lock = Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple[str, str]):
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: tuple[str, str], value) -> None:
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, current_fingerprint: str) -> int:
        """Evict every entry keyed under a *different* archive fingerprint.

        Called by the engine when its source's fingerprint changes (an
        ingest or compaction commit): results for the old archive state
        can never be served again, so holding them only starves the LRU.
        Entries already keyed on ``current_fingerprint`` survive.
        Returns the number of entries dropped.
        """
        with self._lock:
            stale = [
                key for key in self._entries if key[0] != current_fingerprint
            ]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
