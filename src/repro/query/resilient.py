"""Graceful degradation for the query path: breaker, retries, staleness.

The serving tier's failure model (docs/ROBUSTNESS.md, "Serving under
failure") assumes the archive underneath a live query can misbehave —
slow disks, reset connections, torn segments observed mid-compaction,
wedged storage workers — while dashboards keep polling.  This module
provides the three mechanisms the server composes:

* :class:`CircuitBreaker` — classic closed/open/half-open gate with an
  exponentially backed-off reset timeout, so a dead archive is probed,
  not hammered.
* :class:`ResilientSource` — wraps any shard source and gives
  ``load_columns`` bounded retries with exponential backoff, an optional
  per-read timeout (reads run on a small dedicated thread pool so a
  wedged read can be abandoned), and breaker accounting.  When the
  breaker is open, reads fail fast with
  :class:`~repro.core.errors.SourceUnavailableError` instead of touching
  the sick storage at all.
* :class:`StaleResultCache` + :class:`ResilientExecutor` — the
  stale-while-revalidate path: every healthy (non-partial) result is
  remembered per plan digest; when a live execution fails, the last-good
  result is served within a bounded staleness window, explicitly marked
  degraded so a consumer can never mistake it for fresh data.

Everything is clock-injectable (``time.monotonic`` by default — these
are durations, never simulation input) and thread-safe: the server
executes queries on a thread pool.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from ..core.errors import ShardCorruptError, SourceUnavailableError

#: Errors a retry may cure: transport-level failures and corrupt reads
#: (a torn segment observed mid-compaction heals on the next manifest
#: snapshot).  Everything else (plan errors, programming bugs) is not
#: retried.
TRANSIENT_READ_ERRORS = (ConnectionError, TimeoutError, OSError, ShardCorruptError)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Closed / open / half-open breaker over a failure-prone dependency.

    ``failure_threshold`` consecutive failures open the breaker; while
    open, :meth:`allow` rejects instantly for ``reset_timeout_s``.  The
    first caller after the cool-down gets a half-open probe; a probe
    success closes the breaker, a probe failure re-opens it with the
    timeout multiplied by ``backoff_factor`` (capped at
    ``max_reset_timeout_s``), so a persistently dead dependency is
    probed at a geometrically decaying rate.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout_s: float = 1.0,
        backoff_factor: float = 2.0,
        max_reset_timeout_s: float = 60.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be > 0")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        self.failure_threshold = failure_threshold
        self.base_reset_timeout_s = reset_timeout_s
        self.backoff_factor = backoff_factor
        self.max_reset_timeout_s = max_reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._current_timeout_s = reset_timeout_s
        self._probing = False
        self.opens = 0
        self.rejections = 0
        self.failures = 0
        self.successes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        if self._state == "open" and (
            self._clock() - self._opened_at >= self._current_timeout_s
        ):
            return "half_open"
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  (Counts rejections.)"""
        with self._lock:
            state = self._effective_state()
            if state == "closed":
                return True
            if state == "half_open" and not self._probing:
                self._state = "half_open"
                self._probing = True
                return True
            self.rejections += 1
            return False

    def retry_after_s(self) -> float:
        """Seconds until the next half-open probe (0 when closed)."""
        with self._lock:
            if self._state == "closed":
                return 0.0
            remaining = self._current_timeout_s - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            if self._state == "half_open":
                self._current_timeout_s = self.base_reset_timeout_s
            self._state = "closed"
            self._probing = False
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            if self._state == "half_open":
                # Failed probe: back off the next one.
                self._current_timeout_s = min(
                    self._current_timeout_s * self.backoff_factor,
                    self.max_reset_timeout_s,
                )
                self._open()
                return
            self._consecutive_failures += 1
            if (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._current_timeout_s = self.base_reset_timeout_s
                self._open()

    def _open(self) -> None:
        self._state = "open"
        self._probing = False
        self._consecutive_failures = 0
        self._opened_at = self._clock()
        self.opens += 1

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "state": self._effective_state(),
                "opens": self.opens,
                "rejections": self.rejections,
                "failures": self.failures,
                "successes": self.successes,
                "reset_timeout_s": self._current_timeout_s,
            }


# ---------------------------------------------------------------------------
# Retrying / timing-out source wrapper
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReadRetryPolicy:
    """Retry budget for one shard read (attempts = 1 + retries)."""

    retries: int = 2
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    backoff_max_s: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retrying after failed attempt number ``attempt``."""
        return min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )


@dataclass
class ResilienceStats:
    """What the resilient read path absorbed."""

    reads: int = 0
    retries: int = 0
    read_timeouts: int = 0
    abandoned_reads: int = 0
    exhausted: int = 0

    def to_dict(self) -> dict:
        return {
            "reads": self.reads,
            "retries": self.retries,
            "read_timeouts": self.read_timeouts,
            "abandoned_reads": self.abandoned_reads,
            "exhausted": self.exhausted,
        }


class ResilientSource:
    """Shard source with retries, per-read timeouts and a breaker.

    Implements the source protocol over ``inner``.  ``load_columns``
    retries transient failures (:data:`TRANSIENT_READ_ERRORS`) with
    exponential backoff; with ``read_timeout_s`` set, each attempt runs
    on a small dedicated thread pool and is abandoned (counted, the
    thread left to finish) when it exceeds the deadline — the only way
    to bound a wedged blocking read without killing the process.

    The breaker sees every attempt: once it opens, reads fail fast with
    :class:`SourceUnavailableError` carrying the remaining cool-down,
    and the half-open probe is whatever read arrives first after it.
    """

    def __init__(
        self,
        inner,
        *,
        breaker: CircuitBreaker | None = None,
        retry: ReadRetryPolicy | None = None,
        read_timeout_s: float | None = None,
        max_read_threads: int = 4,
        sleep=time.sleep,
    ):
        if read_timeout_s is not None and read_timeout_s <= 0:
            raise ValueError("read_timeout_s must be > 0")
        self._inner = inner
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.retry = retry if retry is not None else ReadRetryPolicy()
        self.read_timeout_s = read_timeout_s
        self.stats = ResilienceStats()
        self._sleep = sleep
        self._max_read_threads = max_read_threads
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    # -- source protocol ---------------------------------------------------

    @property
    def io(self):
        return self._inner.io

    def __getattr__(self, name):
        # Source extras (``manifest``, ``directory``, ...) pass through.
        return getattr(self._inner, name)

    def fingerprint(self) -> str:
        return self._guarded(self._inner.fingerprint)

    def shards(self):
        return self._guarded(self._inner.shards)

    def load_columns(self, node: str, names):
        return self._guarded(self._timed_read, node, names)

    # -- machinery ---------------------------------------------------------

    def _guarded(self, fn, *args):
        if not self.breaker.allow():
            raise SourceUnavailableError(
                "archive source circuit breaker is open",
                retry_after_s=self.breaker.retry_after_s(),
            )
        attempt = 0
        while True:
            attempt += 1
            with self._lock:
                self.stats.reads += 1
            try:
                value = fn(*args)
            except TRANSIENT_READ_ERRORS as exc:
                self.breaker.record_failure()
                if attempt > self.retry.retries:
                    with self._lock:
                        self.stats.exhausted += 1
                    raise
                with self._lock:
                    self.stats.retries += 1
                self._sleep(self.retry.backoff_s(attempt))
                if not self.breaker.allow():
                    raise SourceUnavailableError(
                        "archive source circuit breaker opened mid-retry",
                        retry_after_s=self.breaker.retry_after_s(),
                    ) from exc
                continue
            self.breaker.record_success()
            return value

    def _timed_read(self, node: str, names):
        if self.read_timeout_s is None:
            return self._inner.load_columns(node, names)
        pool = self._read_pool()
        future = pool.submit(self._inner.load_columns, node, set(names))
        try:
            return future.result(timeout=self.read_timeout_s)
        except concurrent.futures.TimeoutError:
            # The read thread is wedged (or starved behind wedged
            # peers); abandon it — it parks until the blocking call
            # returns — and surface a retryable timeout.
            future.cancel()
            with self._lock:
                self.stats.read_timeouts += 1
                self.stats.abandoned_reads += 1
            raise TimeoutError(
                f"shard read for {node!r} exceeded {self.read_timeout_s}s"
            ) from None

    def _read_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self._max_read_threads,
                    thread_name_prefix="repro-shard-read",
                )
            return self._pool

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# Stale-while-revalidate
# ---------------------------------------------------------------------------


@dataclass
class StaleHit:
    """A last-good result served in place of a failed live execution."""

    result: object
    age_s: float
    fingerprint: str | None


class StaleResultCache:
    """Last-good query results keyed by plan digest, LRU-bounded.

    Unlike :class:`~repro.query.cache.QueryCache` this cache is keyed by
    the *plan alone*: its whole purpose is to survive archive-state
    transitions (and archive damage) that invalidate the fingerprint-
    keyed cache.  Entries therefore carry their age, and :meth:`get`
    enforces the staleness bound so a consumer can never be served
    arbitrarily old data unflagged.
    """

    def __init__(self, max_entries: int = 32, *, clock=time.monotonic):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._clock = clock
        self._entries: OrderedDict[str, tuple[object, str | None, float]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, digest: str, result, fingerprint: str | None = None) -> None:
        with self._lock:
            self._entries[digest] = (result, fingerprint, self._clock())
            self._entries.move_to_end(digest)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def get(self, digest: str, max_stale_s: float) -> StaleHit | None:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                return None
            result, fingerprint, stored_at = entry
            age = self._clock() - stored_at
            if age > max_stale_s:
                del self._entries[digest]
                return None
            return StaleHit(result=result, age_s=age, fingerprint=fingerprint)


@dataclass
class ExecutionOutcome:
    """One resilient execution: the result plus its honesty labels.

    ``degraded`` is True whenever the result is anything other than a
    fresh, complete answer — served stale, or assembled from a partial
    scatter.  A server must surface these flags on the wire verbatim.
    """

    result: object
    degraded: bool = False
    stale: bool = False
    partial: bool = False
    reason: str | None = None
    stale_age_s: float | None = None
    missing_nodes: tuple[str, ...] = ()


@dataclass
class DegradeStats:
    served_stale: int = 0
    served_partial: int = 0
    stale_misses: int = 0

    def to_dict(self) -> dict:
        return {
            "served_stale": self.served_stale,
            "served_partial": self.served_partial,
            "stale_misses": self.stale_misses,
        }


class ResilientExecutor:
    """Execute plans with a stale-while-revalidate fallback.

    Wraps any engine-like object (``execute(plan) -> QueryResult``).  A
    healthy complete result refreshes the stale cache; a failed live
    execution within ``max_stale_s`` of a last-good result serves that
    result marked degraded; a failure with nothing to fall back on
    re-raises, letting the server map the error to a status code.
    Partial scatter results pass through flagged and are never cached.
    """

    def __init__(
        self,
        engine,
        *,
        stale: StaleResultCache | None = None,
        max_stale_s: float = 300.0,
    ):
        if max_stale_s < 0:
            raise ValueError("max_stale_s must be >= 0")
        self.engine = engine
        self.stale = stale if stale is not None else StaleResultCache()
        self.max_stale_s = max_stale_s
        self.stats = DegradeStats()
        self._lock = threading.Lock()

    def execute(self, plan) -> ExecutionOutcome:
        digest = plan.digest()
        try:
            result = self.engine.execute(plan)
        except SourceUnavailableError as exc:
            return self._fall_back(digest, exc)
        except TRANSIENT_READ_ERRORS as exc:
            # ShardCorruptError rides in here: a torn segment read is a
            # storage fault, not a plan error.
            return self._fall_back(digest, exc)
        missing = tuple(getattr(result, "missing_nodes", ()))
        if getattr(result, "partial", False):
            with self._lock:
                self.stats.served_partial += 1
            return ExecutionOutcome(
                result=result,
                degraded=True,
                partial=True,
                reason=f"partial result: {len(missing)} nodes unavailable",
                missing_nodes=missing,
            )
        self.stale.put(digest, result)
        return ExecutionOutcome(result=result)

    def _fall_back(self, digest: str, exc: Exception) -> ExecutionOutcome:
        hit = self.stale.get(digest, self.max_stale_s)
        if hit is None:
            with self._lock:
                self.stats.stale_misses += 1
            raise exc
        with self._lock:
            self.stats.served_stale += 1
        return ExecutionOutcome(
            result=hit.result,
            degraded=True,
            stale=True,
            reason=f"{type(exc).__name__}: {exc}",
            stale_age_s=hit.age_s,
        )
