"""Shard sources: where the engine's scan stage gets its columns.

Two implementations share one interface:

* :class:`ArchiveSource` — an on-disk columnar archive directory.  Only
  the manifest is read at construction; each shard's ``.npz`` is opened
  on demand, and only the *columns a plan needs* are decoded from it.
  Every read is counted (:class:`IoStats`), which is how tests and the
  acceptance bench prove that zone-map pruning really skips disk I/O.
* :class:`MemorySource` — an in-memory :class:`ColumnarArchive` (e.g.
  fresh campaign output), with zone maps computed on first use.  Same
  pruning semantics, no disk.

Both expose a stable ``fingerprint()`` identifying the archive content;
together with the plan digest it keys the engine's result cache.

v3 archives are *live*: a node may be covered by several manifest
entries (fresh L0 segments plus compacted runs), and the manifest may
be atomically replaced under a running source by an ingest or
compaction commit.  :class:`ArchiveSource` therefore assembles
multi-part nodes in canonical order at scan time and (with
``watch=True``, the default) re-reads the manifest whenever its
``fingerprint()`` is asked for and the file changed — which is exactly
once per query, at cache-key time, so one plan always scans a single
consistent snapshot.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.errors import ShardCorruptError
from ..logs.columnar import (
    MANIFEST_NAME,
    SHARD_COLUMNS,
    ColumnarArchive,
    RecordColumns,
    _load_shard,
    compute_zone_map,
    entry_nodes,
    manifest_fingerprint,
    merge_node_parts,
    read_manifest,
)
from .prune import merge_zone_maps

#: Budget (in decoded column bytes) for multi-node segments kept hot
#: per source.  One segment serves many per-node scans; without the
#: cache an N-node segment would be decoded N times per query, and a
#: node whose parts span every live segment (a hot node between
#: compactions) would thrash any small count-based cache.
SEGMENT_CACHE_BYTES = 128 * 1024 * 1024


class _NodeSlices:
    """A decoded multi-node segment, pre-sorted for per-node slicing.

    Holds exactly one sorted copy of the segment's columns plus a
    ``node -> (start, stop)`` index; ``get()`` hands out zero-copy
    views.  This keeps the segment cache's footprint proportional to
    the segment data itself rather than to the number of nodes it
    covers (a fleet segment split into thousands of tiny materialized
    ``RecordColumns`` costs far more in object overhead than in data).
    """

    __slots__ = ("_cols", "_bounds", "nbytes")

    def __init__(self, cols: RecordColumns):
        order = np.argsort(cols.node_code, kind="stable")
        grouped = cols.take(order)
        codes = np.arange(len(grouped.node_names))
        starts = np.searchsorted(grouped.node_code, codes, side="left")
        stops = np.searchsorted(grouped.node_code, codes, side="right")
        self._cols = grouped
        self._bounds = {
            name: (int(starts[code]), int(stops[code]))
            for code, name in enumerate(grouped.node_names)
            if stops[code] > starts[code]
        }
        self.nbytes = int(
            sum(getattr(grouped, name).nbytes for name in SHARD_COLUMNS)
        )

    def get(self, node: str) -> RecordColumns | None:
        bounds = self._bounds.get(node)
        if bounds is None:
            return None
        lo, hi = bounds
        return RecordColumns(
            **{
                name: getattr(self._cols, name)[lo:hi]
                for name in SHARD_COLUMNS
            },
            node_code=np.zeros(hi - lo, dtype=np.int32),
            node_names=[node],
        )


@dataclass
class IoStats:
    """Counters for shard I/O performed on behalf of queries."""

    shards_read: int = 0
    columns_read: int = 0
    bytes_read: int = 0

    def to_dict(self) -> dict:
        return {
            "shards_read": self.shards_read,
            "columns_read": self.columns_read,
            "bytes_read": self.bytes_read,
        }


@dataclass(frozen=True)
class ShardInfo:
    """One scannable unit: a node, its row count, and zone information.

    Under v3 one "shard" may be assembled from several on-disk parts;
    ``n_parts`` says how many, and ``zone_map`` is then the (exact or
    conservative) merge of the parts' zones.  ``n_records`` is None when
    no exact per-node count is derivable (the node lives only inside
    large aggregate-zoned segments).
    """

    node: str
    n_records: int | None
    zone_map: dict | None
    n_parts: int = 1


class ArchiveSource:
    """Columns served straight from an archive directory's shard files.

    ``verify_checksums`` defaults to False here (unlike
    :meth:`ColumnarArchive.load`): verifying a shard requires hashing
    its full bytes, which defeats column-selective reads.  Run
    ``repro logs inspect --verify`` (or load eagerly) when integrity is
    in question; the query layer optimizes the hot read path.

    ``watch`` (default True) makes ``fingerprint()`` stat the manifest
    and re-read it when an ingest/compaction commit replaced it, so a
    long-lived source (the telemetry server's) serves live data and
    never reuses a stale cache key.  A scan that races a compactor's
    file cleanup refreshes and retries once.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        verify_checksums: bool = False,
        watch: bool = True,
    ):
        self.directory = Path(path)
        self.io = IoStats()
        self._verify = verify_checksums
        self._watch = watch
        self._lock = threading.Lock()
        self._segments: OrderedDict[str, _NodeSlices] = OrderedDict()
        self._segment_bytes = 0
        self._load_manifest()

    # -- manifest snapshot -------------------------------------------------

    def _manifest_stat(self) -> tuple[int, int] | None:
        try:
            stat = os.stat(self.directory / MANIFEST_NAME)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _load_manifest(self) -> None:
        """(Re)build the scan index from the manifest on disk."""
        manifest = read_manifest(self.directory)
        covering: dict[str, list[dict]] = {}
        for entry in manifest["shards"]:
            for name in entry_nodes(entry):
                covering.setdefault(name, []).append(entry)
        for parts in covering.values():
            parts.sort(key=lambda e: int(e.get("seq") or 0))
        shards = []
        for node in sorted(covering):
            entries = covering[node]
            zones = [self._node_zone(entry, node) for entry in entries]
            zone = zones[0] if len(zones) == 1 else merge_zone_maps(zones)
            n_records = self._node_count(entries, node)
            shards.append(
                ShardInfo(
                    node=node,
                    n_records=n_records,
                    zone_map=zone,
                    n_parts=len(entries),
                )
            )
        with self._lock:
            self.manifest = manifest
            self._stat = self._manifest_stat()
            self._fingerprint = manifest_fingerprint(manifest)
            self._covering = covering
            self._shards = shards
            self._segments.clear()
            self._segment_bytes = 0

    @staticmethod
    def _node_zone(entry: dict, node: str) -> dict | None:
        """This entry's zone as seen by one node.

        Per-node shards and small segments carry exact per-node zones;
        large segments answer with their aggregate zone, whose ranges
        and counts are supersets of any member node's — conservative
        for every pruning path (see :mod:`repro.query.prune`).
        """
        if entry.get("node") is not None:
            return entry.get("zone_map")
        node_zones = entry.get("node_zones")
        if node_zones is not None and node in node_zones:
            return node_zones[node]
        return entry.get("zone_map")

    @staticmethod
    def _node_count(entries: list[dict], node: str) -> int | None:
        """Exact row count for the node, or None if any part can't say."""
        total = 0
        for entry in entries:
            if entry.get("node") is not None:
                n = entry.get("n_records")
            else:
                zone = (entry.get("node_zones") or {}).get(node)
                n = None if zone is None else zone.get("n_records")
            if n is None:
                return None
            total += int(n)
        return total

    # -- source protocol ---------------------------------------------------

    def fingerprint(self) -> str:
        if self._watch and self._manifest_stat() != self._stat:
            self._load_manifest()
        return self._fingerprint

    def shards(self) -> list[ShardInfo]:
        return list(self._shards)

    def load_columns(self, node: str, names: set[str]) -> dict[str, np.ndarray]:
        """Read the named base columns for one node (counted I/O).

        Single-part nodes take the column-selective fast path: the npz
        member directory lets us decode only the requested arrays.
        Multi-part nodes (live archives) decode every covering entry —
        segments through a small LRU, since one segment serves many
        nodes — and merge the parts in canonical order.
        """
        try:
            return self._load_columns(node, names)
        except (FileNotFoundError, ShardCorruptError):
            # A compaction commit may have unlinked a consumed segment
            # between our manifest snapshot and this read; retry once
            # against the fresh manifest before giving up.
            if not self._watch:
                raise
            self._load_manifest()
            return self._load_columns(node, names)

    def _load_columns(self, node: str, names: set[str]) -> dict[str, np.ndarray]:
        entries = self._covering[node]
        if len(entries) == 1 and entries[0].get("node") is not None:
            return self._load_single(entries[0], node, names)
        parts: list[RecordColumns] = []
        for entry in entries:
            if entry.get("node") is not None:
                cols = _load_shard(
                    self.directory, entry, verify_checksum=self._verify
                )
                self._count_full_read(cols)
            else:
                cols = self._segment_columns(entry).get(node)
                if cols is None:
                    continue
            parts.append(cols)
        merged = merge_node_parts(parts)
        out: dict[str, np.ndarray] = {}
        for name in names:
            if name in SHARD_COLUMNS:
                out[name] = getattr(merged, name)
        if "node" in names:
            out["node"] = np.full(len(merged), node)
        return out

    def _segment_columns(self, entry: dict) -> _NodeSlices:
        """Decode a multi-node segment, indexed per node, LRU-cached."""
        filename = entry["file"]
        with self._lock:
            cached = self._segments.get(filename)
            if cached is not None:
                self._segments.move_to_end(filename)
                return cached
        cols = _load_shard(self.directory, entry, verify_checksum=self._verify)
        self._count_full_read(cols)
        slices = _NodeSlices(cols)
        with self._lock:
            self._segments[filename] = slices
            self._segment_bytes += slices.nbytes
            while (
                self._segment_bytes > SEGMENT_CACHE_BYTES
                and len(self._segments) > 1
            ):
                _, evicted = self._segments.popitem(last=False)
                self._segment_bytes -= evicted.nbytes
        return slices

    def _count_full_read(self, cols: RecordColumns) -> None:
        self.io.shards_read += 1
        self.io.columns_read += len(SHARD_COLUMNS)
        self.io.bytes_read += sum(
            getattr(cols, name).nbytes for name in SHARD_COLUMNS
        )

    def _load_single(
        self, entry: dict, node: str, names: set[str]
    ) -> dict[str, np.ndarray]:
        """Column-selective read of one per-node shard file."""
        path = self.directory / entry["file"]
        wanted = [n for n in names if n in SHARD_COLUMNS]
        out: dict[str, np.ndarray] = {}
        self.io.shards_read += 1
        if self._verify:
            payload = path.read_bytes()
            self.io.bytes_read += len(payload)
            digest = hashlib.sha256(payload).hexdigest()
            if digest != entry["sha256"]:
                from ..core.errors import ChecksumMismatchError

                raise ChecksumMismatchError(
                    f"shard {path} checksum mismatch", node=node
                )
            import io as _io

            npz_source = _io.BytesIO(payload)
        else:
            npz_source = path
        with np.load(npz_source, allow_pickle=False) as npz:
            n = None
            for name in wanted:
                arr = np.asarray(npz[name], dtype=SHARD_COLUMNS[name])
                out[name] = arr
                n = int(arr.shape[0])
                self.io.columns_read += 1
                if not self._verify:
                    self.io.bytes_read += arr.nbytes
            if n is None:
                # A plan touching only `node`/derived-from-nothing still
                # needs the row count; `kind` is the narrowest column.
                n = int(np.asarray(npz["kind"]).shape[0])
                self.io.columns_read += 1
        if "node" in names:
            out["node"] = np.full(n, node)
        return out


class MemorySource:
    """An in-memory :class:`ColumnarArchive` behind the same interface."""

    def __init__(self, archive: ColumnarArchive):
        self.archive = archive
        self.io = IoStats()
        self._zone_maps: dict[str, dict] = {}
        self._fingerprint: str | None = None

    def fingerprint(self) -> str:
        """Digest over per-node column bytes (computed once)."""
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for node in self.archive.nodes:
                cols = self.archive.columns(node)
                digest.update(node.encode())
                for name in SHARD_COLUMNS:
                    digest.update(np.ascontiguousarray(getattr(cols, name)).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def shards(self) -> list[ShardInfo]:
        out = []
        for node in self.archive.nodes:
            if node not in self._zone_maps:
                self._zone_maps[node] = compute_zone_map(self.archive.columns(node))
            zone = self._zone_maps[node]
            out.append(
                ShardInfo(node=node, n_records=zone["n_records"], zone_map=zone)
            )
        return out

    def load_columns(self, node: str, names: set[str]) -> dict[str, np.ndarray]:
        cols: RecordColumns = self.archive.columns(node)
        self.io.shards_read += 1
        out: dict[str, np.ndarray] = {}
        for name in names:
            if name in SHARD_COLUMNS:
                arr = getattr(cols, name)
                out[name] = arr
                self.io.columns_read += 1
                self.io.bytes_read += arr.nbytes
        if "node" in names:
            out["node"] = np.full(len(cols), node)
        return out


def as_source(target):
    """Normalize a path / ColumnarArchive / source into a source.

    Anything exposing the source protocol (``fingerprint``/``shards``/
    ``load_columns``) passes through, so callers can wrap a source —
    e.g. to throttle or fault-inject shard reads in tests.
    """
    if isinstance(target, ColumnarArchive):
        return MemorySource(target)
    if hasattr(target, "shards") and hasattr(target, "load_columns"):
        return target
    return ArchiveSource(target)
