"""Shard sources: where the engine's scan stage gets its columns.

Two implementations share one interface:

* :class:`ArchiveSource` — an on-disk columnar archive directory.  Only
  the manifest is read at construction; each shard's ``.npz`` is opened
  on demand, and only the *columns a plan needs* are decoded from it.
  Every read is counted (:class:`IoStats`), which is how tests and the
  acceptance bench prove that zone-map pruning really skips disk I/O.
* :class:`MemorySource` — an in-memory :class:`ColumnarArchive` (e.g.
  fresh campaign output), with zone maps computed on first use.  Same
  pruning semantics, no disk.

Both expose a stable ``fingerprint()`` identifying the archive content;
together with the plan digest it keys the engine's result cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..logs.columnar import (
    SHARD_COLUMNS,
    ColumnarArchive,
    RecordColumns,
    compute_zone_map,
    manifest_fingerprint,
    read_manifest,
)


@dataclass
class IoStats:
    """Counters for shard I/O performed on behalf of queries."""

    shards_read: int = 0
    columns_read: int = 0
    bytes_read: int = 0

    def to_dict(self) -> dict:
        return {
            "shards_read": self.shards_read,
            "columns_read": self.columns_read,
            "bytes_read": self.bytes_read,
        }


@dataclass(frozen=True)
class ShardInfo:
    """One scannable shard: its node, row count, and optional zone map."""

    node: str
    n_records: int | None
    zone_map: dict | None


class ArchiveSource:
    """Columns served straight from an archive directory's shard files.

    ``verify_checksums`` defaults to False here (unlike
    :meth:`ColumnarArchive.load`): verifying a shard requires hashing
    its full bytes, which defeats column-selective reads.  Run
    ``repro logs inspect --verify`` (or load eagerly) when integrity is
    in question; the query layer optimizes the hot read path.
    """

    def __init__(self, path: str | Path, *, verify_checksums: bool = False):
        self.directory = Path(path)
        self.manifest = read_manifest(self.directory)
        self.io = IoStats()
        self._verify = verify_checksums
        self._shards = [
            ShardInfo(
                node=entry["node"],
                n_records=entry.get("n_records"),
                zone_map=entry.get("zone_map"),
            )
            for entry in self.manifest["shards"]
        ]
        self._entries = {entry["node"]: entry for entry in self.manifest["shards"]}

    def fingerprint(self) -> str:
        return manifest_fingerprint(self.manifest)

    def shards(self) -> list[ShardInfo]:
        return list(self._shards)

    def load_columns(self, node: str, names: set[str]) -> dict[str, np.ndarray]:
        """Read the named base columns of one shard (counted I/O).

        Uses the npz member directory so only the requested arrays are
        decoded; ``node`` is synthesized from the manifest (shards are
        per-node) rather than decoded from disk.
        """
        entry = self._entries[node]
        path = self.directory / entry["file"]
        wanted = [n for n in names if n in SHARD_COLUMNS]
        out: dict[str, np.ndarray] = {}
        self.io.shards_read += 1
        if self._verify:
            payload = path.read_bytes()
            self.io.bytes_read += len(payload)
            digest = hashlib.sha256(payload).hexdigest()
            if digest != entry["sha256"]:
                from ..core.errors import ChecksumMismatchError

                raise ChecksumMismatchError(
                    f"shard {path} checksum mismatch", node=node
                )
            import io as _io

            npz_source = _io.BytesIO(payload)
        else:
            npz_source = path
        with np.load(npz_source, allow_pickle=False) as npz:
            n = None
            for name in wanted:
                arr = np.asarray(npz[name], dtype=SHARD_COLUMNS[name])
                out[name] = arr
                n = int(arr.shape[0])
                self.io.columns_read += 1
                if not self._verify:
                    self.io.bytes_read += arr.nbytes
            if n is None:
                # A plan touching only `node`/derived-from-nothing still
                # needs the row count; `kind` is the narrowest column.
                n = int(np.asarray(npz["kind"]).shape[0])
                self.io.columns_read += 1
        if "node" in names:
            out["node"] = np.full(n, node)
        return out


class MemorySource:
    """An in-memory :class:`ColumnarArchive` behind the same interface."""

    def __init__(self, archive: ColumnarArchive):
        self.archive = archive
        self.io = IoStats()
        self._zone_maps: dict[str, dict] = {}
        self._fingerprint: str | None = None

    def fingerprint(self) -> str:
        """Digest over per-node column bytes (computed once)."""
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for node in self.archive.nodes:
                cols = self.archive.columns(node)
                digest.update(node.encode())
                for name in SHARD_COLUMNS:
                    digest.update(np.ascontiguousarray(getattr(cols, name)).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def shards(self) -> list[ShardInfo]:
        out = []
        for node in self.archive.nodes:
            if node not in self._zone_maps:
                self._zone_maps[node] = compute_zone_map(self.archive.columns(node))
            zone = self._zone_maps[node]
            out.append(
                ShardInfo(node=node, n_records=zone["n_records"], zone_map=zone)
            )
        return out

    def load_columns(self, node: str, names: set[str]) -> dict[str, np.ndarray]:
        cols: RecordColumns = self.archive.columns(node)
        self.io.shards_read += 1
        out: dict[str, np.ndarray] = {}
        for name in names:
            if name in SHARD_COLUMNS:
                arr = getattr(cols, name)
                out[name] = arr
                self.io.columns_read += 1
                self.io.bytes_read += arr.nbytes
        if "node" in names:
            out["node"] = np.full(len(cols), node)
        return out


def as_source(target):
    """Normalize a path / ColumnarArchive / source into a source.

    Anything exposing the source protocol (``fingerprint``/``shards``/
    ``load_columns``) passes through, so callers can wrap a source —
    e.g. to throttle or fault-inject shard reads in tests.
    """
    if isinstance(target, ColumnarArchive):
        return MemorySource(target)
    if hasattr(target, "shards") and hasattr(target, "load_columns"):
        return target
    return ArchiveSource(target)
