"""Accelerated beam testing, simulated — and why it mispredicts the field.

Manufacturers estimate raw DRAM soft-error rates by "disabling ECC and
exposing the DIMMs to particle accelerators" (paper Sec I, citing Borucki
et al.).  The paper's whole premise is that such estimates miss what a
year in the field shows: pathological populations (a degrading component,
weak bits), environmental modulation, and burstiness.

This module runs that manufacturer experiment *inside the simulation*: a
few devices under an accelerated particle flux for a few hours, scanned
by the same bit-accurate scanner, yielding a FIT-style per-bit upset
rate.  Scaling it down by the acceleration factor gives the beam's field
prediction — which the campaign's measured populations then demolish,
reproducing the paper's argument quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dram import TransientFlip, make_device
from ..scanner import AlternatingPattern, MemoryScanner

#: Reference field upset rate the beam is calibrated against
#: (upsets per bit-hour); folded out of the comparison, only the
#: acceleration structure matters.
BITS_PER_MB = 8 * 1024 * 1024


@dataclass(frozen=True)
class BeamTestConfig:
    """One accelerated exposure run."""

    #: True per-bit upset rate of the background physics (per bit-hour).
    field_rate_per_bit_hour: float = 7e-17
    #: Beam acceleration factor (typical accelerated SER tests run at
    #: 10^6..10^9 x natural flux).
    acceleration: float = 1e10
    device_mb: int = 8
    n_devices: int = 4
    exposure_hours: float = 2.0
    seed: int = 7


@dataclass(frozen=True)
class BeamTestResult:
    """Outcome of the accelerated campaign."""

    n_upsets: int
    bit_hours_accelerated: float
    acceleration: float

    @property
    def accelerated_rate(self) -> float:
        """Upsets per bit-hour under the beam."""
        if self.bit_hours_accelerated <= 0:
            return 0.0
        return self.n_upsets / self.bit_hours_accelerated

    @property
    def predicted_field_rate(self) -> float:
        """The manufacturer's field prediction: beam rate / acceleration."""
        return self.accelerated_rate / self.acceleration


def run_beam_test(config: BeamTestConfig | None = None) -> BeamTestResult:
    """Expose simulated ECC-less devices to the beam and count upsets.

    Physics: Poisson upsets at ``field_rate * acceleration`` per bit-hour,
    injected as single-line transient flips between scanner iterations;
    the scanner observes and logs them exactly as in the field study.
    """
    config = config or BeamTestConfig()
    rng = np.random.default_rng(config.seed)
    accelerated_rate = config.field_rate_per_bit_hour * config.acceleration
    n_bits = config.device_mb * BITS_PER_MB
    total_upsets = 0

    for device_index in range(config.n_devices):
        device = make_device(config.device_mb, salt=device_index)
        scanner = MemoryScanner(
            device, AlternatingPattern(), node=f"{device_index + 1:02d}-01"
        )
        iter_hours = scanner.iteration_hours
        n_iterations = max(1, int(config.exposure_hours / iter_hours))
        upsets_per_iteration = accelerated_rate * n_bits * iter_hours

        def inject(iteration: int, dev) -> None:
            n = rng.poisson(upsets_per_iteration)
            words = rng.integers(0, dev.n_words, size=n)
            lines = rng.integers(0, 32, size=n)
            for w, line in zip(words, lines):
                dev.apply(TransientFlip(int(w), 1 << int(line)))

        result = scanner.run(
            start_hours=0.0, max_iterations=n_iterations, inject=inject
        )
        total_upsets += len(result.errors)

    # Wall-clock exposure bit-hours; the beam multiplies the *rate*, not
    # the observation time.
    bit_hours = config.n_devices * n_bits * config.exposure_hours
    return BeamTestResult(
        n_upsets=total_upsets,
        bit_hours_accelerated=bit_hours,
        acceleration=config.acceleration,
    )


@dataclass(frozen=True)
class FieldComparison:
    """Beam prediction vs what the field campaign actually measured."""

    beam_predicted_rate: float     # upsets per bit-hour
    field_background_rate: float   # isolated singles on healthy nodes
    field_total_rate: float        # all independent errors

    @property
    def background_ratio(self) -> float:
        """Field background / beam prediction (should be ~1: same physics)."""
        if self.beam_predicted_rate <= 0:
            return np.inf
        return self.field_background_rate / self.beam_predicted_rate

    @property
    def total_underestimate(self) -> float:
        """How far the beam prediction falls below the real field rate."""
        if self.beam_predicted_rate <= 0:
            return np.inf
        return self.field_total_rate / self.beam_predicted_rate


def compare_with_field(
    beam: BeamTestResult,
    background_errors: int,
    total_errors: int,
    field_bit_hours: float,
) -> FieldComparison:
    """Assemble the beam-vs-field comparison from campaign statistics."""
    if field_bit_hours <= 0:
        raise ValueError("field bit-hours must be positive")
    return FieldComparison(
        beam_predicted_rate=beam.predicted_field_rate,
        field_background_rate=background_errors / field_bit_hours,
        field_total_rate=total_errors / field_bit_hours,
    )
