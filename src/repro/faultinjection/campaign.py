"""The year-scale campaign simulator.

Orchestrates every substrate into the study the paper ran:

1. commission the machine (:mod:`repro.cluster`);
2. generate each node's scan sessions from the scheduler + daemon
   stochastics, including the catalogue's pinned sessions and the
   degrading node's monitoring gaps;
3. run every fault model against the session tracks;
4. render observations into scanner ERROR records (addresses through the
   per-node address map, temperatures through the environment model) and
   collect them into a per-node log archive.

The result object carries both the logs (what the study's disks held) and
the session tracks (ground-truth coverage), which the analysis package
consumes.

Execution
---------

Steps 2-4 are *per-node independent*: every node's session track, fault
models and record rendering consume only per-node RNG streams (pure
functions of ``(seed, key)``), so the campaign fans the per-node work out
over the :mod:`repro.parallel` backends.  The only cross-node stages — the
Table I catalogue (one sequential RNG stream threading companion/pair
bookkeeping across nodes) and archive assembly — stay in the parent.
Serial, thread and process runs of the same seed produce bit-identical
archives and tracks.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from functools import cached_property
from pathlib import Path

import numpy as np

from ..cluster.registry import ClusterRegistry
from ..cluster.topology import OVERHEATING_SOC, NodeId
from ..core.records import EndRecord, ErrorRecord, StartRecord
from ..core.rng import RngFactory
from ..core.units import SCAN_TARGET_MB
from ..dram.addressing import AddressMap, stable_salt
from ..environment.temperature import TemperatureModel
from ..logs.columnar import ColumnarArchive
from ..logs.frame import ErrorFrame
from ..logs.store import LogArchive
from ..parallel import (
    RetryPolicy,
    ShardArena,
    ShardTicket,
    parallel_map,
    resolve_backend,
    resolve_workers,
    supervised_map,
)
from ..scheduler.batch import BatchScheduler
from ..scheduler.jobs import IdleWindow
from .config import CampaignConfig, paper_campaign_config
from .models import (
    Observation,
    gen_background,
    gen_degrading,
    gen_stuck_node,
    gen_weak_bit,
    plan_catalogue,
    resolve_catalogue,
)
from .sessions import (
    PATTERN_ALTERNATING,
    PATTERN_COUNTING,
    SessionTrack,
    build_session_track,
    subtract_gaps,
)

#: Words in a full 3 GB scan buffer (address-map capacity).
_FULL_WORDS = (SCAN_TARGET_MB * 1024 * 1024) // 4


@dataclass(frozen=True)
class CampaignMetrics:
    """Timing/throughput counters for one campaign run.

    ``node_seconds`` is wall time spent simulating each node inside its
    worker; ``simulate_seconds`` is their sum (a CPU-time proxy), while
    ``wall_seconds`` is end-to-end parent wall time — their ratio is the
    effective parallel speedup.
    """

    backend: str
    workers: int
    wall_seconds: float
    simulate_seconds: float
    n_records: int
    n_observations: int
    n_nodes: int
    node_seconds: dict[str, float] = field(default_factory=dict, repr=False)
    #: Fault-tolerance counters (all zero on an undisturbed run).
    n_retries: int = 0
    n_timeouts: int = 0
    n_pool_rebuilds: int = 0
    #: Nodes restored from a checkpoint journal instead of simulated.
    n_resumed: int = 0
    #: Nodes that exhausted their retry budget (see CampaignResult.degraded).
    n_degraded: int = 0

    @property
    def records_per_second(self) -> float:
        return self.n_records / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def slowest_nodes(self, n: int = 5) -> list[tuple[str, float]]:
        ranked = sorted(self.node_seconds.items(), key=lambda kv: -kv[1])
        return ranked[:n]

    def to_dict(self) -> dict:
        """JSON-friendly view (per-node detail reduced to the top talkers)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "simulate_seconds": self.simulate_seconds,
            "n_records": self.n_records,
            "n_observations": self.n_observations,
            "n_nodes": self.n_nodes,
            "records_per_second": self.records_per_second,
            "slowest_nodes": dict(self.slowest_nodes()),
            "n_retries": self.n_retries,
            "n_timeouts": self.n_timeouts,
            "n_pool_rebuilds": self.n_pool_rebuilds,
            "n_resumed": self.n_resumed,
            "n_degraded": self.n_degraded,
        }

    def summary(self) -> str:
        text = (
            f"{self.n_nodes} nodes in {self.wall_seconds:.2f} s "
            f"({self.backend}, workers={self.workers}; "
            f"{self.n_records:,} records, "
            f"{self.records_per_second:,.0f} records/s)"
        )
        extras = []
        if self.n_resumed:
            extras.append(f"{self.n_resumed} resumed from checkpoint")
        if self.n_retries:
            extras.append(f"{self.n_retries} retries")
        if self.n_timeouts:
            extras.append(f"{self.n_timeouts} watchdog timeouts")
        if self.n_pool_rebuilds:
            extras.append(f"{self.n_pool_rebuilds} pool rebuilds")
        if self.n_degraded:
            extras.append(f"{self.n_degraded} nodes degraded")
        if extras:
            text += " [" + ", ".join(extras) + "]"
        return text


@dataclass(frozen=True)
class DegradedNode:
    """One node the campaign permanently lost, and why."""

    node: str
    attempts: int
    kind: str   # "error" | "timeout" | "pool" (see repro.parallel)
    error: str


@dataclass(frozen=True)
class DegradedResult:
    """Dead-blade accounting for a campaign that lost nodes.

    The paper reports its study over 923 scanned of 945 slots rather than
    aborting on dead blades; a campaign whose nodes exhaust their retry
    budget likewise completes over the surviving population and reports
    the casualties here instead of raising.
    """

    nodes: tuple[DegradedNode, ...]
    n_planned: int

    @property
    def n_failed(self) -> int:
        return len(self.nodes)

    @property
    def n_completed(self) -> int:
        return self.n_planned - self.n_failed

    def names(self) -> list[str]:
        return [entry.node for entry in self.nodes]

    def summary(self) -> str:
        failed = ", ".join(
            f"{e.node} ({e.kind} after {e.attempts} attempts)" for e in self.nodes
        )
        return (
            f"degraded campaign: {self.n_completed} of {self.n_planned} "
            f"nodes completed; lost {failed}"
        )


@dataclass
class CampaignResult:
    """Everything a simulated study produced."""

    config: CampaignConfig
    registry: ClusterRegistry
    tracks: dict[str, SessionTrack]
    #: Fresh runs carry the record-object archive; results reloaded from
    #: the campaign cache carry its columnar twin (same query API, and
    #: ``error_frame`` is bit-identical between the two).
    archive: LogArchive | ColumnarArchive
    n_observations: int
    _frames: dict = field(default_factory=dict, repr=False)
    #: Execution counters of the run that produced this result (None for
    #: results reloaded from disk or from the campaign cache).
    metrics: CampaignMetrics | None = field(default=None, repr=False)
    #: Dead-blade accounting: set when nodes exhausted their retry budget
    #: and the campaign completed over the surviving population (None for
    #: a fully healthy run).
    degraded: DegradedResult | None = None

    # -- raw-log level -------------------------------------------------------

    def n_raw_error_lines(self) -> int:
        """The paper's ">25 million error logs" figure."""
        return self.archive.n_raw_error_lines()

    def raw_frame(self) -> ErrorFrame:
        """All ERROR records as an array table (pre-extraction).

        Dispatches to the archive's own ``error_frame`` — the vectorized
        columnar path when the result came from the cache, the record
        loop on fresh runs; both produce bit-identical frames.
        """
        if "raw" not in self._frames:
            self._frames["raw"] = self.archive.error_frame().sorted_by_time()
        return self._frames["raw"]

    # -- coverage level -----------------------------------------------------

    def monitored_hours_by_node(self) -> dict[str, float]:
        return {n: t.monitored_hours for n, t in self.tracks.items()}

    def terabyte_hours_by_node(self) -> dict[str, float]:
        return {n: t.terabyte_hours for n, t in self.tracks.items()}

    def total_node_hours(self) -> float:
        return float(sum(t.monitored_hours for t in self.tracks.values()))

    def total_terabyte_hours(self) -> float:
        return float(sum(t.terabyte_hours for t in self.tracks.values()))

    def daily_terabyte_hours(self) -> np.ndarray:
        out = np.zeros(self.config.n_days, dtype=np.float64)
        for track in self.tracks.values():
            out += track.daily_terabyte_hours(self.config.n_days)
        return out

    @cached_property
    def study_hours(self) -> float:
        return self.config.n_days * 24.0

    # -- persistence -------------------------------------------------------

    def columnar_archive(self) -> ColumnarArchive:
        """The archive in columnar form (no-op if already columnar)."""
        if isinstance(self.archive, ColumnarArchive):
            return self.archive
        return ColumnarArchive.from_log_archive(self.archive)

    def save(self, path) -> None:
        """Persist the campaign (config, tracks, logs) to a directory.

        Pickle is appropriate here: the artifact is a local checkpoint of
        a deterministic simulation, not an interchange format — the log
        directory written by :meth:`LogArchive.write_directory` remains
        the portable representation.  The archive is stored columnar:
        pickling a handful of NumPy arrays per node is far smaller and
        faster than pickling millions of record dataclasses.
        """
        import pickle
        from pathlib import Path

        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "config": self.config,
            "tracks": self.tracks,
            "archive": self.columnar_archive(),
            "n_observations": self.n_observations,
            "degraded": self.degraded,
        }
        with open(directory / "campaign.pkl", "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path) -> "CampaignResult":
        """Reload a campaign saved with :meth:`save`."""
        import pickle
        from pathlib import Path

        from ..cluster.registry import ClusterRegistry

        with open(Path(path) / "campaign.pkl", "rb") as fh:
            payload = pickle.load(fh)
        return cls(
            config=payload["config"],
            registry=ClusterRegistry(payload["config"].topology),
            tracks=payload["tracks"],
            archive=payload["archive"],
            n_observations=payload["n_observations"],
            degraded=payload.get("degraded"),
        )


def _forced_windows(
    plans, node: str
) -> list[IdleWindow]:
    """Pinned session intervals for a node, as idle windows."""
    return [
        IdleWindow(p.pinned[0], p.pinned[1])
        for p in plans
        if p.node == node and p.pinned is not None
    ]


def _insert_pinned(
    track: SessionTrack, plans, node: str
) -> SessionTrack:
    """Append a node's pinned sessions to its stochastic track."""
    pinned = [p for p in plans if p.node == node and p.pinned is not None]
    if not pinned:
        return track
    starts = np.concatenate([track.starts, [p.pinned[0] for p in pinned]])
    ends = np.concatenate([track.ends, [p.pinned[1] for p in pinned]])
    alloc = np.concatenate(
        [track.alloc_mb, np.full(len(pinned), SCAN_TARGET_MB, dtype=np.int64)]
    )
    pattern_codes = [
        PATTERN_COUNTING if p.pattern.uses_counting_pattern else PATTERN_ALTERNATING
        for p in pinned
    ]
    pattern = np.concatenate([track.pattern, np.asarray(pattern_codes, dtype=np.int8)])
    order = np.argsort(starts, kind="stable")
    return SessionTrack(
        node=node,
        starts=starts[order],
        ends=ends[order],
        alloc_mb=alloc[order],
        pattern=pattern[order],
        n_truncated=track.n_truncated,
    )


class _CampaignContext:
    """Shared deterministic state, rebuilt identically in every process.

    Everything here is a pure function of the config: the registry, the
    scheduler (which derives per-node streams via ``fresh``), the
    temperature field, and the catalogue plan (which consumes exactly the
    ``catalogue/plan`` stream).  Worker processes rebuild it once via the
    pool initializer instead of pickling it into every task.
    """

    def __init__(self, config: CampaignConfig, materialize_lifecycle: bool = False):
        self.config = config
        self.materialize_lifecycle = materialize_lifecycle
        self.rngs = RngFactory(config.seed)
        self.registry = ClusterRegistry(config.topology)
        self.scheduler = BatchScheduler(
            self.registry,
            config.calendar,
            config.activity,
            rng_factory=self.rngs,
            n_days=config.n_days,
        )
        self.temperature = TemperatureModel(seed=config.seed)
        self.plans = plan_catalogue(config, self.rngs.get("catalogue/plan"))
        self.reserved = config.reserved_nodes()
        self.weak_by_node = {w.node: w for w in config.weak_bits}
        self.gap_hours = {
            config.degrading.node: [
                (g0 * 24.0, g1 * 24.0)
                for g0, g1 in config.degrading.monitoring_gaps
            ]
        }
        self.nodes_by_name = {
            str(node.node_id): node for node in self.registry.scanned_nodes()
        }
        self._maps: dict[str, AddressMap] = {}
        self._node_ids: dict[str, NodeId] = {}

    def address_map(self, name: str) -> AddressMap:
        amap = self._maps.get(name)
        if amap is None:
            amap = AddressMap(n_words=_FULL_WORDS, salt=stable_salt(name))
            self._maps[name] = amap
        return amap

    def node_id(self, name: str) -> NodeId:
        node_id = self._node_ids.get(name)
        if node_id is None:
            node_id = NodeId.parse(name)
            self._node_ids[name] = node_id
        return node_id

    def render(self, observations: list[Observation]) -> list[ErrorRecord]:
        """Observations -> ERROR records (addresses + temperature)."""
        records: list[ErrorRecord] = []
        for obs in observations:
            amap = self.address_map(obs.node)
            temp = self.temperature.reading(self.node_id(obs.node), obs.time_hours)
            records.append(
                ErrorRecord(
                    timestamp_hours=obs.time_hours,
                    node=obs.node,
                    virtual_address=int(amap.virtual_address(obs.word_index)),
                    physical_page=int(amap.physical_page(obs.word_index)),
                    expected=obs.expected,
                    actual=obs.actual,
                    temperature_c=temp,
                    repeat_count=obs.repeat_count,
                )
            )
        return records


@dataclass
class _NodeResult:
    """One node's finished work unit, shipped back to the parent."""

    node: str
    track: SessionTrack
    n_observations: int
    records: list[ErrorRecord]
    lifecycle: list
    seconds: float
    #: True once the streaming sink committed this unit's records to a
    #: live archive (``records``/``lifecycle`` are then empty).  Default
    #: False keeps journals from pre-streaming runs loadable.
    streamed: bool = False
    #: Claim check for columns the worker spilled to the shard arena
    #: instead of pickling through the result (``records``/``lifecycle``
    #: are then already empty).  Cleared before journaling so checkpoint
    #: entries never reference the run-scoped arena directory.
    shard: ShardTicket | None = None


def _simulate_node(ctx: _CampaignContext, name: str) -> _NodeResult:
    """The embarrassingly-parallel unit: one node, end to end.

    Consumes only per-node RNG streams (``daemon/<n>``, ``bg/<n>``,
    ``weak/<n>``) plus the single-consumer ``stuck``/``degrading`` streams
    on their dedicated nodes — the same streams, in the same order, as a
    serial run, so the output is bit-identical regardless of backend.
    """
    t_begin = time.perf_counter()
    config = ctx.config
    node = ctx.nodes_by_name[name]
    rngs = ctx.rngs.spawn()

    # -- session track ------------------------------------------------------
    windows = ctx.scheduler.node_windows(node)
    windows = subtract_gaps(windows, ctx.gap_hours.get(name, []))
    pinned_intervals = [
        (w.start_hours, w.end_hours) for w in _forced_windows(ctx.plans, name)
    ]
    windows = subtract_gaps(windows, pinned_intervals)
    track = build_session_track(
        name,
        windows,
        rngs.get(f"daemon/{name}"),
        p_full_alloc=config.p_full_alloc,
        p_alloc_fail=config.p_alloc_fail,
        leak_mean_mb=config.leak_mean_mb,
        p_truncation=config.p_truncation,
        p_counting=0.0 if name in ctx.reserved else config.p_counting,
    )
    track = _insert_pinned(track, ctx.plans, name)

    # -- fault models -------------------------------------------------------
    observations: list[Observation] = []
    weak_cfg = ctx.weak_by_node.get(name)
    if track.n_sessions > 0:
        if weak_cfg is not None:
            observations.extend(
                gen_weak_bit(track, weak_cfg, rngs.get(f"weak/{name}"), config.n_days)
            )
        elif name not in ctx.reserved:
            bg = config.background
            rate = bg.rate_per_node_hour
            if node.node_id.soc == OVERHEATING_SOC:
                rate *= bg.overheating_rate_multiplier
            if rate != bg.rate_per_node_hour:
                bg = replace(bg, rate_per_node_hour=rate)
            observations.extend(gen_background(track, bg, rngs.get(f"bg/{name}")))
    if name == config.stuck.node:
        observations.extend(gen_stuck_node(track, config.stuck, rngs.get("stuck")))
    if name == config.degrading.node:
        observations.extend(
            gen_degrading(track, config.degrading, rngs.get("degrading"), config.n_days)
        )

    # -- render -------------------------------------------------------------
    records = ctx.render(observations)
    lifecycle: list = []
    if ctx.materialize_lifecycle:
        node_id = ctx.node_id(name)
        for i in range(track.n_sessions):
            t0, t1 = float(track.starts[i]), float(track.ends[i])
            lifecycle.append(
                StartRecord(
                    timestamp_hours=t0,
                    node=name,
                    allocated_mb=int(track.alloc_mb[i]),
                    temperature_c=ctx.temperature.reading(node_id, t0),
                )
            )
            lifecycle.append(
                EndRecord(
                    timestamp_hours=t1,
                    node=name,
                    temperature_c=ctx.temperature.reading(node_id, t1),
                )
            )
    return _NodeResult(
        node=name,
        track=track,
        n_observations=len(observations),
        records=records,
        lifecycle=lifecycle,
        seconds=time.perf_counter() - t_begin,
    )


#: Per-process context for the process backend (set by the pool initializer).
_WORKER_CTX: _CampaignContext | None = None

#: Spill arena for streaming process runs (set alongside the context).
_WORKER_ARENA: ShardArena | None = None

#: Environment switch for the worker-side mmap handoff; set to ``0`` to
#: force streamed process campaigns back to pickled record lists.
SHARD_HANDOFF_ENV = "REPRO_SHARD_HANDOFF"


def _init_worker(config: CampaignConfig, materialize_lifecycle: bool) -> None:
    global _WORKER_CTX
    _WORKER_CTX = _CampaignContext(config, materialize_lifecycle)


def _init_worker_streaming(
    config: CampaignConfig, materialize_lifecycle: bool, arena_root: str
) -> None:
    global _WORKER_ARENA
    _init_worker(config, materialize_lifecycle)
    _WORKER_ARENA = ShardArena(arena_root)


def _node_worker(name: str) -> _NodeResult:
    assert _WORKER_CTX is not None, "worker used before initialization"
    return _simulate_node(_WORKER_CTX, name)


def _node_worker_spill(name: str) -> _NodeResult:
    """Streaming process unit: columnarize + spill in the worker.

    The worker does the columnarization (in parallel, instead of the
    supervising process) and ships the arrays through the shard arena;
    only the small :class:`~repro.parallel.ShardTicket` rides the result
    pickle, so handoff cost no longer scales with a node's record count.
    """
    assert _WORKER_ARENA is not None, "spill worker used before initialization"
    from ..logs.columnar import RecordColumns

    result = _node_worker(name)
    columns = RecordColumns.from_records(
        list(result.records) + list(result.lifecycle)
    )
    result.records = []
    result.lifecycle = []
    result.shard = _WORKER_ARENA.spill(
        name.replace("/", "_"),
        columns.to_arrays(),
        meta={"node_names": list(columns.node_names)},
    )
    return result


def run_campaign(
    config: CampaignConfig | None = None,
    materialize_lifecycle: bool = False,
    workers: int | None = None,
    backend: str | None = None,
    *,
    retry: RetryPolicy | None = None,
    unit_timeout: float | None = None,
    chaos=None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    stream_to: str | Path | None = None,
    stream_flush_nodes: int = 64,
) -> CampaignResult:
    """Simulate the full study and return its logs and coverage.

    ``materialize_lifecycle`` additionally writes START/END records into
    the archive (memory-heavy at paper scale; useful for round-trip tests
    on small configurations).

    ``workers``/``backend`` override the config's execution fields: the
    per-node phase fans out over :func:`repro.parallel.parallel_map`.
    Results are bit-identical across backends for the same seed.

    Fault tolerance (any of ``retry``/``unit_timeout``/``chaos``/
    ``checkpoint_dir`` routes the per-node fan-out through
    :func:`repro.parallel.supervised_map`):

    * ``retry`` re-runs a failed node within its budget — per-node RNG
      streams are pure functions of ``(seed, key)`` and units are
      side-effect-free, so retries never change results;
    * ``unit_timeout`` is the per-node watchdog (process backend);
    * ``checkpoint_dir`` journals each completed node durably, and
      ``resume=True`` restores completed nodes from a prior interrupted
      run of the *same* configuration instead of recomputing them;
    * nodes that exhaust the budget are reported in
      :attr:`CampaignResult.degraded` (the paper's dead-blade
      accounting), never raised;
    * ``chaos`` (a :class:`repro.chaos.ChaosPlan`) injects deterministic
      failures for testing.

    ``stream_to`` routes finished units straight into a live columnar
    archive (:class:`repro.logs.ingest.LiveArchive`) instead of holding
    every node's records in parent RAM: each unit's records are
    columnarized and stripped from the in-memory result as they arrive,
    and every ``stream_flush_nodes`` completed units are committed as
    one level-0 segment.  The returned :class:`CampaignResult` then
    carries a lazily-loaded :class:`ColumnarArchive` over that
    directory — bit-identical, record for record, to the batch
    archive the same configuration would assemble in memory.  Streaming
    composes with checkpointing: units are journaled only *after* their
    records are durable in the archive, and the archive's batch ledger
    dedups any unit replayed after a crash, so resume is exactly-once.

    On the process backend, streamed units hand their columns over
    through a :class:`repro.parallel.ShardArena`: the worker
    columnarizes and spills ``.npy`` files, only a small ticket rides
    the result pickle, and the parent claims the arrays back as
    memory-mapped views — transfer cost stops scaling with record
    count.  Set ``REPRO_SHARD_HANDOFF=0`` to fall back to pickled
    record lists.
    """
    t_begin = time.perf_counter()
    config = config or paper_campaign_config()
    config.validate()
    n_workers = resolve_workers(workers if workers is not None else config.workers)
    exec_backend = resolve_backend(
        backend if backend is not None else config.backend, n_workers
    )

    ctx = _CampaignContext(config, materialize_lifecycle)
    names = list(ctx.nodes_by_name)
    supervise = (
        retry is not None
        or unit_timeout is not None
        or chaos is not None
        or checkpoint_dir is not None
        or stream_to is not None
    )

    degraded: DegradedResult | None = None
    n_retries = n_timeouts = n_pool_rebuilds = n_resumed = 0

    # -- parallel phase: per-node track + models + rendering ---------------
    if not supervise:
        if exec_backend == "process":
            results: list[_NodeResult] = parallel_map(
                _node_worker,
                names,
                backend="process",
                workers=n_workers,
                initializer=_init_worker,
                initargs=(config, materialize_lifecycle),
            )
        else:
            results = parallel_map(
                lambda name: _simulate_node(ctx, name),
                names,
                backend=exec_backend,
                workers=n_workers,
            )
    else:
        from ..cache import CampaignJournal, config_digest

        journal: CampaignJournal | None = None
        journaled: dict[str, _NodeResult] = {}
        if checkpoint_dir is not None:
            journal = CampaignJournal(checkpoint_dir, config_digest(config))
            known = set(names)
            journaled = {
                node: value
                for node, value in journal.open(resume=resume).items()
                if node in known
            }
        n_resumed = len(journaled)
        remaining = [name for name in names if name not in journaled]

        if stream_to is None and any(
            getattr(value, "streamed", False) for value in journaled.values()
        ):
            from ..core.errors import CheckpointError

            raise CheckpointError(
                "checkpoint journal holds streamed units whose records "
                "live in their archive, not the journal: pass the same "
                "stream_to= directory to resume this campaign"
            )

        on_result = None
        _flush_stream = None
        arena: ShardArena | None = None
        if stream_to is not None:
            from ..logs.columnar import RecordColumns
            from ..logs.ingest import LiveArchive

            live = LiveArchive.create(stream_to)
            flush_every = max(1, int(stream_flush_nodes))
            stream_buffer: list[tuple[str, _NodeResult, RecordColumns]] = []
            if (
                exec_backend == "process"
                and os.environ.get(SHARD_HANDOFF_ENV, "1") != "0"
            ):
                arena = ShardArena.create()

            def _flush_stream() -> None:
                if not stream_buffer:
                    return
                live.append_batch(
                    {f"unit:{key}": cols for key, _value, cols in stream_buffer}
                )
                # Journal only after the records are durable in the
                # archive (journaled => streamed).  A crash between the
                # two re-runs the unit on resume; the archive's batch
                # ledger dedups the replayed records.  Shard tickets are
                # cleared first (journal entries must outlive the arena)
                # and released last (claimed arrays are mmap-backed, so
                # the spill must survive until append_batch copied it).
                tickets = []
                for _key, value, _cols in stream_buffer:
                    ticket = getattr(value, "shard", None)
                    if ticket is not None:
                        tickets.append(ticket)
                        value.shard = None
                if journal is not None:
                    for key, value, _cols in stream_buffer:
                        journal.append(key, value)
                if arena is not None:
                    for ticket in tickets:
                        arena.release(ticket)
                stream_buffer.clear()

            def on_result(_i, key, value) -> None:
                ticket = getattr(value, "shard", None)
                if ticket is not None and arena is not None:
                    # The worker already columnarized and spilled this
                    # unit; claim the arrays back as read-only mmaps.
                    cols = RecordColumns.from_arrays(
                        arena.claim(ticket), ticket.meta["node_names"]
                    )
                else:
                    cols = RecordColumns.from_records(
                        list(value.records) + list(value.lifecycle)
                    )
                # Strip in place: `value` is the same object the
                # supervisor keeps in its outcome, so the parent never
                # holds more than one flush window of records in RAM.
                value.records = []
                value.lifecycle = []
                value.streamed = True
                stream_buffer.append((key, value, cols))
                if len(stream_buffer) >= flush_every:
                    _flush_stream()

            # Units journaled by an earlier *non-streaming* run still own
            # their records: commit them as a backlog batch (the ledger
            # dedups any already streamed) and strip them the same way.
            backlog = {
                f"unit:{name}": RecordColumns.from_records(
                    list(value.records) + list(value.lifecycle)
                )
                for name, value in journaled.items()
                if not getattr(value, "streamed", False)
            }
            if backlog:
                live.append_batch(backlog)
                for name, value in journaled.items():
                    if not getattr(value, "streamed", False):
                        value.records = []
                        value.lifecycle = []
                        value.streamed = True
        elif journal is not None:
            on_result = lambda _i, key, value: journal.append(key, value)  # noqa: E731

        try:
            if exec_backend == "process":
                if arena is not None:
                    worker_fn = _node_worker_spill
                    worker_init = _init_worker_streaming
                    worker_initargs = (config, materialize_lifecycle, arena.root)
                else:
                    worker_fn = _node_worker
                    worker_init = _init_worker
                    worker_initargs = (config, materialize_lifecycle)
                outcome = supervised_map(
                    worker_fn,
                    remaining,
                    keys=remaining,
                    backend="process",
                    workers=n_workers,
                    initializer=worker_init,
                    initargs=worker_initargs,
                    retry=retry,
                    unit_timeout=unit_timeout,
                    chaos=chaos,
                    on_unit_result=on_result,
                )
            else:
                outcome = supervised_map(
                    lambda name: _simulate_node(ctx, name),
                    remaining,
                    keys=remaining,
                    backend=exec_backend,
                    workers=n_workers,
                    retry=retry,
                    unit_timeout=unit_timeout,
                    chaos=chaos,
                    on_unit_result=on_result,
                )
            if _flush_stream is not None:
                _flush_stream()  # tail window, while the journal is open
        finally:
            if journal is not None:
                journal.close()
            if arena is not None:
                arena.close()

        by_name = dict(journaled)
        for name, value in zip(remaining, outcome.values):
            if value is not None:
                by_name[name] = value
        results = [by_name[name] for name in names if name in by_name]
        n_retries = outcome.n_retries
        n_timeouts = outcome.n_timeouts
        n_pool_rebuilds = outcome.n_pool_rebuilds
        if outcome.failures:
            degraded = DegradedResult(
                nodes=tuple(
                    DegradedNode(
                        node=f.key, attempts=f.attempts, kind=f.kind, error=f.error
                    )
                    for f in outcome.failures
                ),
                n_planned=len(names),
            )

    tracks = {result.node: result.track for result in results}
    n_observations = sum(result.n_observations for result in results)

    # -- sequential phase: catalogue resolution + archive assembly ---------
    # resolve_catalogue skips plans whose node has no track, so a
    # degraded population degrades the catalogue the same way the paper's
    # dead blades shrank its Table I population.
    catalogue_obs = resolve_catalogue(
        ctx.plans, tracks, config, ctx.rngs.get("catalogue/resolve")
    )
    n_observations += len(catalogue_obs)

    if stream_to is not None:
        from ..core.errors import CheckpointError
        from ..logs.columnar import RecordColumns
        from ..logs.ingest import LiveArchive

        live = LiveArchive.open(stream_to)
        live.append_batch(
            {"catalogue": RecordColumns.from_records(ctx.render(catalogue_obs))}
        )
        ledger = set(live.committed_batches)
        missing = sorted(
            name for name in tracks if f"unit:{name}" not in ledger
        )
        if missing:
            raise CheckpointError(
                f"streamed archive {stream_to} is missing "
                f"{len(missing)} committed units (e.g. {missing[:3]}); "
                "the stream and journal have diverged"
            )
        archive: LogArchive | ColumnarArchive = ColumnarArchive.load(
            stream_to, lazy=True
        )
    else:
        archive = LogArchive()
        for result in results:
            archive.extend(result.records)
        archive.extend(ctx.render(catalogue_obs))
        for result in results:
            archive.extend(result.lifecycle)
        archive.sort()

    wall = time.perf_counter() - t_begin
    node_seconds = {result.node: result.seconds for result in results}
    metrics = CampaignMetrics(
        backend=exec_backend,
        workers=n_workers,
        wall_seconds=wall,
        simulate_seconds=float(sum(node_seconds.values())),
        n_records=archive.n_records(),
        n_observations=n_observations,
        n_nodes=len(names),
        node_seconds=node_seconds,
        n_retries=n_retries,
        n_timeouts=n_timeouts,
        n_pool_rebuilds=n_pool_rebuilds,
        n_resumed=n_resumed,
        n_degraded=0 if degraded is None else degraded.n_failed,
    )

    return CampaignResult(
        config=config,
        registry=ctx.registry,
        tracks=tracks,
        archive=archive,
        n_observations=n_observations,
        metrics=metrics,
        degraded=degraded,
    )
