"""The year-scale campaign simulator.

Orchestrates every substrate into the study the paper ran:

1. commission the machine (:mod:`repro.cluster`);
2. generate each node's scan sessions from the scheduler + daemon
   stochastics, including the catalogue's pinned sessions and the
   degrading node's monitoring gaps;
3. run every fault model against the session tracks;
4. render observations into scanner ERROR records (addresses through the
   per-node address map, temperatures through the environment model) and
   collect them into a per-node log archive.

The result object carries both the logs (what the study's disks held) and
the session tracks (ground-truth coverage), which the analysis package
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..cluster.node import NodeRole
from ..cluster.registry import ClusterRegistry
from ..cluster.topology import OVERHEATING_SOC, NodeId
from ..core.records import EndRecord, ErrorRecord, StartRecord
from ..core.rng import RngFactory
from ..core.units import SCAN_TARGET_MB
from ..dram.addressing import AddressMap
from ..environment.temperature import TemperatureModel
from ..logs.frame import ErrorFrame
from ..logs.store import LogArchive
from ..scheduler.batch import BatchScheduler
from ..scheduler.jobs import IdleWindow
from .config import CampaignConfig, paper_campaign_config
from .models import (
    Observation,
    gen_background,
    gen_degrading,
    gen_stuck_node,
    gen_weak_bit,
    plan_catalogue,
    resolve_catalogue,
)
from .sessions import (
    PATTERN_ALTERNATING,
    PATTERN_COUNTING,
    SessionTrack,
    build_session_track,
    subtract_gaps,
)

#: Words in a full 3 GB scan buffer (address-map capacity).
_FULL_WORDS = (SCAN_TARGET_MB * 1024 * 1024) // 4


@dataclass
class CampaignResult:
    """Everything a simulated study produced."""

    config: CampaignConfig
    registry: ClusterRegistry
    tracks: dict[str, SessionTrack]
    archive: LogArchive
    n_observations: int
    _frames: dict = field(default_factory=dict, repr=False)

    # -- raw-log level -------------------------------------------------------

    def n_raw_error_lines(self) -> int:
        """The paper's ">25 million error logs" figure."""
        return self.archive.n_raw_error_lines()

    def raw_frame(self) -> ErrorFrame:
        """All ERROR records as an array table (pre-extraction)."""
        if "raw" not in self._frames:
            self._frames["raw"] = ErrorFrame.from_records(
                self.archive.error_records()
            ).sorted_by_time()
        return self._frames["raw"]

    # -- coverage level -----------------------------------------------------

    def monitored_hours_by_node(self) -> dict[str, float]:
        return {n: t.monitored_hours for n, t in self.tracks.items()}

    def terabyte_hours_by_node(self) -> dict[str, float]:
        return {n: t.terabyte_hours for n, t in self.tracks.items()}

    def total_node_hours(self) -> float:
        return float(sum(t.monitored_hours for t in self.tracks.values()))

    def total_terabyte_hours(self) -> float:
        return float(sum(t.terabyte_hours for t in self.tracks.values()))

    def daily_terabyte_hours(self) -> np.ndarray:
        out = np.zeros(self.config.n_days, dtype=np.float64)
        for track in self.tracks.values():
            out += track.daily_terabyte_hours(self.config.n_days)
        return out

    @cached_property
    def study_hours(self) -> float:
        return self.config.n_days * 24.0

    # -- persistence -------------------------------------------------------

    def save(self, path) -> None:
        """Persist the campaign (config, tracks, logs) to a directory.

        Pickle is appropriate here: the artifact is a local checkpoint of
        a deterministic simulation, not an interchange format — the log
        directory written by :meth:`LogArchive.write_directory` remains
        the portable representation.
        """
        import pickle
        from pathlib import Path

        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "config": self.config,
            "tracks": self.tracks,
            "archive": self.archive,
            "n_observations": self.n_observations,
        }
        with open(directory / "campaign.pkl", "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path) -> "CampaignResult":
        """Reload a campaign saved with :meth:`save`."""
        import pickle
        from pathlib import Path

        from ..cluster.registry import ClusterRegistry

        with open(Path(path) / "campaign.pkl", "rb") as fh:
            payload = pickle.load(fh)
        return cls(
            config=payload["config"],
            registry=ClusterRegistry(payload["config"].topology),
            tracks=payload["tracks"],
            archive=payload["archive"],
            n_observations=payload["n_observations"],
        )


def _forced_windows(
    plans, node: str
) -> list[IdleWindow]:
    """Pinned session intervals for a node, as idle windows."""
    return [
        IdleWindow(p.pinned[0], p.pinned[1])
        for p in plans
        if p.node == node and p.pinned is not None
    ]


def _insert_pinned(
    track: SessionTrack, plans, node: str
) -> SessionTrack:
    """Append a node's pinned sessions to its stochastic track."""
    pinned = [p for p in plans if p.node == node and p.pinned is not None]
    if not pinned:
        return track
    starts = np.concatenate([track.starts, [p.pinned[0] for p in pinned]])
    ends = np.concatenate([track.ends, [p.pinned[1] for p in pinned]])
    alloc = np.concatenate(
        [track.alloc_mb, np.full(len(pinned), SCAN_TARGET_MB, dtype=np.int64)]
    )
    pattern_codes = [
        PATTERN_COUNTING if p.pattern.uses_counting_pattern else PATTERN_ALTERNATING
        for p in pinned
    ]
    pattern = np.concatenate([track.pattern, np.asarray(pattern_codes, dtype=np.int8)])
    order = np.argsort(starts, kind="stable")
    return SessionTrack(
        node=node,
        starts=starts[order],
        ends=ends[order],
        alloc_mb=alloc[order],
        pattern=pattern[order],
        n_truncated=track.n_truncated,
    )


def run_campaign(
    config: CampaignConfig | None = None, materialize_lifecycle: bool = False
) -> CampaignResult:
    """Simulate the full study and return its logs and coverage.

    ``materialize_lifecycle`` additionally writes START/END records into
    the archive (memory-heavy at paper scale; useful for round-trip tests
    on small configurations).
    """
    config = config or paper_campaign_config()
    config.validate()
    rngs = RngFactory(config.seed)
    registry = ClusterRegistry(config.topology)
    scheduler = BatchScheduler(
        registry,
        config.calendar,
        config.activity,
        rng_factory=rngs,
        n_days=config.n_days,
    )
    temperature = TemperatureModel(seed=config.seed)
    plan_rng = rngs.get("catalogue/plan")
    plans = plan_catalogue(config, plan_rng)
    reserved = config.reserved_nodes()

    gap_hours = {
        config.degrading.node: [
            (g0 * 24.0, g1 * 24.0) for g0, g1 in config.degrading.monitoring_gaps
        ]
    }

    # -- phase 1: session tracks -------------------------------------------------
    tracks: dict[str, SessionTrack] = {}
    for node in registry.scanned_nodes():
        name = str(node.node_id)
        windows = scheduler.node_windows(node)
        windows = subtract_gaps(windows, gap_hours.get(name, []))
        pinned_intervals = [
            (w.start_hours, w.end_hours) for w in _forced_windows(plans, name)
        ]
        windows = subtract_gaps(windows, pinned_intervals)
        track = build_session_track(
            name,
            windows,
            rngs.get(f"daemon/{name}"),
            p_full_alloc=config.p_full_alloc,
            p_alloc_fail=config.p_alloc_fail,
            leak_mean_mb=config.leak_mean_mb,
            p_truncation=config.p_truncation,
            p_counting=0.0 if name in reserved else config.p_counting,
        )
        tracks[name] = _insert_pinned(track, plans, name)

    # -- phase 2: fault models ------------------------------------------------------
    observations: list[Observation] = []
    weak_nodes = {w.node for w in config.weak_bits}
    for node in registry.scanned_nodes():
        name = str(node.node_id)
        if name in reserved and name not in weak_nodes:
            continue
        track = tracks[name]
        if track.n_sessions == 0:
            continue
        if name in weak_nodes:
            cfg = next(w for w in config.weak_bits if w.node == name)
            observations.extend(
                gen_weak_bit(track, cfg, rngs.get(f"weak/{name}"), config.n_days)
            )
            continue
        bg = config.background
        rate = bg.rate_per_node_hour
        if node.node_id.soc == OVERHEATING_SOC:
            rate *= bg.overheating_rate_multiplier
        if rate != bg.rate_per_node_hour:
            from dataclasses import replace as _replace

            bg = _replace(bg, rate_per_node_hour=rate)
        observations.extend(gen_background(track, bg, rngs.get(f"bg/{name}")))

    stuck_track = tracks.get(config.stuck.node)
    if stuck_track is not None:
        observations.extend(
            gen_stuck_node(stuck_track, config.stuck, rngs.get("stuck"))
        )
    deg_track = tracks.get(config.degrading.node)
    if deg_track is not None:
        observations.extend(
            gen_degrading(
                deg_track, config.degrading, rngs.get("degrading"), config.n_days
            )
        )
    observations.extend(
        resolve_catalogue(plans, tracks, config, rngs.get("catalogue/resolve"))
    )

    # -- phase 3: render observations into log records ---------------------------------
    archive = LogArchive()
    node_maps: dict[str, AddressMap] = {}
    node_ids: dict[str, NodeId] = {}
    for obs in observations:
        amap = node_maps.get(obs.node)
        if amap is None:
            amap = AddressMap(
                n_words=_FULL_WORDS, salt=hash(obs.node) & 0x7FFFFFFF
            )
            node_maps[obs.node] = amap
            node_ids[obs.node] = NodeId.parse(obs.node)
        temp = temperature.reading(node_ids[obs.node], obs.time_hours)
        archive.append(
            ErrorRecord(
                timestamp_hours=obs.time_hours,
                node=obs.node,
                virtual_address=int(amap.virtual_address(obs.word_index)),
                physical_page=int(amap.physical_page(obs.word_index)),
                expected=obs.expected,
                actual=obs.actual,
                temperature_c=temp,
                repeat_count=obs.repeat_count,
            )
        )

    if materialize_lifecycle:
        for name, track in tracks.items():
            node_id = NodeId.parse(name)
            for i in range(track.n_sessions):
                t0, t1 = float(track.starts[i]), float(track.ends[i])
                archive.append(
                    StartRecord(
                        timestamp_hours=t0,
                        node=name,
                        allocated_mb=int(track.alloc_mb[i]),
                        temperature_c=temperature.reading(node_id, t0),
                    )
                )
                archive.append(
                    EndRecord(
                        timestamp_hours=t1,
                        node=name,
                        temperature_c=temperature.reading(node_id, t1),
                    )
                )
    archive.sort()

    return CampaignResult(
        config=config,
        registry=registry,
        tracks=tracks,
        archive=archive,
        n_observations=len(observations),
    )
