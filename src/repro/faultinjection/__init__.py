"""Fault injection: event processes, fault models, and the year campaign."""

from .campaign import (
    CampaignMetrics,
    CampaignResult,
    DegradedNode,
    DegradedResult,
    run_campaign,
)
from .catalogue import (
    TABLE_I,
    MultiBitPattern,
    beyond_double_faults,
    double_bit_faults,
    total_multibit_faults,
    undetectable_patterns,
)
from .config import (
    BackgroundConfig,
    CampaignConfig,
    CataloguePlacement,
    DegradingNodeConfig,
    StuckNodeConfig,
    WeakBitConfig,
    paper_campaign_config,
    quick_campaign_config,
)
from .models import Observation
from .processes import nhpp_times, piecewise_poisson_times, poisson_times
from .sessions import (
    BASE_ITER_HOURS,
    PATTERN_ALTERNATING,
    PATTERN_COUNTING,
    SessionTrack,
    build_session_track,
    merge_touching,
    subtract_gaps,
)

__all__ = [
    "BackgroundConfig",
    "BASE_ITER_HOURS",
    "CampaignConfig",
    "CampaignMetrics",
    "CampaignResult",
    "CataloguePlacement",
    "DegradedNode",
    "DegradedResult",
    "DegradingNodeConfig",
    "MultiBitPattern",
    "Observation",
    "PATTERN_ALTERNATING",
    "PATTERN_COUNTING",
    "SessionTrack",
    "StuckNodeConfig",
    "TABLE_I",
    "WeakBitConfig",
    "beyond_double_faults",
    "build_session_track",
    "double_bit_faults",
    "merge_touching",
    "nhpp_times",
    "paper_campaign_config",
    "piecewise_poisson_times",
    "poisson_times",
    "quick_campaign_config",
    "run_campaign",
    "subtract_gaps",
    "total_multibit_faults",
    "undetectable_patterns",
]
