"""Stochastic event processes for fault arrival times.

Homogeneous Poisson processes for flat-rate faults (single-bit upsets show
no time-of-day structure in the study, Fig 5) and non-homogeneous Poisson
processes via thinning for rate functions driven by the environment (the
solar-modulated multi-bit channel of Fig 6).
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def poisson_times(
    rate_per_hour: float, t0: float, t1: float, rng: np.random.Generator
) -> np.ndarray:
    """Event times of a homogeneous Poisson process on [t0, t1).

    Sampled by drawing the count then sorting uniforms — O(n), exact.
    """
    if t1 <= t0 or rate_per_hour <= 0.0:
        return np.empty(0, dtype=np.float64)
    n = rng.poisson(rate_per_hour * (t1 - t0))
    if n == 0:
        return np.empty(0, dtype=np.float64)
    times = rng.uniform(t0, t1, size=n)
    times.sort()
    return times


def nhpp_times(
    rate_fn: Callable[[np.ndarray], np.ndarray],
    max_rate_per_hour: float,
    t0: float,
    t1: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Event times of an NHPP on [t0, t1) by Lewis-Shedler thinning.

    ``rate_fn`` must be vectorized and bounded by ``max_rate_per_hour``
    on the interval (undershooting the bound silently biases the rate, so
    it is validated on the candidate points).
    """
    if t1 <= t0 or max_rate_per_hour <= 0.0:
        return np.empty(0, dtype=np.float64)
    candidates = poisson_times(max_rate_per_hour, t0, t1, rng)
    if candidates.size == 0:
        return candidates
    rates = np.asarray(rate_fn(candidates), dtype=np.float64)
    if np.any(rates > max_rate_per_hour * (1.0 + 1e-9)):
        raise ValueError("rate_fn exceeds the stated max_rate bound")
    keep = rng.random(candidates.size) < rates / max_rate_per_hour
    return candidates[keep]


def piecewise_poisson_times(
    day_rates: np.ndarray, rng: np.random.Generator, day0: int = 0
) -> np.ndarray:
    """Poisson events with a piecewise-constant per-day rate.

    ``day_rates[i]`` is the expected event count on day ``day0 + i``.
    Used by the degrading-node ramp (a few events per day in August up to
    >1000/day in November).
    """
    day_rates = np.asarray(day_rates, dtype=np.float64)
    counts = rng.poisson(np.clip(day_rates, 0.0, None))
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.float64)
    days = np.repeat(np.arange(day_rates.shape[0]) + day0, counts)
    times = (days + rng.random(total)) * 24.0
    times.sort()
    return times
