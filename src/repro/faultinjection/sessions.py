"""Vectorized scan-session tracks for the year-scale campaign.

A :class:`SessionTrack` holds every scan session of one node as parallel
NumPy arrays (start, end, allocated MB, pattern, iteration period), plus
the sampling primitives the fault models need: locate the session covering
a time, sample uniform times inside covered time, round an event time up
to the scanner iteration that detects it.

Tracks are built from the scheduler's idle windows with the daemon's
stochastic layer (allocation backoff, rare hard-reboot truncations)
applied in bulk rather than per-window objects — the paper-scale campaign
has ~10^6 windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.records import ScanSession
from ..core.units import ALLOC_BACKOFF_MB, SCAN_TARGET_MB
from ..scheduler.jobs import IdleWindow

#: Pattern codes stored in the track arrays.
PATTERN_ALTERNATING = 0
PATTERN_COUNTING = 1

#: Wall-clock duration of one full scan pass over 3 GB, in hours (~10 s —
#: a streaming write+verify of 3 GB on the prototype's LPDDR).
BASE_ITER_HOURS = 10.0 / 3600.0


@dataclass
class SessionTrack:
    """All (non-truncated) scan sessions of one node, as arrays."""

    node: str
    starts: np.ndarray       # f8, sorted
    ends: np.ndarray         # f8
    alloc_mb: np.ndarray     # i8
    pattern: np.ndarray      # i1 (PATTERN_*)
    #: number of truncated (hard-reboot) sessions dropped from the arrays;
    #: they contribute zero monitored hours per the paper's accounting.
    n_truncated: int = 0

    def __post_init__(self) -> None:
        if not (
            self.starts.shape
            == self.ends.shape
            == self.alloc_mb.shape
            == self.pattern.shape
        ):
            raise ValueError("session track arrays must be parallel")
        if np.any(self.ends <= self.starts):
            raise ValueError("sessions must have positive duration")
        if self.starts.size > 1 and np.any(np.diff(self.starts) < 0):
            raise ValueError("sessions must be sorted by start time")

    # -- basic quantities --------------------------------------------------

    @property
    def n_sessions(self) -> int:
        return int(self.starts.shape[0])

    @property
    def durations(self) -> np.ndarray:
        return self.ends - self.starts

    @property
    def iter_hours(self) -> np.ndarray:
        """Iteration period per session (scales with allocated memory)."""
        return BASE_ITER_HOURS * self.alloc_mb / SCAN_TARGET_MB

    @property
    def monitored_hours(self) -> float:
        return float(self.durations.sum())

    @property
    def terabyte_hours(self) -> float:
        return float((self.durations * self.alloc_mb).sum() / (1024.0 * 1024.0))

    # -- queries ------------------------------------------------------------

    def locate(self, t_hours: np.ndarray | float) -> np.ndarray | int:
        """Index of the session covering each time, -1 if uncovered."""
        t = np.asarray(t_hours, dtype=np.float64)
        idx = np.searchsorted(self.starts, t, side="right") - 1
        valid = (idx >= 0) & (t < self.ends[np.clip(idx, 0, None)])
        return np.where(valid, idx, -1)[()]

    def covered(self, t_hours) -> np.ndarray | bool:
        return (np.asarray(self.locate(t_hours)) >= 0)[()]

    def clip_to(self, t0: float, t1: float):
        """(starts, ends, original indices) of session pieces within [t0, t1)."""
        s = np.clip(self.starts, t0, t1)
        e = np.clip(self.ends, t0, t1)
        keep = e > s
        return s[keep], e[keep], np.flatnonzero(keep)

    def sample_covered(
        self, rng: np.random.Generator, n: int, t0: float, t1: float
    ) -> np.ndarray:
        """``n`` times uniform over covered time within [t0, t1).

        Returns fewer than ``n`` (possibly zero) samples when the node has
        no coverage in the interval.
        """
        s, e, _ = self.clip_to(t0, t1)
        if s.size == 0:
            return np.empty(0, dtype=np.float64)
        durations = e - s
        cum = np.cumsum(durations)
        total = cum[-1]
        u = rng.random(n) * total
        idx = np.searchsorted(cum, u, side="right")
        offset = u - (cum[idx] - durations[idx])
        return s[idx] + offset

    def detection_time(self, t_event: np.ndarray | float):
        """When the scanner *logs* an event occurring at ``t_event``.

        The mismatch is noticed at the end of the verify pass in flight:
        the event time rounded up to the session's next iteration
        boundary (clamped inside the session).  Uncovered events map to
        NaN.
        """
        t = np.atleast_1d(np.asarray(t_event, dtype=np.float64))
        idx = np.atleast_1d(np.asarray(self.locate(t)))
        out = np.full(t.shape, np.nan)
        valid = idx >= 0
        if np.any(valid):
            i = idx[valid]
            start = self.starts[i]
            period = self.iter_hours[i]
            k = np.floor((t[valid] - start) / period) + 1.0
            det = start + k * period
            out[valid] = np.minimum(det, np.nextafter(self.ends[i], 0.0))
        if np.isscalar(t_event) or np.asarray(t_event).ndim == 0:
            return float(out[0])
        return out

    def iterations_in_session(self, index: int) -> int:
        """Number of verify passes completed in session ``index``."""
        return int(self.durations[index] / self.iter_hours[index])

    def to_sessions(self) -> list[ScanSession]:
        """Materialize ScanSession objects (small campaigns / tests)."""
        return [
            ScanSession(
                node=self.node,
                start_hours=float(self.starts[i]),
                end_hours=float(self.ends[i]),
                allocated_mb=int(self.alloc_mb[i]),
            )
            for i in range(self.n_sessions)
        ]

    def daily_terabyte_hours(self, n_days: int) -> np.ndarray:
        """TB-hours of scanning attributed to each study day (Fig 9)."""
        out = np.zeros(n_days, dtype=np.float64)
        for i in range(self.n_sessions):
            start, end = float(self.starts[i]), float(self.ends[i])
            mb = float(self.alloc_mb[i])
            day = int(start // 24.0)
            while start < end and day < n_days:
                day_end = (day + 1) * 24.0
                piece = min(end, day_end) - start
                if day >= 0:
                    out[day] += piece * mb / (1024.0 * 1024.0)
                start = day_end
                day += 1
        return out


def merge_touching(windows: list[IdleWindow], tol: float = 1e-9) -> list[IdleWindow]:
    """Merge idle windows that touch (full-idle days joining at midnight).

    This is what lets vacation stretches become multi-day scan sessions —
    needed both for realism and for the long counting-pattern sessions
    behind several Table I rows.
    """
    if not windows:
        return []
    windows = sorted(windows, key=lambda w: w.start_hours)
    merged = [windows[0]]
    for w in windows[1:]:
        last = merged[-1]
        if w.start_hours <= last.end_hours + tol:
            merged[-1] = IdleWindow(last.start_hours, max(last.end_hours, w.end_hours))
        else:
            merged.append(w)
    return merged


def subtract_gaps(
    windows: list[IdleWindow], gaps: list[tuple[float, float]]
) -> list[IdleWindow]:
    """Remove monitoring-gap intervals from idle windows.

    Models periods during which a node simply was not being scanned (the
    02-04 silence from late November onward in Fig 12).
    """
    if not gaps:
        return list(windows)
    out: list[IdleWindow] = []
    for w in windows:
        pieces = [(w.start_hours, w.end_hours)]
        for g0, g1 in gaps:
            next_pieces = []
            for p0, p1 in pieces:
                if g1 <= p0 or g0 >= p1:
                    next_pieces.append((p0, p1))
                    continue
                if p0 < g0:
                    next_pieces.append((p0, g0))
                if g1 < p1:
                    next_pieces.append((g1, p1))
            pieces = next_pieces
        out.extend(IdleWindow(p0, p1) for p0, p1 in pieces if p1 > p0)
    return out


def build_session_track(
    node: str,
    windows: list[IdleWindow],
    rng: np.random.Generator,
    p_full_alloc: float = 0.92,
    p_alloc_fail: float = 0.002,
    leak_mean_mb: float = 400.0,
    p_truncation: float = 0.004,
    p_counting: float = 0.05,
) -> SessionTrack:
    """Vectorized daemon pass: windows -> session track.

    Implements the same stochastic layer as
    :class:`repro.scanner.daemon.ScannerDaemon` but in bulk: allocation
    size with the 3 GB / -10 MB backoff against an exponential leak,
    rare total allocation failures, rare hard-reboot truncations (dropped
    and counted), and the scan-pattern choice per session.
    """
    windows = merge_touching(windows)
    n = len(windows)
    if n == 0:
        empty = np.empty(0)
        return SessionTrack(
            node,
            empty,
            empty.copy(),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int8),
        )
    starts = np.array([w.start_hours for w in windows])
    ends = np.array([w.end_hours for w in windows])

    u = rng.random(n)
    fail = u < p_alloc_fail
    leak = u < p_alloc_fail + (1.0 - p_full_alloc - p_alloc_fail)
    leak_mb = rng.exponential(leak_mean_mb, size=n)
    available = np.where(leak, SCAN_TARGET_MB - leak_mb, float(SCAN_TARGET_MB))
    # The backoff loop starts at 3 GB and steps down by 10 MB, so requests
    # live on the grid {3072 - 10k}; it lands on the largest grid value
    # that fits the available memory.
    deficit = np.maximum(0.0, SCAN_TARGET_MB - available)
    steps = np.ceil(deficit / ALLOC_BACKOFF_MB)
    alloc = (SCAN_TARGET_MB - steps * ALLOC_BACKOFF_MB).astype(np.int64)
    truncated = rng.random(n) < p_truncation
    keep = (~fail) & (~truncated) & (alloc > 0)

    pattern = np.where(rng.random(n) < p_counting, PATTERN_COUNTING, PATTERN_ALTERNATING)
    return SessionTrack(
        node=node,
        starts=starts[keep],
        ends=ends[keep],
        alloc_mb=alloc[keep],
        pattern=pattern[keep].astype(np.int8),
        n_truncated=int(truncated.sum()),
    )
