"""Fault models: each error population the study observed, as a generator.

Every model emits :class:`Observation` protos — (node, detection time,
word index, expected, actual, repeat count) — *already filtered by
scanning coverage*: an upset on an unmonitored node at an unmonitored
hour was invisible to the study, so models draw event times inside the
node's session track.

The populations, mapped to the paper:

* background singles  — isolated SEUs over the healthy machine (Fig 3's
  scattered single-error nodes; "all other nodes combined <30 errors");
* stuck node          — the removed node producing >98% of raw log lines;
* degrading node      — 02-04's August-to-November ramp with multi-word
  glitch groups (Figs 11/12, Sec III-C simultaneity);
* weak bits           — 04-05 / 58-02, one identical bit every time
  (Sec III-H), bursty enough to create the 77 degraded days (Fig 13);
* catalogue           — the 85 Table I multi-bit faults, verbatim, with
  solar-modulated timing (Fig 6) and the Sec III-C/III-D placement
  constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bitops import WORD_BITS
from ..dram.geometry import DramGeometry
from ..environment.neutron import NeutronFluxModel
from .catalogue import TABLE_I, MultiBitPattern
from .config import (
    BackgroundConfig,
    CampaignConfig,
    DegradingNodeConfig,
    StuckNodeConfig,
    WeakBitConfig,
)
from .sessions import BASE_ITER_HOURS, PATTERN_ALTERNATING, SessionTrack

#: Word values of the alternating pattern.
_ALL_ONES = 0xFFFFFFFF
_ALL_ZEROS = 0x00000000


@dataclass(frozen=True, slots=True)
class Observation:
    """One error the scanner will log (pre-address-mapping)."""

    node: str
    time_hours: float
    word_index: int
    expected: int
    actual: int
    repeat_count: int = 1


def _single_bit_words(
    rng: np.random.Generator,
    n: int,
    p_one_to_zero: float,
    bit_pool: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw (expected, actual) pairs for n single-bit flips.

    A 1->0 (charge loss) flip is only visible while the scanner holds the
    all-ones value, a 0->1 flip while it holds all-zeros, so the flip
    direction determines the expected word.
    """
    bits = (
        rng.integers(0, WORD_BITS, size=n)
        if bit_pool is None
        else rng.choice(bit_pool, size=n)
    )
    one_to_zero = rng.random(n) < p_one_to_zero
    expected = np.where(one_to_zero, _ALL_ONES, _ALL_ZEROS).astype(np.uint64)
    masks = np.left_shift(np.uint64(1), bits.astype(np.uint64))
    actual = np.bitwise_xor(expected, masks)
    return expected, actual


# ---------------------------------------------------------------------------
# background singles
# ---------------------------------------------------------------------------

def gen_background(
    track: SessionTrack,
    cfg: BackgroundConfig,
    rng: np.random.Generator,
    n_words: int = 800_000_000,
) -> list[Observation]:
    """Isolated single-bit upsets on one healthy node."""
    hours = track.monitored_hours
    n = int(rng.poisson(cfg.rate_per_node_hour * hours))
    if n == 0:
        return []
    t_event = track.sample_covered(rng, n, -np.inf, np.inf)
    t_det = np.atleast_1d(track.detection_time(t_event))
    expected, actual = _single_bit_words(rng, t_det.shape[0], cfg.p_one_to_zero)
    words = rng.integers(0, n_words, size=t_det.shape[0])
    return [
        Observation(track.node, float(t), int(w), int(e), int(a))
        for t, w, e, a in zip(t_det, words, expected, actual)
        if np.isfinite(t)
    ]


# ---------------------------------------------------------------------------
# the stuck (removed) node
# ---------------------------------------------------------------------------

def gen_stuck_node(
    track: SessionTrack, cfg: StuckNodeConfig, rng: np.random.Generator
) -> list[Observation]:
    """The faulty node: every verify pass re-logs every stuck word.

    A stuck-low cell mismatches whenever the expected value has that bit
    set — every second iteration under the alternating pattern — so each
    (session, address) pair compresses to one record whose repeat count
    is half the session's iterations.
    """
    words = rng.choice(750_000_000, size=cfg.n_addresses, replace=False)
    bits = rng.integers(0, WORD_BITS, size=cfg.n_addresses)
    out: list[Observation] = []
    for s in range(track.n_sessions):
        iters = track.iterations_in_session(s)
        mismatches = iters // 2
        if mismatches < 1:
            continue
        if int(track.pattern[s]) != PATTERN_ALTERNATING:
            continue  # counting sessions: mismatch pattern varies; skip
        start = float(track.starts[s])
        period = float(track.iter_hours[s])
        for a in range(cfg.n_addresses):
            mask = 1 << int(bits[a])
            # First mismatch happens on the first all-ones verify pass.
            t_first = start + 2.0 * period
            out.append(
                Observation(
                    node=track.node,
                    time_hours=t_first,
                    word_index=int(words[a]),
                    expected=_ALL_ONES,
                    actual=_ALL_ONES ^ mask,
                    repeat_count=int(mismatches),
                )
            )
    return out


# ---------------------------------------------------------------------------
# the degrading node (02-04)
# ---------------------------------------------------------------------------

def _group_sizes(
    rng: np.random.Generator, n_events: int, cfg: DegradingNodeConfig
) -> np.ndarray:
    """Corruptions per glitch event: 1 with p_isolated, else geometric>=2."""
    sizes = np.ones(n_events, dtype=np.int64)
    grouped = rng.random(n_events) >= cfg.p_isolated
    n_grouped = int(grouped.sum())
    if n_grouped:
        # Geometric on {2, 3, ...} with the configured mean.
        p = 1.0 / max(cfg.group_size_mean - 1.0, 1e-9)
        extra = rng.geometric(min(p, 1.0), size=n_grouped)
        sizes[grouped] = np.clip(1 + extra, 2, cfg.max_group_bits)
    return sizes


def degrading_day_rates(cfg: DegradingNodeConfig, n_days: int) -> np.ndarray:
    """Observed glitch-event rate per study day (exponential ramp)."""
    rates = np.zeros(n_days, dtype=np.float64)
    span = cfg.ramp_end_day - cfg.onset_day
    growth = np.log(cfg.final_rate_per_day / cfg.initial_rate_per_day) / span
    days = np.arange(cfg.onset_day, min(n_days, cfg.ramp_end_day))
    # Rates are per *event*; each event corrupts ~E[group size] words, so
    # scale down to make the per-day corruption counts land on the ramp.
    mean_size = cfg.p_isolated + (1.0 - cfg.p_isolated) * cfg.group_size_mean
    rates[days] = (
        cfg.initial_rate_per_day
        * np.exp(growth * (days - cfg.onset_day))
        / mean_size
    )
    # After the ramp the node keeps failing at its final rate ("without
    # any sign of improvement") — monitoring gaps hide it from the study.
    if cfg.ramp_end_day < n_days:
        rates[cfg.ramp_end_day :] = cfg.final_rate_per_day / mean_size
    return rates


def gen_degrading(
    track: SessionTrack,
    cfg: DegradingNodeConfig,
    rng: np.random.Generator,
    n_days: int,
) -> list[Observation]:
    """Node 02-04's glitch events (including multi-word groups)."""
    rates = degrading_day_rates(cfg, n_days)
    out: list[Observation] = []
    bit_pool = np.array(cfg.bit_pool, dtype=np.int64)
    # The defective component touches a few physical bit-line columns in
    # one bank; the controller's layout scatters a column's words across
    # the whole logical address space (Sec III-C's alignment hypothesis:
    # physically aligned, logically "different regions of the memory").
    geometry = DramGeometry()
    cols = rng.choice(geometry.n_cols, size=cfg.n_defective_columns, replace=False)
    col_words = [
        np.asarray(geometry.column_words(cfg.defective_bank, int(c))) for c in cols
    ]
    all_words = np.concatenate(col_words)
    address_pool = rng.choice(
        all_words, size=min(cfg.n_addresses, all_words.size), replace=False
    )
    pool_by_col = [np.intersect1d(address_pool, words) for words in col_words]
    # Pick the day of the one maximal event ("up to 36 bits"), weighted by
    # the node's intensity so it lands in the heavy period.
    max_event_day = -1
    if getattr(cfg, "inject_max_event", False) and rates.sum() > 0:
        max_event_day = int(rng.choice(n_days, p=rates / rates.sum()))
    for day in np.flatnonzero(rates > 0):
        n_events = int(rng.poisson(rates[day]))
        if n_events == 0:
            continue
        t_events = track.sample_covered(
            rng, n_events, day * 24.0, (day + 1) * 24.0
        )
        if t_events.size == 0:
            continue
        t_det = np.atleast_1d(track.detection_time(t_events))
        sizes = _group_sizes(rng, t_det.shape[0], cfg)
        if day == max_event_day and sizes.size:
            sizes[0] = cfg.max_group_bits
        for t, k in zip(t_det, sizes):
            if not np.isfinite(t):
                continue
            expected, actual = _single_bit_words(
                rng, int(k), cfg.p_one_to_zero, bit_pool
            )
            if int(k) > 1 and rng.random() < cfg.p_column_aligned:
                # Multi-word glitch confined to one physical column.
                pool = pool_by_col[int(rng.integers(len(pool_by_col)))]
                words = rng.choice(pool, size=min(int(k), pool.size), replace=False)
            else:
                words = rng.choice(address_pool, size=int(k), replace=False)
            for i in range(int(k)):
                out.append(
                    Observation(
                        node=track.node,
                        time_hours=float(t),
                        word_index=int(words[i]),
                        expected=int(expected[i]),
                        actual=int(actual[i]),
                    )
                )
    return out


# ---------------------------------------------------------------------------
# weak-bit nodes (04-05, 58-02)
# ---------------------------------------------------------------------------

def gen_weak_bit(
    track: SessionTrack,
    cfg: WeakBitConfig,
    rng: np.random.Generator,
    n_days: int,
) -> list[Observation]:
    """Intermittent firings of one weak cell, in bursty episodes.

    Every error is byte-identical modulo timestamp: same address, same
    bit, same direction — the Sec III-H signature.
    """
    mask = 1 << cfg.bit
    expected = _ALL_ONES
    actual = _ALL_ONES ^ mask
    out: list[Observation] = []
    hi = max(n_days - cfg.episode_span_days, 1)
    # Stratified episode placement: evenly spaced quantiles plus jitter.
    # (Pure uniform draws clump, making the machine-wide degraded-day
    # count wildly seed-sensitive.)
    k = cfg.n_episodes
    quantiles = (np.arange(k) + 0.5) / k
    jitter = rng.uniform(-0.5 / k, 0.5 / k, size=k)
    episode_starts = (quantiles + jitter) * hi
    if cfg.episode_window_days is not None:
        w0, w1 = cfg.episode_window_days
        w1 = min(w1, hi)
        if w1 > w0:
            in_window = rng.random(k) < cfg.p_episode_in_window
            n_in = int(in_window.sum())
            if n_in:
                q = (np.arange(n_in) + 0.5) / n_in
                jit = rng.uniform(-0.5 / n_in, 0.5 / n_in, size=n_in)
                episode_starts[in_window] = w0 + (q + jit) * (w1 - w0)
    # Sparse trickle firings over the whole study (the weak cell leaks
    # occasionally even between episodes): these land on quiet days and
    # provide most of the Sec III-I "~50 errors during normal days".
    trickle = getattr(cfg, "trickle_rate_per_day", 0.0)
    n_trickle = int(rng.poisson(trickle * n_days))
    if n_trickle:
        t_tr = track.sample_covered(rng, n_trickle, 0.0, n_days * 24.0)
        for t in np.atleast_1d(track.detection_time(t_tr)):
            if np.isfinite(t):
                out.append(
                    Observation(
                        node=track.node,
                        time_hours=float(t),
                        word_index=cfg.word_index,
                        expected=expected,
                        actual=actual,
                    )
                )
    for ep_start in episode_starts:
        n_bursts = 1 + int(rng.poisson(cfg.bursts_per_episode - 1))
        burst_offsets = rng.uniform(0, cfg.episode_span_days, size=n_bursts)
        for off in burst_offsets:
            b_start_day = ep_start + off
            b_len = rng.uniform(cfg.burst_days_min, cfg.burst_days_max)
            rate = rng.uniform(cfg.burst_rate_per_day_min, cfg.burst_rate_per_day_max)
            n = int(rng.poisson(rate * b_len))
            if n == 0:
                continue
            t_events = track.sample_covered(
                rng, n, b_start_day * 24.0, (b_start_day + b_len) * 24.0
            )
            if t_events.size == 0:
                continue
            t_det = np.atleast_1d(track.detection_time(t_events))
            repeats = 1 + rng.poisson(cfg.mean_repeat - 1.0, size=t_det.shape[0])
            for t, rep in zip(t_det, repeats):
                if np.isfinite(t):
                    out.append(
                        Observation(
                            node=track.node,
                            time_hours=float(t),
                            word_index=cfg.word_index,
                            expected=expected,
                            actual=actual,
                            repeat_count=int(rep),
                        )
                    )
    return out


# ---------------------------------------------------------------------------
# Table I catalogue
# ---------------------------------------------------------------------------

def _solar_weighted_time(
    track: SessionTrack,
    flux: NeutronFluxModel,
    rng: np.random.Generator,
    t0: float,
    t1: float,
    max_tries: int = 400,
) -> float | None:
    """One covered time in [t0, t1) weighted by the neutron-flux profile."""
    for _ in range(max_tries):
        cand = track.sample_covered(rng, 1, t0, t1)
        if cand.size == 0:
            return None
        t = float(cand[0])
        if rng.random() < float(flux.relative_flux(t)) / flux.max_flux:
            det = track.detection_time(t)
            if np.isfinite(det):
                return float(det)
    return None


@dataclass(frozen=True)
class PlannedFault:
    """One Table I fault occurrence, fully or partially placed.

    Counting-pattern rows get a *pinned session*: a dedicated counting
    scan session long enough that the expected value's iteration index is
    reached exactly at ``event_time``.  Alternating rows either carry a
    target day (the Sec III-D fixed-day faults) or are sampled from the
    host's natural sessions at campaign time (``event_time is None``).
    """

    pattern: MultiBitPattern
    node: str
    pinned: tuple[float, float] | None = None
    event_time: float | None = None
    on_degrading: bool = False


def _flux_weighted_hour(
    flux: NeutronFluxModel, rng: np.random.Generator, day: int
) -> float:
    """An hour-of-day on ``day`` weighted by the neutron-flux profile."""
    t0 = day * 24.0
    for _ in range(200):
        t = t0 + rng.uniform(0.0, 24.0)
        if rng.random() < float(flux.relative_flux(t)) / flux.max_flux:
            return t
    return t0 + 12.0


def plan_catalogue(
    config: CampaignConfig, rng: np.random.Generator
) -> list[PlannedFault]:
    """Place all 85 Table I fault occurrences (pre-track planning phase)."""
    placement = config.placement
    flux = NeutronFluxModel(day_night_ratio=config.multibit_day_night_ratio)
    recurring = dict(placement.recurring_nodes)
    undetectable = [p for p in TABLE_I if p.n_bits > 3]
    plans: list[PlannedFault] = []
    # Track pinned intervals per node to avoid overlapping pins.
    pins: dict[str, list[tuple[float, float]]] = {}

    def pin_counting(pattern: MultiBitPattern, node: str, day: int) -> PlannedFault:
        needed = (pattern.counting_iteration + 1) * BASE_ITER_HOURS
        for _ in range(200):
            t_event = _flux_weighted_hour(flux, rng, day)
            start = t_event - needed
            end = t_event + 8.0 * BASE_ITER_HOURS
            if start < 0.0:
                day_retry = int(np.ceil(needed / 24.0)) + 1
                t_event = _flux_weighted_hour(flux, rng, day_retry)
                start, end = t_event - needed, t_event + 8.0 * BASE_ITER_HOURS
            taken = pins.setdefault(node, [])
            if all(end <= s or start >= e for s, e in taken):
                taken.append((start, end))
                return PlannedFault(
                    pattern, node, pinned=(start, end), event_time=t_event
                )
            day = int(rng.integers(0, config.n_days))
        raise RuntimeError(f"could not pin counting session on {node}")

    def pin_alternating(pattern: MultiBitPattern, node: str, day: int) -> PlannedFault:
        t_event = _flux_weighted_hour(flux, rng, day)
        start = max(0.0, t_event - 2.0)
        # Snap the detection to an iteration boundary of the pinned session.
        k = np.ceil((t_event - start) / BASE_ITER_HOURS)
        t_event = start + float(k) * BASE_ITER_HOURS
        end = t_event + 1.5
        pins.setdefault(node, []).append((start, end))
        return PlannedFault(pattern, node, pinned=(start, end), event_time=t_event)

    for pattern in TABLE_I:
        if pattern.n_bits > 3:
            continue
        key = (pattern.expected, pattern.corrupted)
        node = recurring.get(key)
        if node is None:
            raise ValueError(f"no placement for Table I pattern {key}")
        on_degrading = node == config.degrading.node
        for _ in range(pattern.occurrences):
            if pattern.uses_counting_pattern:
                day = int(rng.integers(0, config.n_days))
                plans.append(pin_counting(pattern, node, day))
            else:
                plans.append(
                    PlannedFault(pattern, node, on_degrading=on_degrading)
                )

    for (idx, node), day in zip(
        placement.undetectable_hosts, placement.undetectable_days
    ):
        pattern = undetectable[idx]
        if pattern.uses_counting_pattern:
            plans.append(pin_counting(pattern, node, day))
        else:
            plans.append(pin_alternating(pattern, node, day))
    return plans


def sample_degrading_day(
    cfg: DegradingNodeConfig, rng: np.random.Generator, n_days: int
) -> int:
    """A study day drawn proportionally to the degrading node's ramp.

    The paper's November multi-bit cluster (Fig 11) tracks the node's
    single-bit degradation, so its word-level multi-bit faults follow the
    same intensity.
    """
    rates = degrading_day_rates(cfg, n_days)
    observable = np.ones(n_days, dtype=bool)
    for g0, g1 in cfg.monitoring_gaps:
        observable[g0 : min(g1, n_days)] = False
    weights = rates * observable
    total = weights.sum()
    if total <= 0:
        return int(rng.integers(0, n_days))
    return int(rng.choice(n_days, p=weights / total))


def resolve_catalogue(
    plans: list[PlannedFault],
    tracks: dict[str, SessionTrack],
    config: CampaignConfig,
    rng: np.random.Generator,
) -> list[Observation]:
    """Turn planned faults into observations against the final tracks.

    Handles the Sec III-C bookkeeping: 44 of the degrading node's doubles
    (and both triples) get a simultaneous single-bit companion; one pair
    of doubles shares a timestamp.
    """
    placement = config.placement
    deg = config.degrading
    flux = NeutronFluxModel(day_night_ratio=config.multibit_day_night_ratio)
    out: list[Observation] = []
    companion_budget = {
        2: placement.doubles_with_companion,
        3: placement.triples_with_companion,
    }
    pair_budget = placement.double_double_pairs
    pending_pair: PlannedFault | None = None

    def emit(plan: PlannedFault, t: float) -> Observation:
        obs = Observation(
            node=plan.node,
            time_hours=t,
            word_index=int(rng.integers(0, 700_000_000)),
            expected=plan.pattern.expected,
            actual=plan.pattern.corrupted,
        )
        out.append(obs)
        return obs

    for plan in plans:
        track = tracks.get(plan.node)
        if track is None or track.n_sessions == 0:
            continue
        if plan.event_time is not None:
            t = plan.event_time
        elif plan.on_degrading:
            day = sample_degrading_day(deg, rng, config.n_days)
            t_found = _solar_weighted_time(
                track, flux, rng, day * 24.0, (day + 1) * 24.0
            )
            if t_found is None:
                t_found = _solar_weighted_time(track, flux, rng, -np.inf, np.inf)
            if t_found is None:
                continue
            t = t_found
        else:
            t_found = _solar_weighted_time(track, flux, rng, -np.inf, np.inf)
            if t_found is None:
                continue
            t = t_found

        if plan.on_degrading and plan.pattern.n_bits == 2:
            if pending_pair is not None:
                emit(plan, t)
                emit(pending_pair, t)  # the double+double simultaneity
                pending_pair = None
                pair_budget -= 1
                continue
            if pair_budget > 0 and companion_budget[2] == 0:
                # All companions assigned; hold this one for pairing.
                pending_pair = plan
                continue
        obs = emit(plan, t)
        if plan.on_degrading and companion_budget.get(plan.pattern.n_bits, 0) > 0:
            companion_budget[plan.pattern.n_bits] -= 1
            expected, actual = _single_bit_words(
                rng, 1, deg.p_one_to_zero, np.array(deg.bit_pool, dtype=np.int64)
            )
            out.append(
                Observation(
                    node=plan.node,
                    time_hours=obs.time_hours,
                    word_index=int(rng.integers(0, 700_000_000)),
                    expected=int(expected[0]),
                    actual=int(actual[0]),
                )
            )
    if pending_pair is not None:
        # Partner never arrived (tiny campaigns): emit it standalone.
        t_found = _solar_weighted_time(
            tracks[pending_pair.node], flux, rng, -np.inf, np.inf
        )
        if t_found is not None:
            emit(pending_pair, t_found)
    return out
