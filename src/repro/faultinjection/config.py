"""Campaign configuration, with the paper-calibrated defaults.

Every number here is traced to a statement in the paper (cited inline).
``paper_campaign_config()`` is the configuration used by all figure/table
experiments; ``quick_campaign_config()`` is a scaled-down machine and
window for fast tests.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field, replace

from ..cluster.registry import TopologyConfig
from ..core import timeutils
from ..core.errors import ConfigurationError
from ..core.rng import DEFAULT_SEED
from ..environment.calendar import AcademicCalendar
from ..scheduler.jobs import ActivityConfig


def _day(year: int, month: int, day: int) -> int:
    """Study day index of a calendar date."""
    return (_dt.date(year, month, day) - timeutils.STUDY_EPOCH.date()).days


@dataclass(frozen=True)
class StuckNodeConfig:
    """The faulty node responsible for >98% of raw error lines (Sec III-B).

    A stuck component corrupts a fixed set of words; the scanner re-logs
    every one of them each verify pass, for months.  The node is filtered
    out of the characterization exactly as the paper did.
    """

    node: str = "21-09"
    n_addresses: int = 33
    #: Each stuck word has this many bits stuck low (charge-loss defect).
    bits_per_address: int = 1


@dataclass(frozen=True)
class DegradingNodeConfig:
    """Node 02-04: onset in August, >1000 errors/day by November (Fig 12)."""

    node: str = "02-04"
    onset_day: int = _day(2015, 8, 1)
    #: End of the exponential ramp; the rate then plateaus at
    #: ``final_rate_per_day`` ("over 1000 errors per day in November
    #: without any sign of improvement") until monitoring stops.
    ramp_end_day: int = _day(2015, 11, 1)
    initial_rate_per_day: float = 4.5
    final_rate_per_day: float = 1200.0
    #: Monitoring stops late November, resumes for two days mid-December,
    #: then nothing until the end of the study (Fig 12 discussion).
    monitoring_gaps: tuple[tuple[int, int], ...] = (
        (_day(2015, 11, 28), _day(2015, 12, 15)),
        (_day(2015, 12, 17), timeutils.STUDY_DAYS),
    )
    #: Fraction of glitch events corrupting a single word; the rest corrupt
    #: several words at the same instant (Sec III-C simultaneity).
    p_isolated: float = 0.72
    #: One glitch event corrupts exactly ``max_group_bits`` words ("one
    #: such failure could corrupt up to 36 bits spread across different
    #: memory words", Sec III-C).
    inject_max_event: bool = True
    #: Geometric mean of group size for multi-word glitches (>= 2).
    group_size_mean: float = 3.0
    #: Largest total bits in one event ("up to 36 bits", Sec III-C).
    max_group_bits: int = 36
    #: Distinct corrupted bit positions ("almost 30 different corruption
    #: patterns" over ~11,000 addresses, Sec III-H).
    bit_pool: tuple[int, ...] = tuple(range(0, 14))
    #: Fraction of flips 1->0 on this node (global target ~90%, Sec III-C).
    p_one_to_zero: float = 0.89
    #: Number of distinct corrupted addresses ("over 11,000").
    n_addresses: int = 11400
    #: The corrupted addresses live on a few physical bit-line columns of
    #: one bank, and most multi-word glitches strike within one column —
    #: the paper's hypothesis that simultaneous errors hit cells "in
    #: physical proximity or alignment (row, column, bank)" while the
    #: controller maps them to logical addresses megabytes apart
    #: ("different regions of the memory").
    n_defective_columns: int = 4
    defective_bank: int = 3
    #: Fraction of multi-word glitches confined to one physical column.
    p_column_aligned: float = 0.9


@dataclass(frozen=True)
class WeakBitConfig:
    """A node with one intermittently leaking cell (04-05 / 58-02, Sec III-H)."""

    node: str
    bit: int
    word_index: int
    #: Error bursts arrive in episodes so a 30-day quarantine window can
    #: absorb several bursts (Table II's node-day economics: ~6 quarantine
    #: entries machine-wide at the 30-day setting -> 180 node-days).
    n_episodes: int = 3
    bursts_per_episode: int = 8
    episode_span_days: float = 30.0
    burst_days_min: float = 1.4
    burst_days_max: float = 3.4
    burst_rate_per_day_min: float = 50.0
    burst_rate_per_day_max: float = 100.0
    #: Consecutive-iteration re-detections per firing (repeat compression).
    mean_repeat: float = 2.0
    #: Sparse single firings spread over the whole study, outside bursts:
    #: these land on otherwise-quiet days and make up most of the "~50
    #: errors during normal days" of Sec III-I.
    trickle_rate_per_day: float = 0.04
    #: Episodes cluster in the autumn term (between the vacation scanning
    #: peaks): this both matches Fig 10/11's September-December error
    #: concentration and produces the paper's weak *anti*-correlation
    #: between daily scanning volume and daily errors (Sec III-G).
    episode_window_days: tuple[int, int] | None = (231, 312)
    p_episode_in_window: float = 0.7


@dataclass(frozen=True)
class BackgroundConfig:
    """Isolated single-bit upsets over the healthy population (Fig 3).

    Calibrated so that "all other nodes combined had less than 30 memory
    errors" (Sec III-H).
    """

    rate_per_node_hour: float = 1.8e-6
    p_one_to_zero: float = 0.9
    #: Rate multiplier for the overheating SoC-12 slots while they are
    #: still powered (heat-damaged cells; provides the small >60 C error
    #: population of Fig 7).
    overheating_rate_multiplier: float = 75.0


@dataclass(frozen=True)
class CataloguePlacement:
    """Where and when the Table I multi-bit faults happen.

    * The two high-occurrence double-bit patterns and both 3-bit patterns
      recur on the degrading node (their November clustering drives
      Fig 11, and their simultaneity with single-bit errors gives the
      44 double+single / 2 triple+single / 1 double+double counts).
    * The remaining doubles recur each on one fixed node (a recurring
      weak multi-cell defect), times solar-modulated (Fig 6).
    * The seven >3-bit faults are the isolated-SDC population of Sec
      III-D: five otherwise-silent nodes, four of them adjacent to the
      overheating SoC-12 slots; two pairs share a calendar day (March and
      May) hours apart.
    """

    #: pattern key (expected, corrupted) -> node for recurring patterns.
    recurring_nodes: tuple[tuple[tuple[int, int], str], ...] = (
        ((0xFFFFFFFF, 0xFFFF7BFF), "02-04"),
        ((0xFFFFFFFF, 0xFFFF77FF), "02-04"),
        ((0xFFFFFFFF, 0xFFFF75FF), "02-04"),
        ((0xFFFFFFFF, 0xFFFFF1FF), "02-04"),
        ((0xFFFFFFFF, 0xFFFFF9FF), "02-04"),
        ((0xFFFFFFFF, 0xFFFFF3FF), "02-04"),
        ((0xFFFFFFFF, 0xFFFFF5FF), "43-03"),
        ((0xFFFFFFFF, 0xFFFF7DFF), "08-14"),
        ((0x000003C1, 0x000003C2), "55-07"),
        ((0xFFFFFFFF, 0xFFFFEEFF), "35-05"),
        ((0x000016BB, 0x000016B8), "47-02"),
    )
    #: Hosts of the >3-bit isolated faults.  "45-11" hosts three of them
    #: (the node with several); the other four nodes host one each and
    #: have no other error in the whole study.  Four of the five hosts sit
    #: adjacent to the overheating SoC-12 slots (Sec III-D).
    undetectable_hosts: tuple[tuple[int, str], ...] = (
        (0, "45-11"),  # 4-bit 0x00000461
        (1, "14-11"),  # 4-bit 0x00002957
        (2, "45-11"),  # 4-bit 0x000071b2
        (3, "23-13"),  # 5-bit
        (4, "45-11"),  # 6-bit
        (5, "37-11"),  # 8-bit
        (6, "52-08"),  # 9-bit (the one host away from SoC 12)
    )
    #: Study days of the >3-bit faults (same order as undetectable_hosts):
    #: two on one March day, hours apart; two on one May day (Fig 11).
    undetectable_days: tuple[int, ...] = (
        _day(2015, 3, 14),
        _day(2015, 3, 14),
        _day(2015, 2, 19),
        _day(2015, 5, 22),
        _day(2015, 5, 22),
        _day(2015, 3, 2),
        _day(2015, 3, 26),
    )
    #: How many of the degrading node's double-bit faults co-occur with a
    #: single-bit error elsewhere in its memory (Sec III-C: 44).
    doubles_with_companion: int = 44
    #: Both 3-bit faults co-occur with a single-bit error (Sec III-C: 2).
    triples_with_companion: int = 2
    #: One pair of double-bit faults shares a timestamp (Sec III-C).
    double_double_pairs: int = 1


@dataclass(frozen=True)
class CampaignConfig:
    """Everything the campaign simulator needs."""

    seed: int = DEFAULT_SEED
    n_days: int = timeutils.STUDY_DAYS
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    calendar: AcademicCalendar = field(default_factory=AcademicCalendar)
    activity: ActivityConfig = field(default_factory=ActivityConfig)
    #: Daemon stochastics (see sessions.build_session_track).
    p_full_alloc: float = 0.92
    p_alloc_fail: float = 0.002
    leak_mean_mb: float = 400.0
    p_truncation: float = 0.004
    p_counting: float = 0.05
    #: Probability that a deep-vacation day has no jobs at all (full-day
    #: idle windows merge into multi-day sessions).
    p_zero_jobs_vacation: float = 0.8

    stuck: StuckNodeConfig = field(default_factory=StuckNodeConfig)
    degrading: DegradingNodeConfig = field(default_factory=DegradingNodeConfig)
    weak_bits: tuple[WeakBitConfig, ...] = (
        WeakBitConfig(
            node="04-05",
            bit=17,
            word_index=77_321_554,
            episode_window_days=(222, 295),
        ),
        WeakBitConfig(
            node="58-02",
            bit=3,
            word_index=401_118_209,
            episode_window_days=(252, 318),
        ),
    )
    background: BackgroundConfig = field(default_factory=BackgroundConfig)
    placement: CataloguePlacement = field(default_factory=CataloguePlacement)
    #: Day:night modulation of the multi-bit channel (environment model).
    multibit_day_night_ratio: float = 5.5

    #: Execution controls.  These steer *how* the campaign is computed,
    #: never *what* it produces: every backend/worker combination yields a
    #: bit-identical result for the same seed, so they are excluded from
    #: cache digests (see :data:`EXECUTION_FIELDS`).
    workers: int = 1
    backend: str = "auto"

    #: Nodes excluded from the background model because the paper requires
    #: them silent (the isolated-SDC hosts) or they have dedicated models.
    def reserved_nodes(self) -> set[str]:
        reserved = {self.stuck.node, self.degrading.node}
        reserved.update(w.node for w in self.weak_bits)
        reserved.update(n for _, n in self.placement.recurring_nodes)
        reserved.update(n for _, n in self.placement.undetectable_hosts)
        return reserved

    def validate(self) -> None:
        if self.degrading.onset_day >= self.degrading.ramp_end_day:
            raise ConfigurationError("degrading ramp must have positive length")
        if not 0.0 <= self.p_counting <= 1.0:
            raise ConfigurationError("p_counting must be a probability")
        hosts = [n for _, n in self.placement.undetectable_hosts]
        if len(self.placement.undetectable_days) != len(hosts):
            raise ConfigurationError("undetectable days/hosts length mismatch")
        if self.workers != -1 and self.workers < 1:
            raise ConfigurationError("workers must be >= 1 (or -1 for all CPUs)")
        from ..parallel import BACKENDS

        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )


#: CampaignConfig fields that steer execution without affecting results;
#: cache digests must ignore them (a 4-worker run answers a serial query).
EXECUTION_FIELDS: tuple[str, ...] = ("workers", "backend")


def paper_campaign_config(seed: int = DEFAULT_SEED) -> CampaignConfig:
    """The configuration behind every figure/table experiment."""
    config = CampaignConfig(seed=seed)
    config.validate()
    return config


def quick_campaign_config(seed: int = DEFAULT_SEED) -> CampaignConfig:
    """A small, fast machine for tests: fewer healthy nodes, same actors.

    The special-role nodes (stuck, degrading, weak-bit, catalogue hosts)
    are untouched, so every pipeline stage still sees every phenomenon;
    only the healthy background population shrinks via a shorter study.
    """
    config = CampaignConfig(
        seed=seed,
        n_days=120,
        topology=TopologyConfig(
            soc12_off_start_hours=40 * 24.0,
            soc12_off_end_hours=120 * 24.0,
            blade33_off_start_hours=30 * 24.0,
            blade33_off_end_hours=90 * 24.0,
        ),
        degrading=replace(
            DegradingNodeConfig(),
            onset_day=30,
            ramp_end_day=100,
            monitoring_gaps=((100, 105), (107, 120)),
        ),
        weak_bits=(
            WeakBitConfig(node="04-05", bit=17, word_index=77_321_554, n_episodes=3),
            WeakBitConfig(node="58-02", bit=3, word_index=401_118_209, n_episodes=3),
        ),
        placement=replace(
            CataloguePlacement(),
            undetectable_days=(41, 41, 18, 110, 110, 29, 53),
        ),
    )
    config.validate()
    return config
