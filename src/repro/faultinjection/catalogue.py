"""The paper's Table I: every per-word multi-bit corruption observed.

The study logged exactly 85 multi-bit (per-memory-word) faults with 18
distinct (expected, corrupted) patterns; the campaign replays this
catalogue verbatim so Table I regenerates exactly.  Each entry's derived
properties (bit count, consecutiveness) are validated against the paper's
columns at import time — a transcription error would fail loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import bitops


@dataclass(frozen=True)
class MultiBitPattern:
    """One Table I row."""

    n_bits: int
    expected: int
    corrupted: int
    occurrences: int
    consecutive: bool

    @property
    def flip_mask(self) -> int:
        return self.expected ^ self.corrupted

    @property
    def uses_counting_pattern(self) -> bool:
        """Whether this row's expected value implies the counting scanner.

        Alternating-pattern sessions only ever expect 0x00000000 or
        0xFFFFFFFF; any other expected value came from a counting session.
        """
        return self.expected not in (0x00000000, 0xFFFFFFFF)

    @property
    def counting_iteration(self) -> int:
        """Iteration index at which the counting pattern expects this value."""
        if not self.uses_counting_pattern:
            raise ValueError("not a counting-pattern row")
        return self.expected - 1  # pattern starts at 0x00000001

    def validate(self) -> None:
        mask = self.flip_mask
        if bitops.popcount(mask) != self.n_bits:
            raise ValueError(
                f"Table I row {bitops.format_word(self.expected)}->"
                f"{bitops.format_word(self.corrupted)}: popcount mismatch"
            )
        if bool(bitops.is_consecutive_mask(mask)) != self.consecutive:
            raise ValueError(
                f"Table I row {bitops.format_word(self.expected)}->"
                f"{bitops.format_word(self.corrupted)}: consecutiveness mismatch"
            )
        if self.occurrences < 1:
            raise ValueError("occurrences must be >= 1")


#: Table I verbatim (n_bits, expected, corrupted, occurrences, consecutive).
TABLE_I: tuple[MultiBitPattern, ...] = tuple(
    MultiBitPattern(*row)
    for row in [
        (2, 0x000016BB, 0x000016B8, 1, True),
        (2, 0xFFFFFFFF, 0xFFFFEEFF, 2, False),
        (2, 0x000003C1, 0x000003C2, 2, True),
        (2, 0xFFFFFFFF, 0xFFFF7DFF, 4, False),
        (2, 0xFFFFFFFF, 0xFFFFF5FF, 4, False),
        (2, 0xFFFFFFFF, 0xFFFFF3FF, 7, True),
        (2, 0xFFFFFFFF, 0xFFFFF9FF, 10, True),
        (2, 0xFFFFFFFF, 0xFFFF77FF, 10, False),
        (2, 0xFFFFFFFF, 0xFFFF7BFF, 36, False),
        (3, 0xFFFFFFFF, 0xFFFF75FF, 1, False),
        (3, 0xFFFFFFFF, 0xFFFFF1FF, 1, True),
        (4, 0x00000461, 0x00006E61, 1, False),
        (4, 0x00002957, 0x00002958, 1, True),
        (4, 0x000071B2, 0x00007100, 1, False),
        (5, 0x000002E4, 0x00000215, 1, False),
        (6, 0x00006AB4, 0x00006A5A, 1, False),
        (8, 0xFFFFFFFF, 0xFFFFFF00, 1, True),
        (9, 0x00000058, 0xE6006358, 1, False),
    ]
)

for _pattern in TABLE_I:
    _pattern.validate()
del _pattern


def total_multibit_faults() -> int:
    """85 in the paper."""
    return sum(p.occurrences for p in TABLE_I)


def double_bit_faults() -> int:
    """76 in the paper."""
    return sum(p.occurrences for p in TABLE_I if p.n_bits == 2)


def beyond_double_faults() -> int:
    """9 in the paper (could escape SECDED)."""
    return sum(p.occurrences for p in TABLE_I if p.n_bits > 2)


def undetectable_patterns() -> tuple[MultiBitPattern, ...]:
    """The Sec III-D focus set: the rows with more than 3 bit flips.

    The paper's "last 7 lines of Table I": 3x 4-bit, and the 5/6/8/9-bit
    rows — 7 faults total.
    """
    return tuple(p for p in TABLE_I if p.n_bits > 3)
