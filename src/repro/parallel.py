"""Execution backends for embarrassingly-parallel campaign work.

The year-scale campaign decomposes into independent per-node work units
(session track, fault models, record rendering — see
:mod:`repro.faultinjection.campaign`).  This module provides the one
primitive those call sites need: an order-preserving ``map`` over a
selectable backend.

Backends
--------

``serial``
    Plain in-process loop.  The reference implementation; every other
    backend must produce bit-identical results (per-node RNG streams are
    pure functions of ``(seed, key)``, so they do).
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Useful when the
    work releases the GIL (NumPy bulk ops) or for I/O-bound maps; never
    changes results.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor`.  The scaling
    backend for CPU-bound campaign simulation.  Work functions must be
    module-level (picklable); per-process state is set up once through
    the ``initializer`` hook rather than shipped with every task.
``auto``
    Resolves to ``process`` when more than one worker is requested and
    the platform supports it, else ``serial``.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .core.errors import ConfigurationError

#: Backend names accepted by :func:`parallel_map` and ``CampaignConfig``.
BACKENDS = ("auto", "serial", "thread", "process")


def available_workers() -> int:
    """Number of usable CPUs (affinity-aware where the OS exposes it)."""
    try:
        return len(os.sched_getaffinity(0))  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker count (``None``/``0`` -> 1, ``-1`` -> all CPUs)."""
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return available_workers()
    return int(workers)


def resolve_backend(backend: str | None, workers: int) -> str:
    """Resolve ``auto``/``None`` to a concrete backend for ``workers``."""
    backend = backend or "auto"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if backend != "auto":
        return backend
    return "process" if workers > 1 else "serial"


def _mp_context():
    """Fork where available: cheap worker start and inherited imports."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    backend: str = "serial",
    workers: int = 1,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
) -> list[Any]:
    """Order-preserving map of ``fn`` over ``items`` on a backend.

    ``initializer(*initargs)`` runs once per worker process (``process``
    backend) or once up front (``serial``/``thread``), letting work
    functions share expensive per-process context through module globals
    instead of pickling it into every task.
    """
    items = list(items)
    workers = resolve_workers(workers)
    backend = resolve_backend(backend, workers)
    if backend == "serial" or not items or workers == 1 and backend != "process":
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]

    if backend == "thread":
        if initializer is not None:
            initializer(*initargs)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))

    # process backend
    chunksize = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_mp_context(),
        initializer=initializer,
        initargs=tuple(initargs),
    ) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


# ---------------------------------------------------------------------------
# Shared-memory shard handoff for the process backend
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardTicket:
    """A picklable claim check for arrays spilled by a worker process.

    Only this small handle crosses the process boundary; the arrays
    themselves stay on disk as ``.npy`` files, and the supervising
    process maps them back with ``mmap_mode="r"`` — so result transfer
    costs O(ticket) pickling instead of O(rows) regardless of how many
    records a unit produced.
    """

    token: str
    path: str
    arrays: tuple[str, ...]
    meta: dict

    @property
    def n_arrays(self) -> int:
        return len(self.arrays)


class ShardArena:
    """A spill directory shared between workers and their supervisor.

    Workers :meth:`spill` their bulk arrays as one directory of ``.npy``
    files per unit and return a :class:`ShardTicket`; the supervisor
    :meth:`claim`\\ s tickets as memory-mapped arrays (zero-copy until
    touched) and :meth:`release`\\ s each unit once its rows are durable
    elsewhere.  Spills are atomic (write to ``<token>.tmp``, then
    ``os.replace``), so a retried unit — the supervisor re-dispatches
    after worker deaths — simply replaces its own spill; bit-identical
    unit results make the race benign, and a half-written tmp directory
    from a killed worker is invisible to :meth:`claim`.

    The arena lives under its own directory (usually from
    :meth:`create`); :meth:`close` removes everything still spilled.
    """

    def __init__(self, root: str):
        self.root = str(root)

    @classmethod
    def create(cls, base_dir: str | None = None) -> "ShardArena":
        """A fresh arena in a private temporary directory."""
        return cls(tempfile.mkdtemp(prefix="repro-shards-", dir=base_dir))

    def _unit_dir(self, token: str) -> str:
        if not token or "/" in token or token.startswith("."):
            raise ConfigurationError(f"bad shard token {token!r}")
        return os.path.join(self.root, token)

    def spill(
        self,
        token: str,
        columns: Mapping[str, np.ndarray],
        meta: dict | None = None,
    ) -> ShardTicket:
        """Write ``columns`` to the arena; returns the claim check."""
        final = self._unit_dir(token)
        tmp = final + ".tmp"
        if os.path.exists(tmp):
            shutil.rmtree(tmp)
        os.makedirs(tmp)
        names = tuple(sorted(columns))
        for name in names:
            np.save(os.path.join(tmp, f"{name}.npy"), np.asarray(columns[name]))
        if os.path.exists(final):
            shutil.rmtree(final)
        # repro: noqa[RES002]: scratch handoff; a spill torn by a crash is never read — the supervisor re-runs the unit
        os.replace(tmp, final)
        return ShardTicket(
            token=token, path=final, arrays=names, meta=dict(meta or {})
        )

    def claim(self, ticket: ShardTicket) -> dict[str, np.ndarray]:
        """Map a ticket's arrays back in, read-only, without copying."""
        return {
            # repro: noqa[RES001]: mapping lifetime is the claim holder's — closed when release() drops the spill
            name: np.load(
                os.path.join(ticket.path, f"{name}.npy"), mmap_mode="r"
            )
            for name in ticket.arrays
        }

    def release(self, ticket: ShardTicket) -> None:
        """Drop a unit's spill once its rows are durable elsewhere."""
        shutil.rmtree(ticket.path, ignore_errors=True)

    def close(self) -> None:
        """Remove the arena and anything still spilled in it."""
        shutil.rmtree(self.root, ignore_errors=True)

    def __enter__(self) -> "ShardArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Supervised map: retries, watchdog timeouts, broken-pool recovery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Per-unit retry budget with exponential backoff.

    ``retries`` counts *extra* attempts beyond the first, so a unit runs
    at most ``retries + 1`` times.  The backoff before attempt ``n + 1``
    is ``backoff_base_s * backoff_factor ** (n - 1)``, capped at
    ``backoff_max_s`` — deterministic (no jitter), since work units are
    pure functions and the supervisor never races itself.
    """

    retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")

    def delay(self, failed_attempts: int) -> float:
        """Seconds to wait before the attempt after ``failed_attempts``."""
        if failed_attempts < 1:
            return 0.0
        return min(
            self.backoff_base_s * self.backoff_factor ** (failed_attempts - 1),
            self.backoff_max_s,
        )


#: Why a unit permanently failed.
FAILURE_KINDS = ("error", "timeout", "pool")


@dataclass(frozen=True)
class UnitFailure:
    """One work unit that exhausted its retry budget."""

    key: str
    index: int
    attempts: int
    kind: str   # one of FAILURE_KINDS (the *last* attempt's failure mode)
    error: str  # repr of the last exception ("" for timeout/pool deaths)


@dataclass
class SupervisedOutcome:
    """Everything :func:`supervised_map` observed.

    ``values`` is order-preserving with ``None`` holes where a unit
    permanently failed; ``failures`` explains each hole.  The counters
    aggregate over the whole map (retries include re-dispatches after
    worker deaths and watchdog kills).
    """

    values: list[Any]
    failures: list[UnitFailure] = field(default_factory=list)
    n_retries: int = 0
    n_timeouts: int = 0
    n_pool_rebuilds: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def failed_keys(self) -> list[str]:
        return [f.key for f in self.failures]


def _supervised_call(fn, item, key: str, attempt: int, chaos) -> Any:
    """One attempt of one unit, with optional chaos injection.

    Module-level so the process backend can pickle it; the chaos plan
    (a frozen dataclass) ships with every task, keeping injection a pure
    function of ``(plan, key, attempt)`` in whichever process runs it.
    """
    if chaos is not None:
        chaos.apply(key, attempt)
    return fn(item)


class _UnitState:
    """Supervisor-side bookkeeping for one work unit."""

    __slots__ = ("index", "key", "item", "attempts", "done", "failure")

    def __init__(self, index: int, key: str, item: Any):
        self.index = index
        self.key = key
        self.item = item
        self.attempts = 0          # completed (failed) attempts so far
        self.done = False
        self.failure: UnitFailure | None = None


def _drain_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even if workers are hung or already dead.

    ``ProcessPoolExecutor`` has no public per-worker kill, so the
    watchdog terminates the worker processes directly (a documented-
    stable private attribute since 3.7) before the non-blocking
    shutdown; a plain shutdown would block forever behind a wedged
    unit.
    """
    processes = getattr(pool, "_processes", None)
    if processes:
        for proc in list(processes.values()):
            try:
                proc.kill()
            except Exception:  # pragma: no cover - already-dead workers
                pass
    pool.shutdown(wait=True, cancel_futures=True)


def supervised_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    keys: Sequence[str] | None = None,
    backend: str = "serial",
    workers: int = 1,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
    retry: RetryPolicy | None = None,
    unit_timeout: float | None = None,
    chaos=None,
    on_unit_result: Callable[[int, str, Any], None] | None = None,
    max_pool_rebuilds: int = 8,
) -> SupervisedOutcome:
    """Fault-tolerant, order-preserving map over the parallel backends.

    The supervised twin of :func:`parallel_map`: each unit gets a retry
    budget with exponential backoff (``retry``), a watchdog timeout
    (``unit_timeout``; enforced on the process backend, where a wedged
    worker can actually be killed), and the process pool is rebuilt on
    :class:`BrokenProcessPool` with only in-flight units re-dispatched.
    Units must be pure functions of their item (true for the per-node
    campaign units: RNG streams are functions of ``(seed, key)``), so a
    retried unit returns a bit-identical value and the map's *result* is
    unchanged by any failure below the budget.

    ``keys`` names units for failure reporting and chaos targeting
    (default ``str(item)``).  ``on_unit_result(index, key, value)`` runs
    in the supervising process as each unit first succeeds — the
    checkpoint-journal hook.  It is never invoked concurrently: the
    process and serial backends call it from the supervisor loop, and the
    thread backend serializes calls through a lock while still firing
    per completion, so checkpoint journaling stays incremental on every
    backend.  Permanent failures become :class:`UnitFailure` entries
    instead of exceptions; callers decide whether a degraded result is
    acceptable.
    """
    items = list(items)
    keys = [str(item) for item in items] if keys is None else [str(k) for k in keys]
    if len(keys) != len(items):
        raise ConfigurationError("keys must match items one-to-one")
    retry = retry or RetryPolicy(retries=0)
    workers = resolve_workers(workers)
    backend = resolve_backend(backend, workers)
    units = [_UnitState(i, key, item) for i, (key, item) in enumerate(zip(keys, items))]
    outcome = SupervisedOutcome(values=[None] * len(items))

    if backend == "process" and items:
        _supervise_process(
            fn, units, outcome,
            workers=workers,
            initializer=initializer,
            initargs=tuple(initargs),
            retry=retry,
            unit_timeout=unit_timeout,
            chaos=chaos,
            on_unit_result=on_unit_result,
            max_pool_rebuilds=max_pool_rebuilds,
        )
        return outcome

    # Serial/thread backends: retry in place.  A watchdog cannot preempt
    # code sharing the supervisor's process, so ``unit_timeout`` is a
    # process-backend feature; here hangs surface via the caller's own
    # timeout (e.g. the CI-level pytest timeout).
    if initializer is not None:
        initializer(*initargs)
    lock = threading.Lock()  # guards counters + callbacks on the thread backend

    def run_unit(unit: _UnitState) -> None:
        while True:
            try:
                value = _supervised_call(fn, unit.item, unit.key, unit.attempts + 1, chaos)
            except Exception as exc:
                unit.attempts += 1
                if unit.attempts > retry.retries:
                    unit.failure = UnitFailure(
                        key=unit.key, index=unit.index, attempts=unit.attempts,
                        kind="error", error=repr(exc),
                    )
                    return
                with lock:
                    outcome.n_retries += 1
                time.sleep(retry.delay(unit.attempts))
            else:
                unit.done = True
                outcome.values[unit.index] = value
                return

    if backend == "thread" and len(items) > 1:
        # Completion callbacks fire as each unit succeeds (checkpoint
        # journaling stays incremental — a driver crash mid-map loses
        # only the units still running), serialized through the lock so
        # the journal never sees interleaved appends.
        def run_and_report(unit: _UnitState) -> None:
            run_unit(unit)
            if unit.done and on_unit_result is not None:
                with lock:
                    on_unit_result(unit.index, unit.key, outcome.values[unit.index])

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(run_and_report, units))
    else:
        for unit in units:
            run_unit(unit)
            if unit.done and on_unit_result is not None:
                on_unit_result(unit.index, unit.key, outcome.values[unit.index])

    outcome.failures = [u.failure for u in units if u.failure is not None]
    return outcome


def _supervise_process(
    fn,
    units: list[_UnitState],
    outcome: SupervisedOutcome,
    *,
    workers: int,
    initializer,
    initargs: tuple,
    retry: RetryPolicy,
    unit_timeout: float | None,
    chaos,
    on_unit_result,
    max_pool_rebuilds: int,
) -> None:
    """The process-backend supervisor event loop.

    Tracks in-flight futures with per-unit deadlines; on a unit error it
    schedules a backoff-delayed re-dispatch, on a watchdog expiry or a
    broken pool it kills/rebuilds the pool and re-dispatches only the
    units that were in flight.  Attempt accounting: the timed-out or
    erroring unit is charged an attempt; when the pool breaks, every
    in-flight unit is charged (the culprit is indistinguishable from
    collateral damage, exactly as with a real dead blade).
    """

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
            initializer=initializer,
            initargs=initargs,
        )

    pool = make_pool()
    inflight: dict[Future, tuple[_UnitState, float]] = {}
    ready: list[tuple[float, _UnitState]] = [(0.0, u) for u in units]
    # Bound the number of outstanding futures.  With a watchdog, one
    # slot per worker so a unit's deadline clock starts at (roughly) its
    # execution start, not its submission; without one, a deeper window
    # keeps workers fed while still keeping "in flight" — the set charged
    # when the pool breaks — close to what is actually running.
    window = workers if unit_timeout else workers * 4

    def fail(unit: _UnitState, kind: str, error: str = "") -> None:
        unit.failure = UnitFailure(
            key=unit.key, index=unit.index, attempts=unit.attempts,
            kind=kind, error=error,
        )

    def charge(unit: _UnitState, kind: str, error: str = "") -> None:
        """One failed attempt: retry within budget, else permanent failure."""
        unit.attempts += 1
        if unit.attempts > retry.retries:
            fail(unit, kind, error)
        else:
            outcome.n_retries += 1
            ready.append((time.monotonic() + retry.delay(unit.attempts), unit))

    def rebuild_pool(
        casualties: list[_UnitState],
        kind: str,
        innocents: Sequence[_UnitState] = (),
    ) -> None:
        """Tear down and replace the pool; the single rebuild-cap gate.

        ``casualties`` are charged a failed attempt; ``innocents`` (units
        that were in flight but not implicated) are re-queued free of
        charge.  Every rebuild — broken pool or watchdog expiry — counts
        against ``max_pool_rebuilds``; past the cap everything still
        pending fails closed instead of thrashing forever.
        """
        nonlocal pool
        _drain_pool(pool)
        inflight.clear()
        outcome.n_pool_rebuilds += 1
        if outcome.n_pool_rebuilds > max_pool_rebuilds:
            for unit in casualties:
                fail(unit, kind, "pool rebuild limit reached")
            for unit in innocents:
                fail(unit, kind, "pool rebuild limit reached")
            for _, unit in ready:
                fail(unit, kind, "pool rebuild limit reached")
            ready.clear()
        else:
            for unit in casualties:
                charge(unit, kind)
            for unit in innocents:
                ready.append((0.0, unit))
        pool = make_pool()

    try:
        while inflight or ready:
            now = time.monotonic()
            # Dispatch units whose backoff delay has elapsed, up to the
            # window, in (ready time, index) order for determinism.
            ready.sort(key=lambda entry: (entry[0], entry[1].index))
            still_waiting: list[tuple[float, _UnitState]] = []
            broke_at_submit: _UnitState | None = None
            for ready_at, unit in ready:
                if unit.failure is not None:
                    continue
                if (
                    ready_at > now
                    or broke_at_submit is not None
                    or len(inflight) >= window
                ):
                    still_waiting.append((ready_at, unit))
                    continue
                try:
                    future = pool.submit(
                        _supervised_call, fn, unit.item, unit.key,
                        unit.attempts + 1, chaos,
                    )
                except BrokenProcessPool:
                    broke_at_submit = unit
                    continue
                deadline = now + unit_timeout if unit_timeout else float("inf")
                inflight[future] = (unit, deadline)
            ready[:] = still_waiting
            if broke_at_submit is not None:
                casualties = [unit for unit, _ in inflight.values()]
                casualties.append(broke_at_submit)
                rebuild_pool(casualties, "pool")
                continue

            if not inflight:
                if ready:
                    time.sleep(max(0.0, min(t for t, _ in ready) - time.monotonic()))
                continue

            # Wake at the earliest watchdog deadline or pending backoff
            # expiry; units due now but window-blocked wait for the next
            # completion instead (FIRST_COMPLETED), never a spin.
            now = time.monotonic()
            next_deadline = min(deadline for _, deadline in inflight.values())
            future_ready = [t for t, _ in ready if t > now]
            if future_ready:
                next_deadline = min(next_deadline, min(future_ready))
            wait_s = None
            if next_deadline != float("inf"):
                wait_s = max(0.0, next_deadline - now) + 0.01
            done, _ = wait(inflight, timeout=wait_s, return_when=FIRST_COMPLETED)

            broken_units: list[_UnitState] = []
            for future in done:
                unit, _deadline = inflight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool:
                    broken_units.append(unit)
                except Exception as exc:
                    charge(unit, "error", repr(exc))
                else:
                    unit.done = True
                    outcome.values[unit.index] = value
                    if on_unit_result is not None:
                        on_unit_result(unit.index, unit.key, value)
            if broken_units:
                # Everything still in flight died with the pool; units
                # waiting in the ready queue never reached a worker and
                # are not charged.
                casualties = [unit for unit, _ in inflight.values()]
                casualties += broken_units
                rebuild_pool(casualties, "pool")
                continue

            # Watchdog: any in-flight unit past its deadline means a
            # wedged worker; the only reliable recovery is to kill the
            # pool.  One pass partitions the in-flight set: futures that
            # completed in the window since ``wait`` returned are
            # harvested first (their results are final even though the
            # pool is about to die — dropping them would leave a silent
            # ``None`` hole with no matching failure), expired units are
            # charged a (timeout) attempt, and innocent still-running
            # units are re-dispatched free of charge.
            now = time.monotonic()
            completed: list[tuple[Future, _UnitState]] = []
            expired: list[_UnitState] = []
            innocents: list[_UnitState] = []
            for future, (unit, deadline) in inflight.items():
                if future.done():
                    completed.append((future, unit))
                elif deadline <= now:
                    expired.append(unit)
                else:
                    innocents.append(unit)
            if expired:
                for future, unit in completed:
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        charge(unit, "pool")
                    except Exception as exc:
                        charge(unit, "error", repr(exc))
                    else:
                        unit.done = True
                        outcome.values[unit.index] = value
                        if on_unit_result is not None:
                            on_unit_result(unit.index, unit.key, value)
                outcome.n_timeouts += len(expired)
                rebuild_pool(expired, "timeout", innocents=innocents)
    finally:
        _drain_pool(pool)

    outcome.failures = [u.failure for u in units if u.failure is not None]
