"""Execution backends for embarrassingly-parallel campaign work.

The year-scale campaign decomposes into independent per-node work units
(session track, fault models, record rendering — see
:mod:`repro.faultinjection.campaign`).  This module provides the one
primitive those call sites need: an order-preserving ``map`` over a
selectable backend.

Backends
--------

``serial``
    Plain in-process loop.  The reference implementation; every other
    backend must produce bit-identical results (per-node RNG streams are
    pure functions of ``(seed, key)``, so they do).
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Useful when the
    work releases the GIL (NumPy bulk ops) or for I/O-bound maps; never
    changes results.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor`.  The scaling
    backend for CPU-bound campaign simulation.  Work functions must be
    module-level (picklable); per-process state is set up once through
    the ``initializer`` hook rather than shipped with every task.
``auto``
    Resolves to ``process`` when more than one worker is requested and
    the platform supports it, else ``serial``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from .core.errors import ConfigurationError

#: Backend names accepted by :func:`parallel_map` and ``CampaignConfig``.
BACKENDS = ("auto", "serial", "thread", "process")


def available_workers() -> int:
    """Number of usable CPUs (affinity-aware where the OS exposes it)."""
    try:
        return len(os.sched_getaffinity(0))  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker count (``None``/``0`` -> 1, ``-1`` -> all CPUs)."""
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return available_workers()
    return int(workers)


def resolve_backend(backend: str | None, workers: int) -> str:
    """Resolve ``auto``/``None`` to a concrete backend for ``workers``."""
    backend = backend or "auto"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if backend != "auto":
        return backend
    return "process" if workers > 1 else "serial"


def _mp_context():
    """Fork where available: cheap worker start and inherited imports."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    backend: str = "serial",
    workers: int = 1,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
) -> list[Any]:
    """Order-preserving map of ``fn`` over ``items`` on a backend.

    ``initializer(*initargs)`` runs once per worker process (``process``
    backend) or once up front (``serial``/``thread``), letting work
    functions share expensive per-process context through module globals
    instead of pickling it into every task.
    """
    items = list(items)
    workers = resolve_workers(workers)
    backend = resolve_backend(backend, workers)
    if backend == "serial" or not items or workers == 1 and backend != "process":
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]

    if backend == "thread":
        if initializer is not None:
            initializer(*initargs)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))

    # process backend
    chunksize = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_mp_context(),
        initializer=initializer,
        initargs=tuple(initargs),
    ) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
