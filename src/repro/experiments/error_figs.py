"""Figs 3, 10, 11, 12, 13: error-rate and regime figures."""

from __future__ import annotations

import numpy as np

from ..analysis import coverage, spatial, temporal
from ..analysis.report import StudyAnalysis
from .base import ExperimentResult, monthly_totals, register, render_heatmap


@register("fig03")
def fig03_errors_per_node(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 3: independent memory errors per node (log-scale heat map)."""
    counts = analysis.errors_by_node
    campaign = analysis.campaign
    grid = coverage.errors_grid(campaign.registry, counts)
    values = np.array(list(counts.values()))
    n_scanned = campaign.registry.n_scanned
    result = ExperimentResult(
        exp_id="fig03",
        title="Independent memory errors per node",
        headers=("quantity", "paper", "measured"),
        rows=[
            ("nodes with zero errors", "most", n_scanned - len(counts)),
            ("nodes with exactly one error", "most of the rest", int((values == 1).sum())),
            ("nodes with 2..99 errors", "a few", int(((values >= 2) & (values < 100)).sum())),
            ("nodes with >=1000 errors", "a few hot spots", int((values >= 1000).sum())),
            ("max errors on one node", "tens of thousands", int(values.max())),
        ],
    )
    result.notes.append("log-scale heat map:")
    result.notes.append(render_heatmap(grid, log_scale=True))
    return result


@register("fig10")
def fig10_daily_errors(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 10: number of errors per day (monthly totals by bit count)."""
    n_days = analysis.campaign.config.n_days
    hist = temporal.daily_histogram(analysis.frame, n_days)
    single = hist.get(1, np.zeros(n_days))
    multi = sum(
        (v for k, v in hist.items() if k >= 2), np.zeros(n_days, dtype=np.int64)
    )
    rows = [
        (month, round(s), round(m))
        for (month, s), (_, m) in zip(monthly_totals(single), monthly_totals(multi))
    ]
    sep_dec = sum(s for (m, s, _) in rows if m in ("2015-09", "2015-10", "2015-11", "2015-12"))
    feb_jul = sum(s for (m, s, _) in rows if m in ("2015-02", "2015-03", "2015-04", "2015-05", "2015-06", "2015-07"))
    result = ExperimentResult(
        exp_id="fig10",
        title="Errors per day, monthly totals (single-bit vs multi-bit)",
        headers=("month", "single-bit", "multi-bit"),
        rows=rows,
    )
    result.notes.append(
        "paper: more errors Sep-Dec than the first half; measured "
        f"Sep-Dec={sep_dec:,} vs Feb-Jul={feb_jul:,}"
    )
    return result


@register("fig11")
def fig11_daily_multibit(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 11: multi-bit errors per day (rare; November cluster)."""
    n_days = analysis.campaign.config.n_days
    daily = temporal.daily_multibit(analysis.frame, n_days)
    days_with = np.flatnonzero(daily > 0)
    from ..core import timeutils

    rows = [
        (str(timeutils.date_of(day * 24.0)), int(daily[day])) for day in days_with
    ]
    november = int(
        sum(daily[day] for day in days_with if timeutils.date_of(day * 24.0).month == 11)
    )
    # Undetectable (>3-bit) same-day pairs (paper: March and May).
    frame = analysis.frame
    undet_days = sorted(
        {
            str(timeutils.date_of(t))
            for t, nb in zip(frame.time_hours, frame.n_bits)
            if nb > 3
        }
    )
    result = ExperimentResult(
        exp_id="fig11",
        title="Multi-bit errors per day (days with any)",
        headers=("date", "multi-bit errors"),
        rows=rows,
    )
    result.notes.append(
        f"November multi-bit total: {november} of {int(daily.sum())} "
        "(paper: unusually high rates in November 2015)"
    )
    result.notes.append(
        f"distinct dates hosting >3-bit faults: {', '.join(undet_days)} "
        "(paper: two same-day pairs, March and May)"
    )
    return result


@register("fig12")
def fig12_top_nodes(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 12: errors per day for the three hottest nodes vs the rest."""
    counts = analysis.errors_by_node
    top = spatial.top_nodes(counts, 3)
    n_days = analysis.campaign.config.n_days
    series = spatial.daily_series_by_node(
        analysis.frame, [name for name, _ in top], n_days
    )
    rows = []
    for name, total in top:
        s = series[name]
        peak = int(s.max())
        forensics = spatial.node_forensics(analysis.errors, name)
        rows.append(
            (
                name,
                total,
                peak,
                forensics.n_distinct_addresses,
                forensics.n_distinct_patterns,
                forensics.likely_cause,
            )
        )
    others_total = int(series["others"].sum())
    result = ExperimentResult(
        exp_id="fig12",
        title="Errors per day for the hottest nodes",
        headers=("node", "errors", "peak/day", "addresses", "patterns", "diagnosis"),
        rows=rows,
    )
    result.notes.append(
        f"all other nodes combined: {others_total} errors (paper: <30 ... "
        "'over 99.9% of errors occurring in less than 1% of the nodes')"
    )
    result.notes.append(
        "paper: 02-04 ramps from August to >1000/day in November "
        "(>11,000 addresses, ~30 patterns); 04-05 & 58-02 are single "
        "weak bits (100% identical errors)"
    )
    return result


@register("fig13")
def fig13_regimes(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 13: normal vs degraded regime per day + Sec III-I MTBFs."""
    reg = analysis.regimes
    result = ExperimentResult(
        exp_id="fig13",
        title="System regime classification (permanent-failure node excluded)",
        headers=("quantity", "paper", "measured"),
        rows=[
            ("degraded days (>3 errors)", "77 (18.1%)", f"{reg.n_degraded} ({reg.n_degraded/reg.n_days:.1%})"),
            ("normal days", "348", reg.n_normal),
            ("errors on normal days", "~50", reg.errors_on_normal_days),
            ("errors on degraded days", "~4,779", reg.errors_on_degraded_days),
            ("MTBF normal (h)", "167", round(reg.mtbf_normal_hours, 1)),
            ("MTBF degraded (h)", "0.39", round(reg.mtbf_degraded_hours, 2)),
        ],
    )
    bursty = temporal.burstiness_stats(analysis.frame, reg.n_days)
    result.notes.append(
        f"temporal clustering: inter-arrival CV {bursty.cv_interarrival:.1f} "
        f"and daily Fano factor {bursty.fano_factor_daily:,.0f} (Poisson "
        "would give 1 for both) — the paper's 'errors are not only "
        "clustered in a few nodes, but also clustered in time'"
    )
    return result
