"""Export experiment results as machine-readable CSV files.

Downstream plotting/pipelines want the raw series rather than rendered
text; this module writes one CSV per experiment (headers + rows) plus a
``notes.txt`` companion carrying the annotations.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..analysis.report import StudyAnalysis
from .base import ExperimentResult
from .runner import EXPERIMENT_ORDER, run_all


def export_result(result: ExperimentResult, directory: str | Path) -> Path:
    """Write one experiment's rows to ``<directory>/<exp_id>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.exp_id}.csv"
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow(row)
    if result.notes:
        notes_path = directory / f"{result.exp_id}.notes.txt"
        notes_path.write_text("\n".join(result.notes) + "\n", encoding="utf-8")
    return path


def export_all(
    analysis: StudyAnalysis, directory: str | Path
) -> list[Path]:
    """Every experiment's CSV, in paper order."""
    paths = []
    for result in run_all(analysis):
        paths.append(export_result(result, directory))
    return paths


def export_report(analysis: StudyAnalysis, directory: str | Path) -> Path:
    """The headline paper-vs-measured table as CSV."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "headline_report.csv"
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(("metric", "paper", "measured"))
        for row in analysis.report().rows():
            writer.writerow(row)
    return path


__all__ = ["EXPERIMENT_ORDER", "export_all", "export_report", "export_result"]
