"""Experiment runner: campaign/analysis caching and batch execution.

The paper-scale campaign takes ~15 s; every experiment shares one
:class:`StudyAnalysis` per configuration so a full figure sweep costs one
campaign.  Results are memoized at two levels:

* in-process, so one sweep builds each analysis once;
* on disk via :mod:`repro.cache`, so *separate* processes (repeated CLI
  invocations, benchmark sessions, parallel figure jobs) skip
  re-simulation entirely.
"""

from __future__ import annotations

from ..analysis.report import StudyAnalysis
from ..cache import CampaignCache, config_digest, default_cache
from ..core.rng import DEFAULT_SEED
from ..faultinjection.campaign import CampaignResult, run_campaign
from ..faultinjection.config import paper_campaign_config, quick_campaign_config
from .base import REGISTRY, ExperimentResult

# Importing these modules populates the registry.
from . import (  # noqa: F401  (import for side effects)
    ablations,
    coverage_figs,
    error_figs,
    future_work,
    multibit_figs,
    resilience_exps,
    sdc_exps,
    temperature_figs,
)

#: Order in which `run_all` executes (paper order).
EXPERIMENT_ORDER: tuple[str, ...] = (
    "headline",
    "fig01",
    "fig02",
    "fig03",
    "table1",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table2",
    "sec1_exascale_projection",
    "sec2_beam_vs_field",
    "sec3c_alignment",
    "sec3d_undetectable",
    "sec3g_pearson",
    "sec3i_prediction",
    "ml_prediction",
    "sec4_resilience",
    "sec4_checkpoint_sim",
    "sec4_scrubbing",
    "whatif_ecc_campaign",
    "ablation_swizzle",
    "ablation_ecc",
    "ablation_ecc_overhead",
    "ablation_quarantine_trigger",
    "ablation_seed_stability",
    "futurework_stress",
    "futurework_swap",
)


#: In-process memo: config digest -> shared StudyAnalysis.
_ANALYSES: dict[str, StudyAnalysis] = {}


def _cacheable(result: CampaignResult) -> CampaignResult:
    """A copy worth persisting: no derived frames, no run-local metrics.

    The archive is converted to columnar form before pickling: cache
    entries then hold a handful of NumPy arrays per node instead of
    millions of record dataclasses, and reloads rebuild the raw
    :class:`~repro.logs.frame.ErrorFrame` vectorized — no per-record
    Python loop on the hot analysis path.
    """
    return CampaignResult(
        config=result.config,
        registry=result.registry,
        tracks=result.tracks,
        archive=result.columnar_archive(),
        n_observations=result.n_observations,
    )


def get_analysis(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    *,
    workers: int | None = None,
    backend: str | None = None,
    use_cache: bool = True,
    cache: CampaignCache | None = None,
    retry=None,
    unit_timeout: float | None = None,
) -> StudyAnalysis:
    """The shared analysis for a seed (campaign runs once, then cached).

    ``workers``/``backend`` control how a cache *miss* is simulated; they
    never affect the result (all backends are bit-identical), so hits and
    misses are interchangeable.  ``use_cache=False`` bypasses both the
    in-process memo and the disk cache.  ``retry``/``unit_timeout`` route
    a cache miss through the fault-tolerant supervisor (see
    :func:`repro.faultinjection.run_campaign`); sub-budget recoveries are
    bit-identical, so they share the cache key with plain runs.  A
    *degraded* run (nodes exhausted their retry budget) is returned to
    this caller but never cached — on disk or in the memo — because its
    node population is incomplete and the cache key cannot distinguish it
    from a healthy run.
    """
    config = (
        quick_campaign_config(seed) if quick else paper_campaign_config(seed)
    )
    key = config_digest(config)
    if use_cache and key in _ANALYSES:
        return _ANALYSES[key]

    result: CampaignResult | None = None
    store = cache if cache is not None else default_cache()
    if use_cache:
        loaded = store.load(key)
        if isinstance(loaded, CampaignResult):
            result = loaded
    if result is None:
        result = run_campaign(
            config,
            workers=workers,
            backend=backend,
            retry=retry,
            unit_timeout=unit_timeout,
        )
        if use_cache and result.degraded is None:
            store.store(key, _cacheable(result))

    analysis = StudyAnalysis(result)
    if use_cache and result.degraded is None:
        _ANALYSES[key] = analysis
    return analysis


def clear_analysis_memo() -> None:
    """Drop the in-process analysis memo (tests, long-lived servers)."""
    _ANALYSES.clear()


def run_experiment(
    exp_id: str, analysis: StudyAnalysis | None = None, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Run one registered experiment."""
    if exp_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(REGISTRY)}"
        )
    if analysis is None:
        analysis = get_analysis(seed)
    return REGISTRY[exp_id](analysis)


def run_all(
    analysis: StudyAnalysis | None = None, seed: int = DEFAULT_SEED
) -> list[ExperimentResult]:
    """Every experiment, in paper order."""
    if analysis is None:
        analysis = get_analysis(seed)
    missing = set(REGISTRY) - set(EXPERIMENT_ORDER)
    if missing:
        raise RuntimeError(f"experiments missing from EXPERIMENT_ORDER: {missing}")
    return [REGISTRY[e](analysis) for e in EXPERIMENT_ORDER]
