"""Experiment runner: campaign/analysis caching and batch execution.

The paper-scale campaign takes ~15 s; every experiment shares one cached
:class:`StudyAnalysis` per seed so a full figure sweep costs one campaign.
"""

from __future__ import annotations

from functools import lru_cache

from ..analysis.report import StudyAnalysis
from ..core.rng import DEFAULT_SEED
from ..faultinjection.campaign import run_campaign
from ..faultinjection.config import paper_campaign_config, quick_campaign_config
from .base import REGISTRY, ExperimentResult

# Importing these modules populates the registry.
from . import (  # noqa: F401  (import for side effects)
    ablations,
    coverage_figs,
    error_figs,
    future_work,
    multibit_figs,
    resilience_exps,
    sdc_exps,
    temperature_figs,
)

#: Order in which `run_all` executes (paper order).
EXPERIMENT_ORDER: tuple[str, ...] = (
    "headline",
    "fig01",
    "fig02",
    "fig03",
    "table1",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table2",
    "sec1_exascale_projection",
    "sec2_beam_vs_field",
    "sec3c_alignment",
    "sec3d_undetectable",
    "sec3g_pearson",
    "sec3i_prediction",
    "sec4_resilience",
    "sec4_checkpoint_sim",
    "sec4_scrubbing",
    "whatif_ecc_campaign",
    "ablation_swizzle",
    "ablation_ecc",
    "ablation_ecc_overhead",
    "ablation_quarantine_trigger",
    "ablation_seed_stability",
    "futurework_stress",
    "futurework_swap",
)


@lru_cache(maxsize=4)
def get_analysis(seed: int = DEFAULT_SEED, quick: bool = False) -> StudyAnalysis:
    """The shared analysis for a seed (campaign runs once, then cached)."""
    config = (
        quick_campaign_config(seed) if quick else paper_campaign_config(seed)
    )
    return StudyAnalysis(run_campaign(config))


def run_experiment(
    exp_id: str, analysis: StudyAnalysis | None = None, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Run one registered experiment."""
    if exp_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(REGISTRY)}"
        )
    if analysis is None:
        analysis = get_analysis(seed)
    return REGISTRY[exp_id](analysis)


def run_all(
    analysis: StudyAnalysis | None = None, seed: int = DEFAULT_SEED
) -> list[ExperimentResult]:
    """Every experiment, in paper order."""
    if analysis is None:
        analysis = get_analysis(seed)
    missing = set(REGISTRY) - set(EXPERIMENT_ORDER)
    if missing:
        raise RuntimeError(f"experiments missing from EXPERIMENT_ORDER: {missing}")
    return [REGISTRY[e](analysis) for e in EXPERIMENT_ORDER]
