"""The paper's future-work program, simulated.

The conclusion announces two follow-on experiments:

* "stress test our system by turning on the nodes with heating issues
  and monitoring them as well as their neighbors" — we rerun the
  campaign with the SoC-12 slots left powered for the whole study and
  compare their (and their neighbours') error rates against the baseline
  run;
* "swap some components from the most faulty nodes with some healthy
  nodes to further improve the memory error characterization" — we model
  a mid-study component swap between the degrading node and a healthy
  node and show the forensic signature follows the component, confirming
  the component (not the slot) as the root cause.

Both run on shortened campaigns so the whole experiment suite stays
interactive; the point is the comparison structure, not the year scale.
"""

from __future__ import annotations

import dataclasses

from ..analysis import spatial
from ..analysis.extraction import extract
from ..analysis.report import StudyAnalysis
from ..cluster.topology import OVERHEATING_SOC, NodeId
from ..core.records import ErrorRecord
from ..faultinjection.campaign import run_campaign
from ..faultinjection.config import quick_campaign_config
from ..logs.frame import ErrorFrame
from .base import ExperimentResult, register


def _column_error_rates(analysis: StudyAnalysis) -> dict[str, float]:
    """Errors per 1000 monitored node-hours for SoC-12, neighbours, rest.

    Special-role nodes (the degrading node, weak bits, catalogue hosts)
    are excluded: the stress test compares the *background* populations.
    """
    counts = analysis.errors_by_node
    hours = analysis.campaign.monitored_hours_by_node()
    reserved = analysis.campaign.config.reserved_nodes()
    buckets = {"soc12": [0.0, 0.0], "neighbor": [0.0, 0.0], "other": [0.0, 0.0]}
    for name, h in hours.items():
        if name in reserved:
            continue
        node_id = NodeId.parse(name)
        if node_id.soc == OVERHEATING_SOC:
            key = "soc12"
        elif node_id.near_overheating_slot:
            key = "neighbor"
        else:
            key = "other"
        buckets[key][0] += counts.get(name, 0)
        buckets[key][1] += h
    return {
        key: (errs / h * 1000.0 if h else 0.0)
        for key, (errs, h) in buckets.items()
    }


@register("futurework_stress")
def futurework_stress(analysis: StudyAnalysis) -> ExperimentResult:
    """Future work 1: power the overheating SoC-12 slots and watch them."""
    seed = analysis.campaign.config.seed
    base_config = quick_campaign_config(seed)
    horizon = base_config.n_days * 24.0
    # Stress configuration: SoC-12 never powered off (monitored all along).
    stress_topology = dataclasses.replace(
        base_config.topology,
        soc12_off_start_hours=horizon,
        soc12_off_end_hours=horizon + 1.0,
    )
    stress_config = dataclasses.replace(base_config, topology=stress_topology)

    baseline = StudyAnalysis(run_campaign(base_config))
    stressed = StudyAnalysis(run_campaign(stress_config))
    base_rates = _column_error_rates(baseline)
    stress_rates = _column_error_rates(stressed)

    base_hours = sum(
        h
        for name, h in baseline.campaign.monitored_hours_by_node().items()
        if NodeId.parse(name).soc == OVERHEATING_SOC
    )
    stress_hours = sum(
        h
        for name, h in stressed.campaign.monitored_hours_by_node().items()
        if NodeId.parse(name).soc == OVERHEATING_SOC
    )

    result = ExperimentResult(
        exp_id="futurework_stress",
        title="Future work: stress-testing the overheating SoC-12 slots",
        headers=("population", "baseline err/1k node-h", "stressed err/1k node-h"),
        rows=[
            ("SoC-12 slots", round(base_rates["soc12"], 3), round(stress_rates["soc12"], 3)),
            ("their neighbours", round(base_rates["neighbor"], 3), round(stress_rates["neighbor"], 3)),
            ("rest of machine", round(base_rates["other"], 3), round(stress_rates["other"], 3)),
        ],
    )
    result.notes.append(
        f"SoC-12 monitored node-hours: {base_hours:,.0f} baseline -> "
        f"{stress_hours:,.0f} stressed (slots kept powered)"
    )
    result.notes.append(
        "the heat-damaged slots error at an order of magnitude above the "
        "fleet; keeping them powered multiplies the observable sample, "
        "which is exactly what the paper's stress test is after"
    )
    return result


def _swap_signature(frame: ErrorFrame, node: str) -> tuple[int, int]:
    """(error count, distinct patterns) for one node."""
    if node not in frame.node_names:
        return (0, 0)
    code = frame.node_names.index(node)
    sub = frame.select(frame.node_code == code)
    patterns = {
        (int(e), int(a)) for e, a in zip(sub.expected, sub.actual)
    }
    return (len(sub), len(patterns))


@register("futurework_swap")
def futurework_swap(analysis: StudyAnalysis) -> ExperimentResult:
    """Future work 2: swap the faulty component into a healthy node.

    Mid-study, the degrading node's suspect component moves to a healthy
    partner (and vice versa).  If the corruption signature follows the
    component, the root cause is the component; if it stayed with the
    slot, it would be the socket/cooling.  The simulation implements the
    component-is-faulty ground truth; the analysis recovers it.
    """
    seed = analysis.campaign.config.seed
    config = quick_campaign_config(seed)
    campaign = run_campaign(config)
    deg = config.degrading.node
    partner = "50-08"  # a healthy slot
    swap_day = (config.degrading.onset_day + config.degrading.ramp_end_day) // 2
    swap_hours = swap_day * 24.0

    # The swap: every observation the faulty component produces after the
    # swap instant is observed on the partner node instead.
    swapped = []
    for record in campaign.archive.error_records():
        node = record.node
        if record.timestamp_hours >= swap_hours:
            if node == deg:
                node = partner
            elif node == partner:
                node = deg
        if node == record.node:
            swapped.append(record)
        else:
            swapped.append(
                ErrorRecord(
                    timestamp_hours=record.timestamp_hours,
                    node=node,
                    virtual_address=record.virtual_address,
                    physical_page=record.physical_page,
                    expected=record.expected,
                    actual=record.actual,
                    temperature_c=record.temperature_c,
                    repeat_count=record.repeat_count,
                )
            )
    frame = ErrorFrame.from_records(swapped)
    extraction = extract(frame)
    ext_frame = extraction.frame()

    before = ext_frame.select(ext_frame.time_hours < swap_hours)
    after = ext_frame.select(ext_frame.time_hours >= swap_hours)
    rows = []
    for label, sub in (("before swap", before), ("after swap", after)):
        deg_count, deg_patterns = _swap_signature(sub, deg)
        partner_count, partner_patterns = _swap_signature(sub, partner)
        rows.append((label, deg_count, deg_patterns, partner_count, partner_patterns))

    forensics = spatial.node_forensics(extraction.errors, partner)
    result = ExperimentResult(
        exp_id="futurework_swap",
        title="Future work: component swap between faulty and healthy node",
        headers=(
            "period",
            f"{deg} errors",
            f"{deg} patterns",
            f"{partner} errors",
            f"{partner} patterns",
        ),
        rows=rows,
    )
    result.notes.append(
        f"after the swap the corruption signature appears on {partner} "
        f"(diagnosed '{forensics.likely_cause}') and {deg} goes quiet: "
        "the component, not the slot, is the root cause"
    )
    return result
