"""The reproduction certificate: every paper claim checked in one pass.

``repro verify`` evaluates the quantitative claims of the paper against
the current campaign and prints PASS/FAIL per claim — the quickest way
to confirm an environment (or a code change) still reproduces the study.
Each claim is a named predicate over the shared analysis; tolerances
follow EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..analysis import multibit, spatial, temporal
from ..analysis.report import StudyAnalysis
from ..faultinjection.catalogue import TABLE_I
from ..resilience import table2


@dataclass(frozen=True)
class Claim:
    """One verifiable paper statement."""

    claim_id: str
    text: str
    check: Callable[[StudyAnalysis], bool]


def _claims() -> list[Claim]:
    return [
        Claim(
            "raw-lines",
            ">25 million raw error log lines",
            lambda a: a.extraction.n_raw_lines > 25_000_000,
        ),
        Claim(
            "dominant-node",
            "one faulty node produced >98% of raw lines and is removed",
            lambda a: a.extraction.removed_node is not None
            and a.extraction.removed_node_raw_lines / a.extraction.n_raw_lines > 0.98,
        ),
        Claim(
            "independent-errors",
            ">55,000 independent memory errors",
            lambda a: a.extraction.n_errors > 55_000,
        ),
        Claim(
            "coverage",
            "~4.2M node-hours and ~12,135 TB-hours scanned",
            lambda a: abs(a.campaign.total_node_hours() - 4.2e6) / 4.2e6 < 0.05
            and abs(a.campaign.total_terabyte_hours() - 12_135) / 12_135 < 0.05,
        ),
        Claim(
            "table1",
            "all 18 Table I patterns with exact occurrence counts",
            lambda a: {
                (r.expected, r.corrupted): r.occurrences
                for r in multibit.reconstruct_table1(a.errors)
            }
            == {(p.expected, p.corrupted): p.occurrences for p in TABLE_I},
        ),
        Claim(
            "multibit-split",
            "85 multi-bit faults: 76 double-bit, 9 beyond",
            lambda a: sum(1 for e in a.errors if e.is_multibit) == 85
            and sum(1 for e in a.errors if e.n_bits == 2) == 76,
        ),
        Claim(
            "flip-direction",
            "~90% of corrupted bits flip 1->0",
            lambda a: 0.85
            < multibit.flip_direction_stats(a.errors).one_to_zero_fraction
            < 0.95,
        ),
        Claim(
            "bit-distance",
            "mean corrupted-bit distance ~3, max 11",
            lambda a: (
                lambda d: abs(d.mean_distance - 3.0) < 0.4 and d.max_distance == 11
            )(multibit.bit_distance_stats(a.errors, weighted_by_occurrence=True)),
        ),
        Claim(
            "simultaneity",
            ">26,000 simultaneous corruptions, max 36 bits per event",
            lambda a: a.sim_stats.n_simultaneous_corruptions > 26_000
            and a.sim_stats.max_bits_per_event == 36,
        ),
        Claim(
            "companions",
            "44+ double+single, 2 triple+single, 1 double+double groups",
            lambda a: a.sim_stats.doubles_with_single >= 44
            and a.sim_stats.triples_with_single == 2
            and a.sim_stats.double_double_groups >= 1,
        ),
        Claim(
            "concentration",
            ">99.9% of errors in <1% of the nodes",
            lambda a: (
                lambda c: c.top_fraction >= 0.999 and c.node_fraction < 0.01
            )(
                spatial.concentration_stats(
                    a.errors_by_node, a.campaign.registry.n_scanned
                )
            ),
        ),
        Claim(
            "hot-node",
            "node 02-04: >50,000 errors, >11,000 addresses, ramp to >1000/day",
            lambda a: a.errors_by_node.get("02-04", 0) > 50_000
            and spatial.node_forensics(a.errors, "02-04").n_distinct_addresses
            > 11_000,
        ),
        Claim(
            "weak-bits",
            "nodes 04-05 and 58-02: every error identical (one weak bit)",
            lambda a: all(
                spatial.node_forensics(a.errors, n).all_identical
                for n in ("04-05", "58-02")
            ),
        ),
        Claim(
            "diurnal",
            "multi-bit errors ~2x during daytime with a midday peak",
            lambda a: (
                lambda dn: 1.5 < dn.day_night_ratio < 3.5 and 9 <= dn.peak_hour <= 15
            )(temporal.day_night_stats(temporal.hourly_multibit(a.frame))),
        ),
        Claim(
            "single-bit-flat",
            "single-bit errors homogeneous over the day",
            lambda a: (
                lambda s: float(np.std(s) / np.mean(s)) < 0.5
            )(temporal.hourly_histogram(a.frame)[1]),
        ),
        Claim(
            "regimes",
            "~77 degraded days; MTBF ~167h normal vs ~0.39h degraded",
            lambda a: 60 <= a.regimes.n_degraded <= 100
            and abs(a.regimes.mtbf_normal_hours - 167) / 167 < 0.15
            and abs(a.regimes.mtbf_degraded_hours - 0.39) < 0.2,
        ),
        Claim(
            "undetectable",
            "7 isolated >3-bit faults in 5 quiet nodes, 4 single-error hosts",
            lambda a: (
                lambda u: len(u) == 7
                and len({e.node for e in u}) == 5
                and sum(1 for e in u if a.errors_by_node[e.node] == 1) == 4
            )([e for e in a.errors if e.n_bits > 3]),
        ),
        Claim(
            "pearson",
            "weak anti-correlation between scanning volume and errors",
            lambda a: -0.3 < a.pearson.r < -0.05 and a.pearson.p_value < 0.05,
        ),
        Claim(
            "quarantine",
            "30-day quarantine: errors cut >30x at <0.1% availability loss",
            lambda a: (
                lambda rows: rows[-1].n_errors < rows[0].n_errors / 30
                and rows[-1].availability_loss < 0.001
            )(table2(a.frame, a.campaign.study_hours)),
        ),
    ]


@dataclass(frozen=True)
class VerificationResult:
    claim: Claim
    passed: bool


def verify(analysis: StudyAnalysis) -> list[VerificationResult]:
    """Evaluate every claim; exceptions count as failures."""
    results = []
    for claim in _claims():
        try:
            passed = bool(claim.check(analysis))
        except Exception:
            passed = False
        results.append(VerificationResult(claim=claim, passed=passed))
    return results


def render(results: list[VerificationResult]) -> str:
    lines = []
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        lines.append(f"[{mark}] {r.claim.claim_id:<20} {r.claim.text}")
    n_pass = sum(1 for r in results if r.passed)
    lines.append(f"\n{n_pass}/{len(results)} paper claims reproduced")
    return "\n".join(lines)
