"""Table I and Figs 4, 5, 6: multi-bit structure and diurnal behaviour."""

from __future__ import annotations

import numpy as np

from ..analysis import multibit, simultaneity, temporal
from ..analysis.report import StudyAnalysis
from ..core import bitops
from ..faultinjection.catalogue import TABLE_I
from .base import ExperimentResult, register


@register("table1")
def table1_multibit(analysis: StudyAnalysis) -> ExperimentResult:
    """Table I: every per-word multi-bit corruption pattern."""
    rows_measured = multibit.reconstruct_table1(analysis.errors)
    paper = {
        (p.expected, p.corrupted): p for p in TABLE_I
    }
    rows = []
    matched = 0
    for r in rows_measured:
        key = (r.expected, r.corrupted)
        expected_occ = paper[key].occurrences if key in paper else "-"
        if key in paper and paper[key].occurrences == r.occurrences:
            matched += 1
        rows.append(
            (
                r.n_bits,
                bitops.format_word(r.expected),
                bitops.format_word(r.corrupted),
                r.occurrences,
                expected_occ,
                "Yes" if r.consecutive else "No",
            )
        )
    dist = multibit.bit_distance_stats(analysis.errors, weighted_by_occurrence=True)
    flips = multibit.flip_direction_stats(analysis.errors)
    result = ExperimentResult(
        exp_id="table1",
        title="Multi-bit corruptions affecting the prototype",
        headers=("bits", "expected", "corrupted", "occurrences", "paper occ", "consecutive"),
        rows=rows,
    )
    result.notes.append(
        f"{matched}/{len(TABLE_I)} patterns match the paper's occurrence counts exactly"
    )
    result.notes.append(
        f"non-consecutive multi-bit fraction: "
        f"{multibit.multibit_nonconsecutive_fraction(analysis.errors):.1%} "
        "(paper: 'the majority')"
    )
    result.notes.append(
        f"mean/max corrupted-bit distance: {dist.mean_distance:.2f}/{dist.max_distance} "
        "(paper: 3/11)"
    )
    result.notes.append(
        f"1->0 flips: {flips.one_to_zero_fraction:.1%} (paper: ~90%)"
    )
    result.notes.append(
        f"LSB-half share of multi-bit corrupted bits: "
        f"{multibit.lsb_fraction(analysis.errors):.1%} "
        "(paper: majority in least significant bits)"
    )
    return result


@register("fig04")
def fig04_simultaneous(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 4: per-word vs per-node multi-bit error counts."""
    data = simultaneity.fig4_data(analysis.errors, analysis.groups)
    rows = data.series(max_bits=12)
    sim = analysis.sim_stats
    result = ExperimentResult(
        exp_id="fig04",
        title="Simultaneous memory errors vs multi-bit errors",
        headers=("bits corrupted", "per memory word", "per node"),
        rows=rows,
    )
    result.notes.append(
        f"simultaneous corruptions: {sim.n_simultaneous_corruptions:,} "
        "(paper: >26,000, >99.9% multiple single-bit)"
    )
    result.notes.append(
        f"double+single groups: {sim.doubles_with_single} (paper 44); "
        f"triple+single: {sim.triples_with_single} (paper 2); "
        f"double+double: {sim.double_double_groups} (paper 1); "
        f"max bits in one event: {sim.max_bits_per_event} (paper 36)"
    )
    result.notes.append(
        "paper: per-node multi-bit orders of magnitude above per-word; "
        "per-node single-bit below per-word single-bit (grouping moves "
        "singles into per-node multi-bit, total constant)"
    )
    return result


@register("fig05")
def fig05_hourly(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 5: errors per hour of day for different bit counts."""
    hist = temporal.hourly_histogram(analysis.frame)
    buckets = sorted(hist)
    rows = []
    for hour in range(24):
        rows.append(tuple([hour] + [int(hist[b][hour]) for b in buckets]))
    single = hist.get(1, np.zeros(24))
    cv = float(np.std(single) / np.mean(single)) if single.sum() else 0.0
    result = ExperimentResult(
        exp_id="fig05",
        title="Errors per hour of day by corrupted-bit count",
        headers=tuple(["hour"] + [f"{b}-bit" if b < 6 else "6+" for b in buckets]),
        rows=rows,
    )
    result.notes.append(
        f"single-bit hourly coefficient of variation: {cv:.2f} "
        "(paper: 'rather homogeneous distribution through the day')"
    )
    return result


@register("fig06")
def fig06_hourly_multibit(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 6: multi-bit errors per hour of day (noon bell)."""
    hourly = temporal.hourly_multibit(analysis.frame)
    dn = temporal.day_night_stats(hourly)
    rows = [(hour, int(hourly[hour])) for hour in range(24)]
    result = ExperimentResult(
        exp_id="fig06",
        title="Multi-bit errors per hour of day",
        headers=("hour", "multi-bit errors"),
        rows=rows,
    )
    result.notes.append(
        f"day (7-18h) vs night: {dn.day_count} vs {dn.night_count} "
        f"(ratio {dn.day_night_ratio:.2f}; paper: ~2x)"
    )
    result.notes.append(
        f"peak hour: {dn.peak_hour}h (paper: highest point at noon)"
    )
    return result
