"""Sec III-D and Sec III-G: undetectable errors and the Pearson check."""

from __future__ import annotations

from ..analysis import spatial
from ..analysis.report import StudyAnalysis
from ..cluster.topology import NodeId
from ..core import bitops, timeutils
from ..ecc import SecdedOutcome, classify_word
from .base import ExperimentResult, register


@register("sec3d_undetectable")
def sec3d_undetectable(analysis: StudyAnalysis) -> ExperimentResult:
    """Sec III-D: the isolated >3-bit (SECDED-escaping) faults."""
    undetectable = [e for e in analysis.errors if e.n_bits > 3]
    counts = analysis.errors_by_node
    rows = []
    for e in sorted(undetectable, key=lambda e: e.first_seen_hours):
        node_id = NodeId.parse(e.node)
        secded = classify_word(e.expected, e.actual)
        rows.append(
            (
                str(timeutils.date_of(e.first_seen_hours)),
                e.node,
                e.n_bits,
                bitops.format_word(e.expected),
                bitops.format_word(e.actual),
                "yes" if node_id.near_overheating_slot else "no",
                counts.get(e.node, 0),
                "no" if e.temperature_c is None else f"{e.temperature_c:.0f}C",
                secded.value,
            )
        )
    hosts = {e.node for e in undetectable}
    lonely = sum(1 for e in undetectable if counts.get(e.node, 0) == 1)
    near = sum(1 for h in hosts if NodeId.parse(h).near_overheating_slot)
    sdc = sum(
        1
        for e in undetectable
        if classify_word(e.expected, e.actual) is SecdedOutcome.SDC
    )
    result = ExperimentResult(
        exp_id="sec3d_undetectable",
        title="Undetectable (>3-bit) errors: isolation analysis",
        headers=(
            "date",
            "node",
            "bits",
            "expected",
            "corrupted",
            "near SoC-12",
            "node's total errors",
            "temp logged",
            "SECDED outcome",
        ),
        rows=rows,
    )
    result.notes.append(
        f"{len(undetectable)} faults in {len(hosts)} nodes (paper: 7 in 5)"
    )
    result.notes.append(
        f"faults whose host had only that one error: {lonely} (paper: 4)"
    )
    result.notes.append(
        f"hosts near the overheating SoC-12 slots: {near} (paper: 4)"
    )
    result.notes.append(
        f"faults escaping SECDED as silent corruption when replayed "
        f"through the honest codec: {sdc} of {len(undetectable)}"
    )
    return result


@register("sec1_exascale_projection")
def sec1_exascale_projection(analysis: StudyAnalysis) -> ExperimentResult:
    """Sec I/VI: project the measured rates to extreme-scale machines."""
    from ..analysis.projection import (
        measured_rates,
        paper_processor_example,
        project,
    )
    from ..ecc import SecdedOutcome, classify_bulk
    from ..resilience import table2

    frame = analysis.frame.exclude_nodes(
        [analysis.campaign.config.degrading.node]
    )
    outcomes = classify_bulk(frame.expected, frame.actual)
    n_detected = int(sum(1 for o in outcomes if o is SecdedOutcome.DETECTED))
    q30 = table2(analysis.frame, analysis.campaign.study_hours)[-1]
    rates = measured_rates(
        n_errors_raw=len(frame),
        n_errors_quarantined=q30.n_errors,
        n_detected_under_ecc=n_detected,
        total_node_hours=analysis.campaign.total_node_hours(),
    )
    rows = []
    for label, rate in rates.items():
        proj = project(rate, label)
        for p in proj.points:
            rows.append(
                (
                    label,
                    f"{p.n_nodes:,}",
                    f"{p.machine_mtbf_hours:,.2f} h",
                    f"{p.checkpoint_interval_hours:.2f} h",
                    f"{p.waste_fraction:.1%}",
                )
            )
    result = ExperimentResult(
        exp_id="sec1_exascale_projection",
        title="Measured rates projected to extreme-scale fleets",
        headers=("operating point", "nodes", "machine MTBF", "ckpt interval", "waste"),
        rows=rows,
    )
    result.notes.append(
        f"the paper's own Sec I example (25-year processors x 100k) gives "
        f"{paper_processor_example():.1f} h machine MTBF; the measured "
        "operating points show how far policy (quarantine) and protection "
        "(ECC) move that curve"
    )
    result.notes.append(
        "independence across nodes assumed, as in the paper's arithmetic; "
        "the measured spatio-temporal correlation makes the raw projection "
        "pessimistic and the quarantined one achievable"
    )
    return result


@register("sec2_beam_vs_field")
def sec2_beam_vs_field(analysis: StudyAnalysis) -> ExperimentResult:
    """Sec I/II argument: accelerated beam tests vs a year in the field.

    The beam measures the background physics correctly but knows nothing
    of degrading components, weak bits or burstiness — the populations
    that dominate the real field error rate.
    """
    from ..faultinjection.beam import (
        BeamTestConfig,
        compare_with_field,
        run_beam_test,
    )

    beam = run_beam_test(BeamTestConfig())
    reserved = analysis.campaign.config.reserved_nodes()
    background = sum(
        1
        for e in analysis.errors
        if e.node not in reserved and e.n_bits == 1
    )
    field_bit_hours = (
        analysis.campaign.total_terabyte_hours() * 1024 * 1024 * 8 * 1024 * 1024
    )
    cmp = compare_with_field(
        beam,
        background_errors=background,
        total_errors=analysis.extraction.n_errors,
        field_bit_hours=field_bit_hours,
    )
    result = ExperimentResult(
        exp_id="sec2_beam_vs_field",
        title="Accelerated beam test vs field measurement",
        headers=("quantity", "value"),
        rows=[
            ("beam upsets observed", beam.n_upsets),
            ("beam acceleration factor", f"{beam.acceleration:.0e}"),
            ("beam-predicted field rate (/bit-h)", f"{cmp.beam_predicted_rate:.2e}"),
            ("field background rate (/bit-h)", f"{cmp.field_background_rate:.2e}"),
            ("field TOTAL rate (/bit-h)", f"{cmp.field_total_rate:.2e}"),
            ("background / prediction", f"{cmp.background_ratio:.1f}x"),
            ("total / prediction", f"{cmp.total_underestimate:,.0f}x"),
        ],
    )
    result.notes.append(
        "paper Sec I: beam estimates 'are not exact as those accelerated "
        "soft error studies fail to consider factors such as the impact "
        "of temperature or neutron flux variation' — and, above all, the "
        "pathological populations: the beam nails the background physics "
        "(ratio ~1) but the real field rate is orders of magnitude higher"
    )
    return result


@register("sec3c_alignment")
def sec3c_alignment(analysis: StudyAnalysis) -> ExperimentResult:
    """Sec III-C hypothesis test: are simultaneous corruptions physically
    aligned (same bank/row) despite scattered logical addresses?"""
    from ..analysis import alignment as align

    groups = [g for g in analysis.groups if g.is_simultaneous]
    stats = align.alignment_stats(groups)
    spread = align.logical_spread(groups)
    result = ExperimentResult(
        exp_id="sec3c_alignment",
        title="Physical alignment of simultaneous corruptions",
        headers=("quantity", "value"),
        rows=[
            ("simultaneity groups analysed", stats.n_groups),
            (
                "groups confined to one physical column",
                f"{stats.fraction_same_column:.1%}",
            ),
            ("groups confined to one bank", f"{stats.fraction_same_bank:.1%}"),
            (
                "random-pairing baseline (same column)",
                f"{stats.baseline_same_column:.2%}",
            ),
            (
                "column-alignment enrichment",
                f"{stats.column_alignment_ratio:,.1f}x",
            ),
            ("median logical spread within a group", f"{spread/1e6:.0f} MB"),
        ],
    )
    result.notes.append(
        "paper: 'we suspect that the affected memory cells are in physical "
        "proximity or alignment (row, column, bank) however the memory "
        "controller maps them to different address words' — with the "
        "simulated controller's geometry the hypothesis is testable, and "
        "holds: same-column alignment is strongly enriched over the "
        "random-pairing baseline while the same groups span gigabytes of "
        "logical address space."
    )
    return result


@register("sec3g_pearson")
def sec3g_pearson(analysis: StudyAnalysis) -> ExperimentResult:
    """Sec III-G: scanning volume does not induce the observed errors."""
    p = analysis.pearson
    result = ExperimentResult(
        exp_id="sec3g_pearson",
        title="Pearson correlation: daily TB-hours scanned vs daily errors",
        headers=("quantity", "paper", "measured"),
        rows=[
            ("Pearson r", "-0.17966", f"{p.r:+.5f}"),
            ("p-value", "0.0002", f"{p.p_value:.2g}"),
            ("days", "~425", p.n),
            ("weak anti-correlation", "yes", "yes" if p.is_weak and p.r < 0 else "no"),
        ],
    )
    result.notes.append(
        "paper: 'the memory scanning methodology does not influence in "
        "any way the number of memory errors observed'"
    )
    return result


@register("whatif_ecc_campaign")
def whatif_ecc_campaign(analysis: StudyAnalysis) -> ExperimentResult:
    """What the same year looks like on a SECDED-protected machine.

    Every extracted fault is replayed through the honest (39,32) codec:
    corrected faults become invisible ECC-counter ticks, detected ones
    become machine-check crashes, escapes stay silent corruption.  This
    is the translation layer between this study's raw numbers and every
    prior ECC-counter-based field study the paper contrasts itself with.
    """
    from ..ecc import SecdedOutcome, classify_bulk

    frame = analysis.frame
    outcomes = classify_bulk(frame.expected, frame.actual)
    corrected = int(sum(1 for o in outcomes if o is SecdedOutcome.CORRECTED))
    detected = int(sum(1 for o in outcomes if o is SecdedOutcome.DETECTED))
    sdc = int(sum(1 for o in outcomes if o is SecdedOutcome.SDC))
    study_hours = analysis.campaign.study_hours
    rows = [
        ("ECC corrections (invisible to users)", corrected),
        ("machine-check crashes (detected uncorrectable)", detected),
        ("silent corruptions escaping ECC", sdc),
        (
            "user-perceived crash MTBF",
            f"{study_hours / detected:,.1f} h" if detected else "inf",
        ),
        (
            "silent-corruption interval",
            f"{study_hours / sdc / 24:,.1f} days" if sdc else "inf",
        ),
    ]
    result = ExperimentResult(
        exp_id="whatif_ecc_campaign",
        title="The same year on a SECDED-protected machine",
        headers=("quantity", "value"),
        rows=rows,
    )
    result.notes.append(
        "this is what an ECC-counter-based study (the related work the "
        "paper contrasts itself with) would have seen: tens of thousands "
        "of corrections, a handful of crashes — and zero visibility into "
        "the simultaneity, bit-structure and SDC analyses this study "
        "could do on the raw stream"
    )
    return result


@register("headline")
def headline(analysis: StudyAnalysis) -> ExperimentResult:
    """Abstract/Sec III-B headline statistics, paper vs measured."""
    report = analysis.report()
    result = ExperimentResult(
        exp_id="headline",
        title="Headline statistics",
        headers=("metric", "paper", "measured"),
        rows=list(report.rows()),
    )
    conc = spatial.concentration_stats(
        analysis.errors_by_node, analysis.campaign.registry.n_scanned
    )
    result.notes.append(
        f"{conc.nodes_for_999} nodes ({conc.node_fraction:.2%} of the "
        f"machine) carry {conc.top_fraction:.2%} of all errors "
        "(paper: >99.9% of errors in <1% of nodes)"
    )
    return result
