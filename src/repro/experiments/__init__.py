"""Per-figure/table experiment modules and the shared runner."""

from .base import REGISTRY, ExperimentResult, register, render_heatmap
from .runner import (
    EXPERIMENT_ORDER,
    clear_analysis_memo,
    get_analysis,
    run_all,
    run_experiment,
)

__all__ = [
    "EXPERIMENT_ORDER",
    "ExperimentResult",
    "REGISTRY",
    "clear_analysis_memo",
    "get_analysis",
    "register",
    "render_heatmap",
    "run_all",
    "run_experiment",
]
