"""Figs 1, 2, 9: scanning-coverage figures."""

from __future__ import annotations

import numpy as np

from ..analysis import coverage
from ..analysis.report import StudyAnalysis
from ..cluster.topology import OVERHEATING_SOC, SHUTDOWN_BLADE
from .base import ExperimentResult, monthly_totals, register, render_heatmap


@register("fig01")
def fig01_hours_scanned(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 1: hours each node was scanned for memory errors."""
    campaign = analysis.campaign
    hours = campaign.monitored_hours_by_node()
    grid = coverage.hours_grid(campaign.registry, hours)
    values = np.array([h for h in hours.values() if h > 0])
    soc12 = grid[:, OVERHEATING_SOC - 1]
    other = np.delete(grid, OVERHEATING_SOC - 1, axis=1)
    result = ExperimentResult(
        exp_id="fig01",
        title="Hours each node was scanned for memory errors",
        headers=("quantity", "paper", "measured"),
        rows=[
            ("nodes scanned", "923", int((grid > 0).sum())),
            ("median node hours", "~5000", round(float(np.median(values)))),
            (
                "SoC-12 column median hours (depressed)",
                "low",
                round(float(np.median(soc12[soc12 > 0])) if (soc12 > 0).any() else 0),
            ),
            (
                "other columns median hours",
                "~5000",
                round(float(np.median(other[other > 0]))),
            ),
            (
                f"blade {SHUTDOWN_BLADE} median hours (shutdown period)",
                "low",
                round(float(np.median(grid[SHUTDOWN_BLADE - 1][grid[SHUTDOWN_BLADE - 1] > 0]))),
            ),
            (
                "login slots with zero hours",
                "9",
                int((grid[:9, 0] == 0).sum()),
            ),
        ],
    )
    result.notes.append("heat map (rows=blades, cols=SoCs):")
    result.notes.append(render_heatmap(grid))
    return result


@register("fig02")
def fig02_tbh_per_node(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 2: amount of memory analyzed per node (terabyte-hours)."""
    campaign = analysis.campaign
    tbh = campaign.terabyte_hours_by_node()
    grid = coverage.tbh_grid(campaign.registry, tbh)
    values = np.array([v for v in tbh.values() if v > 0])
    hours = np.array(
        [campaign.monitored_hours_by_node()[n] for n in tbh], dtype=np.float64
    )
    tbh_arr = np.array(list(tbh.values()))
    active = hours > 0
    corr = float(np.corrcoef(hours[active], tbh_arr[active])[0, 1])
    result = ExperimentResult(
        exp_id="fig02",
        title="Memory analyzed per node (TB-hours)",
        headers=("quantity", "paper", "measured"),
        rows=[
            ("total TB-hours", "12,135", round(float(values.sum()))),
            ("median node TB-hours", "~15", round(float(np.median(values)), 1)),
            (
                "correlation with Fig 1 hours",
                "strong",
                f"r={corr:.3f}",
            ),
        ],
    )
    result.notes.append(render_heatmap(grid))
    return result


@register("fig09")
def fig09_daily_tbh(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 9: total memory scanned per day (TB-hours)."""
    daily = analysis.daily_tbh
    rows = [(month, round(total)) for month, total in monthly_totals(daily)]
    august = sum(t for m, t in rows if m in ("2015-08", "2015-09", "2015-12"))
    spring = sum(t for m, t in rows if m in ("2015-04", "2015-05", "2015-06", "2015-07"))
    result = ExperimentResult(
        exp_id="fig09",
        title="Memory scanned per day (TB-hours), monthly totals",
        headers=("month", "TB-hours"),
        rows=rows,
    )
    result.notes.append(
        "paper: intense scanning Aug/Sep/Dec (vacations), lower Apr-Jul; "
        f"measured vacation-month mean {august/3:.0f} vs spring-month mean {spring/4:.0f}"
    )
    return result
