"""Ablation experiments for the design choices DESIGN.md calls out.

These do not reproduce paper artifacts directly; they test the *model
mechanisms* behind the paper's explanations:

* the DRAM bit swizzle is what turns adjacent physical-line disturbances
  into the non-adjacent logical flips of Table I;
* chipkill-class ECC handles the observed population far better than
  SECDED (the related-work claim the paper cites);
* quarantining on first abnormal behaviour beats waiting for a long
  failure history (the paper's core Sec IV argument).
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import StudyAnalysis
from ..core import bitops
from ..dram import BitSwizzle, TransientFlip, make_device
from ..ecc import compare_schemes
from ..resilience.quarantine import QuarantineSimulator
from .base import ExperimentResult, register


def _strike_distance_profile(swizzle: BitSwizzle, n: int = 400, seed: int = 7):
    """Inject adjacent-physical-line strikes; measure logical adjacency."""
    rng = np.random.default_rng(seed)
    device = make_device(1, swizzle=swizzle)
    adjacent = 0
    gaps: list[int] = []
    for _ in range(n):
        device.fill(0xFFFFFFFF)
        word = int(rng.integers(0, device.n_words))
        line = int(rng.integers(0, 31))
        device.apply(TransientFlip(word, 0b11 << line))  # two adjacent lines
        mask = 0xFFFFFFFF ^ device.read_word(word)
        if bitops.is_consecutive_mask(mask):
            adjacent += 1
        gaps.extend(bitops.adjacent_gaps(mask).tolist())
    gaps_arr = np.array(gaps, dtype=np.float64)
    return adjacent / n, float(gaps_arr.mean()), int(gaps_arr.max())


@register("ablation_swizzle")
def ablation_swizzle(analysis: StudyAnalysis) -> ExperimentResult:
    """Swizzle on/off -> adjacency of observed multi-bit flips."""
    rows = []
    for label, swizzle in [
        ("identity (no scrambling)", BitSwizzle.identity()),
        ("interleaved stride 3 (default)", BitSwizzle.interleaved(3)),
        ("interleaved stride 5", BitSwizzle.interleaved(5)),
    ]:
        frac_adjacent, mean_gap, max_gap = _strike_distance_profile(swizzle)
        rows.append((label, f"{frac_adjacent:.1%}", round(mean_gap, 2), max_gap))
    result = ExperimentResult(
        exp_id="ablation_swizzle",
        title="Bit swizzle ablation: adjacent-line strikes -> logical flips",
        headers=("layout", "adjacent fraction", "mean gap", "max gap"),
        rows=rows,
    )
    result.notes.append(
        "paper: most multi-bit errors non-adjacent, 'could be due to DRAM "
        "layout spreading the adjacent bits of the word'; without the "
        "swizzle every adjacent-line strike stays adjacent"
    )
    return result


@register("ablation_ecc")
def ablation_ecc(analysis: StudyAnalysis) -> ExperimentResult:
    """SECDED vs chipkill vs unprotected over the observed errors."""
    multibit = [e for e in analysis.errors if e.is_multibit]
    singles = [e for e in analysis.errors if not e.is_multibit][:2000]
    population = multibit + singles
    schemes = compare_schemes(population)
    rows = []
    for name, summary in schemes.items():
        rows.append(
            (
                name,
                summary.corrected,
                summary.detected,
                summary.sdc,
                f"{summary.sdc_fraction:.2%}",
            )
        )
    sdc_secded = schemes["secded"].sdc
    sdc_ck = schemes["chipkill"].sdc
    result = ExperimentResult(
        exp_id="ablation_ecc",
        title="Protection-scheme ablation over the observed error population",
        headers=("scheme", "corrected", "detected", "sdc", "sdc fraction"),
        rows=rows,
    )
    result.notes.append(
        f"population: all {len(multibit)} multi-bit faults + "
        f"{len(singles)} sampled single-bit faults"
    )
    result.notes.append(
        f"SDC count SECDED={sdc_secded} vs chipkill={sdc_ck} "
        "(related work: chipkill ~42x more reliable in the field)"
    )
    return result


@register("ablation_ecc_overhead")
def ablation_ecc_overhead(analysis: StudyAnalysis) -> ExperimentResult:
    """Storage-overhead vs SDC frontier across protection schemes."""
    from ..ecc.overhead import dominating_schemes, tradeoff_table

    multibit = [e for e in analysis.errors if e.is_multibit]
    singles = [e for e in analysis.errors if not e.is_multibit][:1000]
    rows_data = tradeoff_table(multibit + singles)
    frontier = {r.scheme for r in dominating_schemes(rows_data)}
    rows = [
        (
            r.scheme,
            f"{r.overhead:.1%}",
            r.corrected,
            r.detected,
            r.sdc,
            "yes" if r.scheme in frontier else "no",
        )
        for r in rows_data
    ]
    result = ExperimentResult(
        exp_id="ablation_ecc_overhead",
        title="Protection cost/reliability frontier over the observed errors",
        headers=("scheme", "overhead", "corrected", "detected", "sdc", "Pareto"),
        rows=rows,
    )
    result.notes.append(
        "overhead = check bits per data bit; SDC measured by honest codec "
        "replay of the study's error population (85 multi-bit + 1000 "
        "sampled single-bit faults)"
    )
    return result


@register("ablation_seed_stability")
def ablation_seed_stability(analysis: StudyAnalysis) -> ExperimentResult:
    """Do the emergent results survive different random seeds?

    The Table I catalogue is calibrated-by-construction, but most of the
    paper's statistics *emerge* from the generative models; this ablation
    reruns the campaign under fresh seeds and checks the emergent claims
    each time.  A reproduction that only worked at one seed would be
    curve-fitting, not modeling.
    """
    from ..analysis.report import StudyAnalysis as _SA
    from ..analysis import temporal
    from ..faultinjection import paper_campaign_config, run_campaign

    def emergent_checks(a: StudyAnalysis) -> dict[str, bool]:
        report = a.report()
        dn = temporal.day_night_stats(temporal.hourly_multibit(a.frame))
        return {
            "errors>55k": report.n_independent_errors > 55_000,
            "coverage±5%": abs(report.total_terabyte_hours - 12_135) / 12_135 < 0.05,
            "1->0~90%": 0.85 < report.one_to_zero_fraction < 0.95,
            "sim>26k": report.n_simultaneous_corruptions > 26_000,
            "regimes": 55 <= report.n_degraded_days <= 105,
            # Only 85 multi-bit events exist, so the day:night ratio has a
            # wide confidence interval seed to seed; the *direction* (more
            # during daytime) is the stable claim.
            "diurnal-direction": dn.day_night_ratio > 1.1,
            "pearson<0": report.pearson_r < 0,
        }

    base_seed = analysis.campaign.config.seed
    rows = []
    for seed in (base_seed, base_seed + 1, base_seed + 2):
        a = (
            analysis
            if seed == base_seed
            else _SA(run_campaign(paper_campaign_config(seed)))
        )
        checks = emergent_checks(a)
        rows.append(
            (
                seed,
                sum(checks.values()),
                len(checks),
                ", ".join(k for k, ok in checks.items() if not ok) or "-",
            )
        )
    result = ExperimentResult(
        exp_id="ablation_seed_stability",
        title="Seed stability of the emergent statistics",
        headers=("seed", "claims passing", "claims total", "failing"),
        rows=rows,
    )
    result.notes.append(
        "each row is a full fresh campaign; the emergent claims must hold "
        "without retuning (statistical fluctuation at the regime boundary "
        "is the only tolerated slack)"
    )
    return result


@register("ablation_quarantine_trigger")
def ablation_quarantine_trigger(analysis: StudyAnalysis) -> ExperimentResult:
    """Quarantine eagerness: first abnormal day vs long failure history."""
    frame = analysis.frame.exclude_nodes(
        [analysis.campaign.config.degrading.node]
    )
    study_hours = analysis.campaign.study_hours
    rows = []
    for label, threshold in [
        ("eager (>3 errors in 24h, paper)", 3),
        ("moderate (>10 errors in 24h)", 10),
        ("long history (>50 errors in 24h)", 50),
    ]:
        sim = QuarantineSimulator(trigger_threshold=threshold)
        outcome = sim.run(frame, quarantine_days=30.0, study_hours=study_hours)
        rows.append(
            (
                label,
                outcome.n_errors,
                round(outcome.node_days_in_quarantine),
                round(outcome.system_mtbf_hours, 1),
            )
        )
    result = ExperimentResult(
        exp_id="ablation_quarantine_trigger",
        title="Quarantine trigger ablation (30-day quarantine)",
        headers=("trigger", "errors", "node-days", "MTBF (h)"),
        rows=rows,
    )
    result.notes.append(
        "paper Sec IV: 'it is preferable to put the node in quarantine as "
        "soon as it shows abnormal behaviour, instead of waiting for it to "
        "create a long failure history'"
    )
    return result
