"""Figs 7 and 8: temperature at error time."""

from __future__ import annotations

from ..analysis import correlation
from ..analysis.report import StudyAnalysis
from .base import ExperimentResult, register


def _hist_rows(hist: correlation.TemperatureHistogram, buckets=True):
    rows = []
    edges = hist.bin_edges
    keys = sorted(hist.counts)
    total = hist.total()
    for i in range(edges.shape[0] - 1):
        if total[i] == 0:
            continue
        rows.append(
            tuple(
                [f"{edges[i]:.0f}-{edges[i+1]:.0f}C"]
                + [int(hist.counts[k][i]) for k in keys]
            )
        )
    headers = tuple(
        ["temperature"] + [f"{k}-bit" if k < 6 else "6+" for k in keys]
    )
    return headers, rows


@register("fig07")
def fig07_temperature(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 7: memory errors vs node temperature by bit count."""
    hist = correlation.temperature_histogram(analysis.frame)
    headers, rows = _hist_rows(hist)
    result = ExperimentResult(
        exp_id="fig07",
        title="Errors vs node temperature",
        headers=headers,
        rows=rows,
    )
    result.notes.append(
        f"errors in 30-40C: {hist.fraction_in_range(30, 40):.1%} "
        "(paper: 'most errors happen when the node has a temperature "
        "between 30C and 40C')"
    )
    result.notes.append(
        f"errors above 60C: {hist.fraction_in_range(60, 200):.2%} "
        "(paper: 'a small set of memory errors ... over 60C')"
    )
    result.notes.append(
        f"errors without temperature telemetry (pre-April 2015): "
        f"{hist.n_without_temperature:,}"
    )
    corr = correlation.temperature_correlation(analysis.frame)
    if corr is not None:
        result.notes.append(
            f"Pearson(temperature, bit count): {corr.r:+.3f} "
            "(paper: no high correlation observed with this methodology)"
        )
    return result


@register("fig08")
def fig08_temperature_multibit(analysis: StudyAnalysis) -> ExperimentResult:
    """Fig 8: multi-bit errors vs node temperature (all nominal)."""
    hist = correlation.temperature_histogram(analysis.frame, multibit_only=True)
    headers, rows = _hist_rows(hist)
    result = ExperimentResult(
        exp_id="fig08",
        title="Multi-bit errors vs node temperature",
        headers=headers,
        rows=rows,
    )
    result.notes.append(
        f"multi-bit errors above 50C: "
        f"{hist.fraction_in_range(50, 200):.1%} "
        "(paper: 'all multi-bit corruptions occur at nominal temperatures')"
    )
    result.notes.append(
        f"multi-bit errors without temperature (pre-April): "
        f"{hist.n_without_temperature}"
    )
    return result
