"""Experiment framework: results, registry, rendering.

Every paper figure/table is one registered experiment: a function from a
:class:`~repro.analysis.report.StudyAnalysis` to an
:class:`ExperimentResult` holding the same rows/series the paper reports,
renderable as text for the benchmark harness and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..analysis.report import StudyAnalysis


@dataclass
class ExperimentResult:
    """Rows/series regenerating one paper figure or table."""

    exp_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        widths = [len(h) for h in self.headers]
        str_rows = [[_fmt(v) for v in row] for row in self.rows]
        for row in str_rows:
            for i, cell in enumerate(row):
                if i < len(widths):
                    widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.exp_id}: {self.title}"]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in str_rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    if isinstance(value, (int, np.integer)):
        return f"{int(value):,}"
    return str(value)


ExperimentFn = Callable[[StudyAnalysis], ExperimentResult]

#: Global experiment registry: exp id -> runner.
REGISTRY: dict[str, ExperimentFn] = {}


def register(exp_id: str):
    """Decorator adding an experiment function to the registry."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        if exp_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id}")
        REGISTRY[exp_id] = fn
        return fn

    return wrap


def render_heatmap(grid: np.ndarray, log_scale: bool = False) -> str:
    """Coarse ASCII rendering of a 63x15 machine grid.

    One character per node: '.' for zero, then ascending intensity
    buckets — the textual cousin of the paper's heat-map figures.
    """
    palette = ".123456789#"
    g = np.asarray(grid, dtype=np.float64)
    out_lines = []
    positive = g[g > 0]
    if positive.size == 0:
        vmax = 1.0
        vmin = 0.0
    elif log_scale:
        g = np.where(g > 0, np.log10(g + 1.0), 0.0)
        vmax = float(g.max())
        vmin = 0.0
    else:
        vmax = float(positive.max())
        vmin = 0.0
    span = max(vmax - vmin, 1e-12)
    for row in g:
        chars = []
        for v in row:
            if v <= 0:
                chars.append(".")
            else:
                idx = 1 + int((v - vmin) / span * (len(palette) - 2))
                chars.append(palette[min(idx, len(palette) - 1)])
        out_lines.append("".join(chars))
    return "\n".join(out_lines)


def monthly_totals(daily: np.ndarray) -> list[tuple[str, float]]:
    """Aggregate a per-day series into per-month rows (study calendar)."""
    import datetime as _dt

    from ..core import timeutils

    daily = np.asarray(daily)
    totals: dict[str, float] = {}
    order: list[str] = []
    date = timeutils.STUDY_EPOCH.date()
    for day in range(daily.shape[0]):
        key = f"{date.year}-{date.month:02d}"
        if key not in totals:
            totals[key] = 0.0
            order.append(key)
        totals[key] += float(daily[day])
        date += _dt.timedelta(days=1)
    return [(k, totals[k]) for k in order]
