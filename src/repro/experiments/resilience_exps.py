"""Table II and Sec IV: quarantine, page retirement, checkpointing."""

from __future__ import annotations

import numpy as np

from ..analysis.report import StudyAnalysis
from ..resilience import (
    FailureAwareScheduler,
    PageRetirementSimulator,
    RegimePolicy,
    histories_from_counts,
    regime_policy,
    simulate_checkpointing,
    static_policy,
    sweep_trigger,
    table2,
)
from .base import ExperimentResult, register

#: Paper's Table II for side-by-side rendering.
_PAPER_TABLE2 = {
    0: (4779, 0, 2.1),
    5: (131, 90, 77.9),
    10: (95, 100, 107.4),
    15: (77, 135, 132.5),
    20: (67, 140, 152.2),
    25: (73, 150, 139.7),
    30: (65, 180, 156.9),
}


@register("table2")
def table2_quarantine(analysis: StudyAnalysis) -> ExperimentResult:
    """Table II: system MTBF for different quarantine periods."""
    outcomes = table2(
        analysis.frame,
        analysis.campaign.study_hours,
        exclude_node=analysis.campaign.config.degrading.node,
    )
    rows = []
    for o in outcomes:
        paper_err, paper_nd, paper_mtbf = _PAPER_TABLE2[int(o.quarantine_days)]
        rows.append(
            (
                int(o.quarantine_days),
                o.n_errors,
                paper_err,
                round(o.node_days_in_quarantine),
                paper_nd,
                round(o.system_mtbf_hours, 1),
                paper_mtbf,
            )
        )
    last = outcomes[-1]
    result = ExperimentResult(
        exp_id="table2",
        title="System MTBF for different quarantine periods",
        headers=(
            "quarantine (days)",
            "errors",
            "paper",
            "node-days",
            "paper",
            "MTBF (h)",
            "paper",
        ),
        rows=rows,
    )
    result.notes.append(
        f"availability loss at 30 days: {last.availability_loss:.3%} "
        "(paper: 'lower than 0.1% for the whole system')"
    )
    result.notes.append(
        f"MTBF improvement 0 -> 30 days: "
        f"{outcomes[-1].system_mtbf_hours / outcomes[0].system_mtbf_hours:.0f}x "
        "(paper: 'almost three orders of magnitude' counting error-rate "
        "reduction on degraded days)"
    )
    return result


@register("sec3i_prediction")
def sec3i_prediction(analysis: StudyAnalysis) -> ExperimentResult:
    """Sec III-I operationalized: online failure prediction from the
    spatio-temporal correlation of errors."""
    frame = analysis.frame
    reports = sweep_trigger(frame, triggers=[2, 3, 10, 30])
    rows = []
    for r in reports:
        rows.append(
            (
                f">{r.config.trigger_count} errors / 24h",
                r.n_alarms,
                f"{r.precision:.0%}",
                f"{r.coverage:.1%}",
            )
        )
    result = ExperimentResult(
        exp_id="sec3i_prediction",
        title="Online failure prediction (alarm = burst within 24h)",
        headers=("trigger", "alarms", "precision", "error coverage"),
        rows=rows,
    )
    result.notes.append(
        "paper: 'when a node starts having errors, many subsequent errors "
        "are observed in the following hours ... it is relatively simple "
        "to foresee future failures'; precision = alarms followed by a "
        ">=10-error storm, coverage = fraction of all errors arriving "
        "inside an active alarm"
    )
    return result


@register("ml_prediction")
def ml_prediction(analysis: StudyAnalysis) -> ExperimentResult:
    """Learned degradation prediction vs. the Sec III-I rule baseline.

    The rule rows re-run :func:`sweep_trigger` (the paper's "burst
    within 24h" alarm at several triggers) — the sweep that previously
    never reached experiment/bench JSON.  The ML row trains the
    :mod:`repro.ml` predictor on the first part of the study, calibrates
    its risk threshold under the static policy's capacity budget, and
    scores the held-out remainder; its quarantine scoreline lands in the
    notes for the head-to-head the benchmarks gate on.
    """
    from ..ml import compare_quarantine_policies

    frame = analysis.frame
    study = analysis.campaign.study_hours
    rows = []
    for r in sweep_trigger(frame, triggers=[2, 3, 10, 30]):
        rows.append(
            (
                f"rule: >{r.config.trigger_count} errors / 24h",
                r.n_alarms,
                f"{r.precision:.0%}",
                f"{r.coverage:.1%}",
            )
        )
    # Cap the reference grid so the experiment stays interactive on
    # long studies; the dedicated benchmark runs the fine grid.
    stride = max(24.0, study / 28.0)
    comparison = compare_quarantine_policies(
        frame, study_hours=study, stride_hours=stride
    )
    em = comparison.eval_metrics
    rows.append(
        (
            f"ML: logreg @ tau={min(comparison.threshold, 1.0):.2f}",
            comparison.predictive.n_orders,
            f"{em.get('precision', 0.0):.0%}",
            f"{em.get('recall', 0.0):.1%}",
        )
    )
    result = ExperimentResult(
        exp_id="ml_prediction",
        title="Degradation prediction: learned model vs. rule baseline",
        headers=("method", "alarms", "precision", "coverage/recall"),
        rows=rows,
    )
    result.notes.append(
        f"ML eval AUC {comparison.auc:.3f} over "
        f"{comparison.n_eval_samples} held-out node-days "
        f"(base rate {comparison.base_rate_eval:.2%}); rule rows report "
        "error coverage, the ML row reports degraded-node recall"
    )
    result.notes.append(
        f"quarantine head-to-head on [{comparison.split_hours:.0f}h, "
        f"{comparison.study_hours:.0f}h): predictive avoids "
        f"{comparison.errors_avoided_predictive} errors at "
        f"{comparison.capacity_cost_predictive:.0f} node-days vs static "
        f"{comparison.errors_avoided_static} at "
        f"{comparison.capacity_cost_static:.0f} "
        f"({'predictive wins' if comparison.predictive_wins else 'static holds'})"
    )
    return result


@register("sec4_checkpoint_sim")
def sec4_checkpoint_sim(analysis: StudyAnalysis) -> ExperimentResult:
    """Checkpoint policies replayed against the real failure trace.

    An application spanning the machine runs for the whole study; its
    failure instants are the extracted error times (permanently failing
    node excluded, as operators would have replaced it).  Policies:
    Daly-static at the normal-regime interval, oracle regime-adaptive,
    and a paranoid constant-short interval.
    """
    reg = analysis.regimes
    frame = analysis.frame.exclude_nodes(
        [analysis.campaign.config.degrading.node]
    )
    failures = np.sort(frame.time_hours)
    policy = RegimePolicy(
        checkpoint_cost_hours=0.05,
        mtbf_normal_hours=reg.mtbf_normal_hours,
        mtbf_degraded_hours=max(reg.mtbf_degraded_hours, 0.11),
    )
    work = analysis.campaign.study_hours * 0.60
    policies = [
        ("static Daly (normal regime)", static_policy(policy.interval_normal)),
        (
            "oracle regime-adaptive",
            regime_policy(
                reg.degraded_days, policy.interval_normal, policy.interval_degraded
            ),
        ),
        ("paranoid (degraded interval always)", static_policy(policy.interval_degraded)),
    ]
    rows = []
    results = {}
    for label, p in policies:
        sim = simulate_checkpointing(
            failures, work_hours=work, policy=p, checkpoint_cost_hours=0.05
        )
        results[label] = sim
        rows.append(
            (
                label,
                sim.n_checkpoints,
                sim.n_failures,
                round(sim.rework_hours, 1),
                f"{sim.waste_fraction:.2%}",
            )
        )
    result = ExperimentResult(
        exp_id="sec4_checkpoint_sim",
        title="Checkpoint policies on the real failure trace (event-driven)",
        headers=("policy", "checkpoints", "failures hit", "rework (h)", "waste"),
        rows=rows,
    )
    adaptive = results["oracle regime-adaptive"]
    static = results["static Daly (normal regime)"]
    result.notes.append(
        f"adapting the interval to the regime saves "
        f"{static.waste_fraction - adaptive.waste_fraction:+.2%} waste vs "
        "a static Daly interval (the Sec IV proposal, validated event-"
        "by-event rather than by the closed-form model)"
    )
    return result


@register("sec4_scrubbing")
def sec4_scrubbing(analysis: StudyAnalysis) -> ExperimentResult:
    """Scrubbing-period tuning: stop correctable faults accumulating.

    The weak-bit nodes hammer a single word thousands of times; with
    SECDED but no scrubbing, any two hits between rewrites pile up into
    an uncorrectable double.  Sweeping the scrub period over the study's
    error stream shows the exposure.
    """
    from ..resilience.scrubbing import optimal_scrub_period, scrub_sweep

    frame = analysis.frame
    periods = [0.5, 2.0, 12.0, 48.0, 24.0 * 14]
    rows = []
    for result in scrub_sweep(frame, periods):
        rows.append(
            (
                f"{result.scrub_period_hours:g} h",
                result.n_accumulations,
                f"{result.accumulation_fraction:.2%}",
                result.worst_word_hits,
            )
        )
    # Analytic recommendation for the healthy background population.
    bg_rate = analysis.campaign.config.background.rate_per_node_hour
    words = 805_306_368
    recommended = optimal_scrub_period(bg_rate / words, words)
    result = ExperimentResult(
        exp_id="sec4_scrubbing",
        title="Scrub-period sweep over the study's error stream",
        headers=("scrub period", "same-word accumulations", "fraction", "worst word hits"),
        rows=rows,
    )
    result.notes.append(
        "an accumulation = >=2 faults on one word between scrubs; SECDED "
        "would have faced an uncorrectable double there"
    )
    result.notes.append(
        f"analytic period keeping background accumulation under 1%/month "
        f"on a healthy 3 GB node: {recommended:,.0f} h (background faults "
        "are so rare that scrubbing exists for the weak/degrading cases)"
    )
    return result


@register("sec4_resilience")
def sec4_resilience(analysis: StudyAnalysis) -> ExperimentResult:
    """Sec IV quantified: page retirement + adaptive checkpointing +
    failure-aware placement."""
    retire = PageRetirementSimulator(threshold=2)
    per_node = retire.per_node(analysis.frame)
    rows = [
        (s.node, s.n_errors + s.n_avoided, s.n_pages_retired, f"{s.avoided_fraction:.1%}")
        for s in per_node[:5]
    ]
    reg = analysis.regimes
    policy = RegimePolicy(
        checkpoint_cost_hours=0.05,
        mtbf_normal_hours=reg.mtbf_normal_hours,
        mtbf_degraded_hours=max(reg.mtbf_degraded_hours, 0.11),
    )
    frac_degraded = reg.n_degraded / reg.n_days
    hist = histories_from_counts(
        analysis.errors_by_node, analysis.campaign.monitored_hours_by_node()
    )
    sched = FailureAwareScheduler(hist)
    comparison = sched.compare(job_nodes=256, job_hours=24.0, n_trials=400)
    result = ExperimentResult(
        exp_id="sec4_resilience",
        title="Resilience directions quantified (page retirement rows)",
        headers=("node", "errors", "pages retired", "avoided"),
        rows=rows,
    )
    result.notes.append(
        "paper: page retirement helps weak-bit nodes, not multi-region "
        "corruption; measured avoided fractions above show the split"
    )
    result.notes.append(
        f"adaptive checkpoint interval: {policy.interval_normal:.1f} h normal "
        f"-> {policy.interval_degraded:.2f} h degraded; waste "
        f"{policy.static_waste(frac_degraded):.1%} static vs "
        f"{policy.adaptive_waste(frac_degraded):.1%} adaptive"
    )
    result.notes.append(
        f"failure-aware placement (256 nodes x 24 h): P(fail) "
        f"{comparison.p_fail_random:.2%} random -> "
        f"{comparison.p_fail_aware:.2%} aware "
        f"({comparison.n_flagged_nodes} flagged nodes)"
    )
    return result
