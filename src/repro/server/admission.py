"""Admission control primitives: token buckets, per-client limiting.

Pure bookkeeping over a monotonic clock — no asyncio, no HTTP — so the
policies are unit-testable with a fake clock and reusable outside the
server.  The server consults these *before* a request touches the
semaphore or the thread pool: a shed request costs one dict lookup and
a float multiply, which is the entire point of shedding.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict


class TokenBucket:
    """Classic token bucket: ``rate_qps`` refill, ``burst`` capacity.

    ``try_acquire`` returns ``(admitted, retry_after_s)`` — when a
    request is rejected, ``retry_after_s`` is the exact time until the
    bucket holds enough tokens again, which the server surfaces as the
    HTTP ``Retry-After`` hint.
    """

    def __init__(self, rate_qps: float, burst: float, *, clock=time.monotonic):
        if rate_qps <= 0:
            raise ValueError("rate_qps must be > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_qps = float(rate_qps)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_qps)
        self._updated = now

    def try_acquire(self, cost: float = 1.0) -> tuple[bool, float]:
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= cost:
                self._tokens -= cost
                return True, 0.0
            return False, (cost - self._tokens) / self.rate_qps

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class ClientRateLimiter:
    """Per-client token buckets behind an LRU cap.

    Clients are identified by an opaque key (the server uses the
    ``X-Client-Id`` header, falling back to the peer address).  The LRU
    cap bounds memory against client-id churn: evicting an idle
    client's bucket merely grants it a fresh burst later, which is the
    benign failure mode.
    """

    def __init__(
        self,
        rate_qps: float,
        burst: float,
        *,
        max_clients: int = 1024,
        clock=time.monotonic,
    ):
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.rate_qps = float(rate_qps)
        self.burst = float(burst)
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected = 0

    def admit(self, client_key: str) -> tuple[bool, float]:
        with self._lock:
            bucket = self._buckets.get(client_key)
            if bucket is None:
                bucket = TokenBucket(self.rate_qps, self.burst, clock=self._clock)
                self._buckets[client_key] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client_key)
        ok, retry_after_s = bucket.try_acquire()
        with self._lock:
            if ok:
                self.admitted += 1
            else:
                self.rejected += 1
        return ok, retry_after_s

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "rate_qps": self.rate_qps,
                "burst": self.burst,
                "tracked_clients": len(self._buckets),
                "admitted": self.admitted,
                "rejected": self.rejected,
            }


def retry_after_header(seconds: float) -> str:
    """HTTP Retry-After wants whole seconds; round up, floor at 1."""
    return str(max(1, math.ceil(seconds)))
