"""Load generator for the telemetry serving tier.

Drives a running :class:`~repro.server.app.TelemetryServer` with
concurrent keep-alive clients and reports the latency distribution and
outcome counts the SLO gates consume (``benchmarks/bench_perf_server.py``
and the server chaos battery).  Stdlib ``http.client`` only — the
generator must not share any code with the server under test.

Latency percentiles are computed over *admitted* (HTTP 200) requests:
a shed request answers in microseconds and would flatter p99 if pooled
with real work.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np


@dataclass
class LoadReport:
    """What one load run observed, as the SLO gates consume it."""

    requests: int = 0
    statuses: dict[int, int] = field(default_factory=dict)
    ok_latencies_ms: list[float] = field(default_factory=list)
    degraded: int = 0
    stale: int = 0
    partial: int = 0
    unflagged_degraded: int = 0
    retry_after_present: int = 0
    retry_after_missing: int = 0
    transport_errors: int = 0
    elapsed_s: float = 0.0

    def count(self, status: int) -> int:
        return self.statuses.get(status, 0)

    @property
    def shed(self) -> int:
        return self.count(429) + self.count(503)

    def percentile_ms(self, q: float) -> float:
        if not self.ok_latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.ok_latencies_ms), q))

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "ok": self.count(200),
            "shed": self.shed,
            "degraded": self.degraded,
            "stale": self.stale,
            "partial": self.partial,
            "unflagged_degraded": self.unflagged_degraded,
            "transport_errors": self.transport_errors,
            "p50_ms": self.percentile_ms(50),
            "p99_ms": self.percentile_ms(99),
            "elapsed_s": self.elapsed_s,
            "qps": self.requests / self.elapsed_s if self.elapsed_s else 0.0,
        }


def _merge(total: LoadReport, part: LoadReport) -> None:
    total.requests += part.requests
    for status, n in part.statuses.items():
        total.statuses[status] = total.statuses.get(status, 0) + n
    total.ok_latencies_ms.extend(part.ok_latencies_ms)
    total.degraded += part.degraded
    total.stale += part.stale
    total.partial += part.partial
    total.unflagged_degraded += part.unflagged_degraded
    total.retry_after_present += part.retry_after_present
    total.retry_after_missing += part.retry_after_missing
    total.transport_errors += part.transport_errors


def run_load(
    host: str,
    port: int,
    plans: list[dict],
    *,
    clients: int = 4,
    requests_per_client: int = 25,
    timeout_s: float = 10.0,
    client_id_prefix: str = "loadgen",
    expect_fresh: bool = False,
) -> LoadReport:
    """Hammer ``POST /query`` from ``clients`` keep-alive connections.

    Each worker cycles through ``plans`` on one persistent connection,
    identifying itself via ``X-Client-Id`` so per-client rate limits
    bite deterministically.  ``expect_fresh`` tightens the honesty
    check: any 200 carrying no truthful ``degraded`` flag *while the
    body shows staleness markers* counts as ``unflagged_degraded`` —
    the chaos battery gates on this staying zero.
    """
    reports = [LoadReport() for _ in range(clients)]
    start = time.perf_counter()

    def worker(index: int) -> None:
        report = reports[index]
        conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
        headers = {
            "Content-Type": "application/json",
            "X-Client-Id": f"{client_id_prefix}-{index}",
        }
        try:
            for i in range(requests_per_client):
                body = json.dumps(plans[i % len(plans)]).encode("utf-8")
                t0 = time.perf_counter()
                try:
                    conn.request("POST", "/query", body=body, headers=headers)
                    response = conn.getresponse()
                    raw = response.read()
                except (http.client.HTTPException, ConnectionError, OSError):
                    report.transport_errors += 1
                    conn.close()
                    conn = http.client.HTTPConnection(
                        host, port, timeout=timeout_s
                    )
                    continue
                latency_ms = (time.perf_counter() - t0) * 1e3
                status = response.status
                report.requests += 1
                report.statuses[status] = report.statuses.get(status, 0) + 1
                if status in (429, 503):
                    if response.getheader("Retry-After"):
                        report.retry_after_present += 1
                    else:
                        report.retry_after_missing += 1
                if status != 200:
                    if response.getheader("Connection", "").lower() == "close":
                        conn.close()
                        conn = http.client.HTTPConnection(
                            host, port, timeout=timeout_s
                        )
                    continue
                report.ok_latencies_ms.append(latency_ms)
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError:
                    report.transport_errors += 1
                    continue
                degraded = bool(payload.get("degraded"))
                stale = "stale_age_s" in payload
                partial = bool(payload.get("partial"))
                if degraded:
                    report.degraded += 1
                if stale:
                    report.stale += 1
                if partial:
                    report.partial += 1
                if (stale or partial) and not degraded:
                    report.unflagged_degraded += 1
                if expect_fresh and degraded:
                    # Counted, not failed: the caller decides whether a
                    # degraded answer was legitimate for the window.
                    pass
        finally:
            conn.close()

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"loadgen-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = LoadReport()
    for report in reports:
        _merge(total, report)
    total.elapsed_s = time.perf_counter() - start
    return total
