"""Asyncio fleet telemetry server over the query engine.

Stdlib-only HTTP/1.1 + JSON: :class:`TelemetryServer` binds a
:class:`~repro.query.QueryEngine` to a socket and answers ``/query``
(POST a plan), ``/nodes/<id>/errors``, ``/health`` and ``/metrics``.
See ``docs/QUERY.md`` for the wire API.
"""

from .app import EndpointMetrics, ServerHandle, TelemetryServer, run_in_thread

__all__ = [
    "EndpointMetrics",
    "ServerHandle",
    "TelemetryServer",
    "run_in_thread",
]
