"""Asyncio fleet telemetry server over the query engine.

Stdlib-only HTTP/1.1 + JSON: :class:`TelemetryServer` binds a query
engine to a socket and answers ``/query`` (POST a plan),
``/nodes/<id>/errors``, ``/health`` and ``/metrics``.  The serving tier
is resilience-first: keep-alive with idle/request caps, per-client rate
limiting and queue-depth load shedding (:mod:`repro.server.admission`),
breaker-gated reads with stale-while-revalidate degradation
(:mod:`repro.query.resilient`), and optional scatter-gather fan-out
(:mod:`repro.query.scatter`).  See ``docs/QUERY.md`` for the wire API
and ``docs/ROBUSTNESS.md`` ("Serving under failure") for the failure
model.
"""

from .admission import ClientRateLimiter, TokenBucket, retry_after_header
from .app import EndpointMetrics, ServerHandle, TelemetryServer, run_in_thread
from .loadgen import LoadReport, run_load

__all__ = [
    "ClientRateLimiter",
    "EndpointMetrics",
    "LoadReport",
    "ServerHandle",
    "TelemetryServer",
    "TokenBucket",
    "retry_after_header",
    "run_in_thread",
    "run_load",
]
