"""The telemetry server: stdlib asyncio HTTP/1.1 in front of the engine.

Design constraints, in order:

* **No new dependencies.**  The HTTP layer is ~100 lines over
  ``asyncio.start_server``: request line, headers, Content-Length body,
  JSON out, ``Connection: close``.  No keep-alive, no chunked encoding
  — fleet dashboards poll, they do not stream.
* **Bounded concurrency.**  A semaphore admits at most
  ``max_concurrency`` requests into the dispatch stage; excess
  connections queue in the accept loop instead of piling onto the
  thread pool.  ``/metrics`` reports the in-flight peak so tests can
  prove the bound holds.
* **Timeouts everywhere.**  Header/body reads and query execution are
  wrapped in ``asyncio.wait_for``; a wedged client or a pathological
  plan gets 408/504, not a leaked task.
* **The event loop never touches NumPy.**  Query execution (and its
  shard I/O) runs in the default thread-pool executor; the loop only
  parses bytes and serializes JSON.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field

from ..core.errors import QueryPlanError, ReproError
from ..query.cache import QueryCache
from ..query.engine import QueryEngine
from ..query.plan import Predicate, Query
from ..query.source import as_source

#: Hard cap on request body size (a plan is small; 1 MiB is generous).
MAX_BODY_BYTES = 1 << 20
#: Timeout for reading the request head and body from a client.
CLIENT_READ_TIMEOUT_S = 10.0


@dataclass
class EndpointMetrics:
    """Latency/outcome counters for one endpoint."""

    requests: int = 0
    errors: int = 0
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0

    def observe(self, latency_s: float, ok: bool) -> None:
        self.requests += 1
        if not ok:
            self.errors += 1
        self.total_latency_s += latency_s
        self.max_latency_s = max(self.max_latency_s, latency_s)

    def to_dict(self) -> dict:
        mean = self.total_latency_s / self.requests if self.requests else 0.0
        return {
            "requests": self.requests,
            "errors": self.errors,
            "mean_latency_s": mean,
            "max_latency_s": self.max_latency_s,
        }


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 413: "Payload Too Large", 500: "Internal Server Error",
    504: "Gateway Timeout",
}


class TelemetryServer:
    """Serve query results for one archive over HTTP/JSON."""

    def __init__(
        self,
        target,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 8,
        request_timeout_s: float = 30.0,
        cache: QueryCache | None = None,
    ):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.engine = QueryEngine(as_source(target), cache=cache)
        self.host = host
        self.port = port  # 0 = ephemeral; replaced with the bound port
        self.max_concurrency = max_concurrency
        self.request_timeout_s = request_timeout_s
        self.metrics: dict[str, EndpointMetrics] = {}
        self.started_at: float | None = None
        self._server: asyncio.base_events.Server | None = None
        self._semaphore: asyncio.Semaphore | None = None
        self._in_flight = 0
        self._peak_in_flight = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=CLIENT_READ_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                await self._respond(writer, 408, {"error": "request read timed out"})
                return
            except _HttpError as exc:
                await self._respond(writer, exc.status, {"error": exc.message})
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return  # client went away / sent garbage mid-line

            endpoint = self._endpoint_name(method, path)
            metrics = self.metrics.setdefault(endpoint, EndpointMetrics())
            start = time.perf_counter()
            assert self._semaphore is not None
            async with self._semaphore:
                self._in_flight += 1
                self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
                try:
                    try:
                        status, payload = await asyncio.wait_for(
                            self._dispatch(method, path, body),
                            timeout=self.request_timeout_s,
                        )
                    except asyncio.TimeoutError:
                        status, payload = 504, {
                            "error": f"request exceeded {self.request_timeout_s}s"
                        }
                    except _HttpError as exc:
                        status, payload = exc.status, {"error": exc.message}
                    except QueryPlanError as exc:
                        status, payload = 400, {"error": str(exc)}
                    except ReproError as exc:
                        status, payload = 500, {"error": str(exc)}
                    except Exception as exc:  # noqa: BLE001 — last-resort 500
                        status, payload = 500, {
                            "error": f"{type(exc).__name__}: {exc}"
                        }
                finally:
                    self._in_flight -= 1
            metrics.observe(time.perf_counter() - start, ok=status < 400)
            await self._respond(writer, status, payload)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not request_line:
            raise ValueError("empty request")
        parts = request_line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise _HttpError(400, "bad Content-Length") from exc
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    async def _respond(self, writer, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client disconnected before the response landed

    # -- routing -----------------------------------------------------------

    @staticmethod
    def _endpoint_name(method: str, path: str) -> str:
        path = path.split("?", 1)[0]
        if path.startswith("/nodes/"):
            path = "/nodes/<id>/errors"
        return f"{method} {path}"

    async def _dispatch(self, method: str, path: str, body: bytes):
        path, _, query_string = path.partition("?")
        if path == "/health":
            self._require(method, "GET")
            return 200, self._health()
        if path == "/metrics":
            self._require(method, "GET")
            return 200, self._metrics()
        if path == "/query":
            self._require(method, "POST")
            return 200, await self._run_query(self._parse_plan(body))
        if path.startswith("/nodes/") and path.endswith("/errors"):
            self._require(method, "GET")
            node = path[len("/nodes/"):-len("/errors")]
            if not node or "/" in node:
                raise _HttpError(404, f"no such path: {path}")
            return 200, await self._node_errors(node, query_string)
        raise _HttpError(404, f"no such path: {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    @staticmethod
    def _parse_plan(body: bytes) -> Query:
        try:
            spec = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        return Query.from_dict(spec)

    # -- endpoints ---------------------------------------------------------

    def _health(self) -> dict:
        # fingerprint() first: on a live (watched) archive it refreshes
        # the manifest snapshot, so the shard counts match the state the
        # fingerprint names.
        fingerprint = self.engine.source.fingerprint()
        shards = self.engine.source.shards()
        out = {
            "status": "ok",
            "nodes": len(shards),
            "records": sum(s.n_records or 0 for s in shards),
            "zone_maps": sum(1 for s in shards if s.zone_map is not None),
            "fingerprint": fingerprint,
        }
        manifest = getattr(self.engine.source, "manifest", None)
        if isinstance(manifest, dict) and "generation" in manifest:
            out["generation"] = int(manifest["generation"])
        return out

    def _metrics(self) -> dict:
        uptime = (
            time.monotonic() - self.started_at if self.started_at is not None else 0.0
        )
        out = {
            "uptime_s": uptime,
            "queries_run": self.engine.queries_run,
            "max_concurrency": self.max_concurrency,
            "peak_in_flight": self._peak_in_flight,
            "cache": self.engine.cache.stats.to_dict(),
            "endpoints": {
                name: m.to_dict() for name, m in sorted(self.metrics.items())
            },
        }
        io = getattr(self.engine.source, "io", None)
        if io is not None:
            out["io"] = io.to_dict()
        return out

    async def _run_query(self, plan: Query) -> dict:
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(None, self.engine.execute, plan)
        return result.to_dict()

    async def _node_errors(self, node: str, query_string: str) -> dict:
        known = {s.node for s in self.engine.source.shards()}
        if node not in known:
            raise _HttpError(404, f"unknown node {node!r}")
        limit = _query_param_int(query_string, "limit")
        from ..logs.columnar import KIND_ERROR
        from ..query.plan import Derive

        plan = Query(
            filters=(
                Predicate("kind", "eq", int(KIND_ERROR)),
                Predicate("node", "eq", node),
            ),
            derive=(Derive("n_bits", "n_bits"),),
            project=("t", "expected", "actual", "va", "pp", "temp", "rep", "n_bits"),
            order_by=("t",),
            limit=limit,
            nodes=(node,),
        )
        payload = await self._run_query(plan)
        payload["node"] = node
        return payload


def _query_param_int(query_string: str, name: str) -> int | None:
    for pair in query_string.split("&"):
        key, _, value = pair.partition("=")
        if key == name and value:
            try:
                parsed = int(value)
            except ValueError as exc:
                raise _HttpError(400, f"{name} must be an integer") from exc
            if parsed < 0:
                raise _HttpError(400, f"{name} must be >= 0")
            return parsed
    return None


# ---------------------------------------------------------------------------
# Threaded harness (tests, and anything embedding the server)
# ---------------------------------------------------------------------------


@dataclass
class ServerHandle:
    """A running server on a background thread; ``stop()`` to tear down."""

    server: TelemetryServer
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop
    _stopped: threading.Event = field(default_factory=threading.Event)

    @property
    def address(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, timeout: float = 5.0) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=timeout)


def run_in_thread(server: TelemetryServer, *, timeout: float = 5.0) -> ServerHandle:
    """Start the server's event loop on a daemon thread and wait for bind."""
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    startup_error: list[BaseException] = []

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 — reported to the caller
            startup_error.append(exc)
            ready.set()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            loop.close()

    thread = threading.Thread(target=runner, name="repro-telemetry", daemon=True)
    thread.start()
    if not ready.wait(timeout=timeout):
        raise RuntimeError("telemetry server did not start in time")
    if startup_error:
        thread.join(timeout=timeout)
        raise startup_error[0]
    return ServerHandle(server=server, thread=thread, loop=loop)
