"""The telemetry server: stdlib asyncio HTTP/1.1 in front of the engine.

Design constraints, in order:

* **No new dependencies.**  The HTTP layer stays a few hundred lines
  over ``asyncio.start_server``: request line, headers, Content-Length
  body, JSON out.  Connections are keep-alive by default (bounded by a
  per-connection request cap and an idle timeout); no chunked encoding
  — fleet dashboards poll, they do not stream.
* **Admission before work.**  A shed request never touches the thread
  pool.  Per-client token buckets (off by default) answer 429, a full
  semaphore queue answers 503, both with ``Retry-After``; ``/health``
  and ``/metrics`` bypass admission entirely so operators can always
  see in.
* **Bounded concurrency.**  A semaphore admits at most
  ``max_concurrency`` requests into the dispatch stage and at most
  ``max_queue_depth`` may wait for it; ``/metrics`` reports in-flight
  and queued gauges so tests can prove the bounds hold.
* **Degrade honestly.**  Query execution runs behind
  :class:`~repro.query.resilient.ResilientExecutor`: storage faults are
  retried, breaker-gated, and — within a bounded staleness window —
  answered from the last-good result with ``"degraded": true`` on the
  wire.  A partial scatter-gather result is likewise flagged, never
  silently passed off as complete.
* **Timeouts everywhere.**  Header/body reads and query execution are
  wrapped in ``asyncio.wait_for``; a wedged client or a pathological
  plan gets 408/504, not a leaked task.  ``stop()`` cancels whatever
  connections remain.
* **The event loop never touches NumPy.**  Query execution (and its
  shard I/O) runs in the default thread-pool executor; the loop only
  parses bytes and serializes JSON.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field

from ..core.errors import QueryPlanError, ReproError, SourceUnavailableError
from ..query.cache import QueryCache
from ..query.engine import QueryEngine
from ..query.plan import Predicate, Query
from ..query.resilient import (
    TRANSIENT_READ_ERRORS,
    CircuitBreaker,
    ReadRetryPolicy,
    ResilientExecutor,
    ResilientSource,
    StaleResultCache,
)
from ..query.scatter import ScatterGatherEngine
from ..query.source import as_source
from .admission import ClientRateLimiter, retry_after_header

#: Hard cap on request body size (a plan is small; 1 MiB is generous).
MAX_BODY_BYTES = 1 << 20
#: Default timeout for reading a request head and body from a client.
CLIENT_READ_TIMEOUT_S = 10.0
#: Default idle timeout between keep-alive requests (silent close).
KEEPALIVE_IDLE_TIMEOUT_S = 5.0
#: Default cap on requests served per connection before forcing close.
KEEPALIVE_MAX_REQUESTS = 100
#: Default cap on requests waiting for the concurrency semaphore.
MAX_QUEUE_DEPTH = 32
#: Cap on header lines per request (plans travel in the body).
MAX_HEADER_LINES = 100


@dataclass
class EndpointMetrics:
    """Latency/outcome counters for one endpoint."""

    requests: int = 0
    errors: int = 0
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0

    def observe(self, latency_s: float, ok: bool) -> None:
        self.requests += 1
        if not ok:
            self.errors += 1
        self.total_latency_s += latency_s
        self.max_latency_s = max(self.max_latency_s, latency_s)

    def to_dict(self) -> dict:
        mean = self.total_latency_s / self.requests if self.requests else 0.0
        return {
            "requests": self.requests,
            "errors": self.errors,
            "mean_latency_s": mean,
            "max_latency_s": self.max_latency_s,
        }


class _HttpError(Exception):
    def __init__(self, status: int, message: str, headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


class _ConnectionClosed(Exception):
    """The client closed (or broke) the connection between requests."""


_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class TelemetryServer:
    """Serve query results for one archive over HTTP/JSON.

    ``target`` may be an archive path, a source object, or — required
    for ``shard_workers > 0`` unless it is a path — a zero-argument
    callable producing a fresh source per scatter lane.
    """

    def __init__(
        self,
        target,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 8,
        request_timeout_s: float = 30.0,
        cache: QueryCache | None = None,
        # -- admission control ------------------------------------------
        client_read_timeout_s: float = CLIENT_READ_TIMEOUT_S,
        keepalive_idle_timeout_s: float = KEEPALIVE_IDLE_TIMEOUT_S,
        keepalive_max_requests: int = KEEPALIVE_MAX_REQUESTS,
        max_queue_depth: int = MAX_QUEUE_DEPTH,
        rate_limit_qps: float | None = None,
        rate_limit_burst: float | None = None,
        # -- graceful degradation ---------------------------------------
        breaker_failure_threshold: int = 5,
        breaker_reset_timeout_s: float = 1.0,
        read_retries: int = 2,
        read_timeout_s: float | None = None,
        max_stale_s: float = 300.0,
        stale_cache_entries: int = 32,
        # -- scatter-gather ---------------------------------------------
        shard_workers: int = 0,
        hedge_delay_s: float = 0.1,
        partition_timeout_s: float = 30.0,
        # -- online prediction -------------------------------------------
        predictor=None,
    ):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")
        if client_read_timeout_s <= 0:
            raise ValueError("client_read_timeout_s must be > 0")
        if keepalive_idle_timeout_s <= 0:
            raise ValueError("keepalive_idle_timeout_s must be > 0")
        if keepalive_max_requests < 1:
            raise ValueError("keepalive_max_requests must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if rate_limit_qps is not None and rate_limit_qps <= 0:
            raise ValueError("rate_limit_qps must be > 0")
        if shard_workers < 0:
            raise ValueError("shard_workers must be >= 0")

        self.breaker: CircuitBreaker | None = None
        self.resilient_source: ResilientSource | None = None
        if shard_workers:
            factory = target if callable(target) else (lambda: as_source(target))
            self.engine = ScatterGatherEngine(
                factory,
                n_workers=shard_workers,
                hedge_delay_s=hedge_delay_s,
                partition_timeout_s=partition_timeout_s,
                cache=cache,
            )
        else:
            inner = target() if callable(target) else as_source(target)
            self.breaker = CircuitBreaker(
                failure_threshold=breaker_failure_threshold,
                reset_timeout_s=breaker_reset_timeout_s,
            )
            self.resilient_source = ResilientSource(
                inner,
                breaker=self.breaker,
                retry=ReadRetryPolicy(retries=read_retries),
                read_timeout_s=read_timeout_s,
            )
            self.engine = QueryEngine(self.resilient_source, cache=cache)
        self.executor = ResilientExecutor(
            self.engine,
            stale=StaleResultCache(stale_cache_entries),
            max_stale_s=max_stale_s,
        )

        self.host = host
        self.port = port  # 0 = ephemeral; replaced with the bound port
        self.max_concurrency = max_concurrency
        self.request_timeout_s = request_timeout_s
        self.client_read_timeout_s = client_read_timeout_s
        self.keepalive_idle_timeout_s = keepalive_idle_timeout_s
        self.keepalive_max_requests = keepalive_max_requests
        self.max_queue_depth = max_queue_depth
        self.limiter: ClientRateLimiter | None = None
        if rate_limit_qps is not None:
            burst = rate_limit_burst if rate_limit_burst is not None else max(
                1.0, rate_limit_qps
            )
            self.limiter = ClientRateLimiter(rate_limit_qps, burst)

        # Optional repro.ml OnlinePredictor (duck-typed: refresh/board/
        # status).  Refreshes run in the executor behind a lock; the
        # event loop only reads the stashed status dict.
        self.predictor = predictor
        self._predictor_lock = threading.Lock()
        self._predictor_status: dict | None = (
            {"model_id": getattr(predictor, "model_id", None), "refreshes": 0}
            if predictor is not None
            else None
        )

        self.metrics: dict[str, EndpointMetrics] = {}
        self.started_at: float | None = None
        self._server: asyncio.base_events.Server | None = None
        self._semaphore: asyncio.Semaphore | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._in_flight = 0
        self._peak_in_flight = 0
        self._queued = 0
        self._peak_queued = 0
        # Cumulative counters (event-loop-thread only; no lock needed).
        self._shed_rate_limited = 0
        self._shed_overload = 0
        self._unavailable_responses = 0
        self._degraded_responses = 0
        self._connections_total = 0
        self._open_connections = 0
        self._keepalive_reuse = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel surviving connection handlers — including ones wedged
        # on a stuck executor read (the await is cancelled; the worker
        # thread finishes on its own).
        tasks = [t for t in self._conn_tasks if not t.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._conn_tasks.clear()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._connections_total += 1
        self._open_connections += 1
        try:
            await self._serve_requests(reader, writer)
        finally:
            self._open_connections -= 1
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_requests(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        served = 0
        while True:
            first = served == 0
            timeout = (
                self.client_read_timeout_s
                if first
                else self.keepalive_idle_timeout_s
            )
            try:
                method, path, headers, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=timeout
                )
            except asyncio.TimeoutError:
                if first:
                    await self._respond(
                        writer, 408, {"error": "request read timed out"}
                    )
                return  # idle keep-alive connection: close silently
            except _ConnectionClosed:
                return
            except _HttpError as exc:
                # A framing error poisons the stream: answer and close.
                await self._respond(
                    writer, exc.status, {"error": exc.message},
                    extra_headers=exc.headers,
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return  # client went away / sent garbage mid-line

            served += 1
            if served > 1:
                self._keepalive_reuse += 1
            close = (
                headers.get("connection", "").lower() == "close"
                or served >= self.keepalive_max_requests
            )
            client_key = headers.get("x-client-id") or self._peer_name(writer)
            status, payload, extra = await self._process(
                method, path, headers, body, client_key
            )
            await self._respond(
                writer, status, payload, close=close, extra_headers=extra
            )
            if close:
                return

    @staticmethod
    def _peer_name(writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if isinstance(peer, (tuple, list)) and peer else "?"

    async def _process(
        self, method: str, path: str, headers: dict, body: bytes, client_key: str
    ) -> tuple[int, dict, dict]:
        """Admission, dispatch, and error mapping for one request."""
        endpoint = self._endpoint_name(method, path)
        metrics = self.metrics.setdefault(endpoint, EndpointMetrics())
        start = time.perf_counter()
        extra: dict = {}
        plain = path.split("?", 1)[0]
        if plain in ("/health", "/metrics"):
            # Operator endpoints bypass admission and the semaphore:
            # they must answer even when the serving path is saturated.
            status, payload, extra = await self._dispatch_safely(method, path, body)
        else:
            status, payload, extra = await self._admit_and_dispatch(
                method, path, body, client_key
            )
        metrics.observe(time.perf_counter() - start, ok=status < 400)
        return status, payload, extra

    async def _admit_and_dispatch(
        self, method: str, path: str, body: bytes, client_key: str
    ) -> tuple[int, dict, dict]:
        if self.limiter is not None:
            ok, retry_after_s = self.limiter.admit(client_key)
            if not ok:
                self._shed_rate_limited += 1
                return (
                    429,
                    {"error": f"client {client_key!r} over rate limit"},
                    {"Retry-After": retry_after_header(retry_after_s)},
                )
        assert self._semaphore is not None
        # Shed only when no slot is immediately free AND the wait queue
        # is at capacity — a free slot always admits.
        if self._semaphore.locked() and self._queued >= self.max_queue_depth:
            self._shed_overload += 1
            return (
                503,
                {"error": "server overloaded: request queue is full"},
                {"Retry-After": "1"},
            )
        self._queued += 1
        self._peak_queued = max(self._peak_queued, self._queued)
        try:
            await self._semaphore.acquire()
        finally:
            self._queued -= 1
        self._in_flight += 1
        self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
        try:
            return await self._dispatch_safely(method, path, body)
        finally:
            self._in_flight -= 1
            self._semaphore.release()

    async def _dispatch_safely(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict, dict]:
        try:
            status, payload = await asyncio.wait_for(
                self._dispatch(method, path, body),
                timeout=self.request_timeout_s,
            )
            return status, payload, {}
        except asyncio.TimeoutError:
            return 504, {"error": f"request exceeded {self.request_timeout_s}s"}, {}
        except _HttpError as exc:
            return exc.status, {"error": exc.message}, dict(exc.headers)
        except QueryPlanError as exc:
            return 400, {"error": str(exc)}, {}
        except SourceUnavailableError as exc:
            self._unavailable_responses += 1
            return (
                503,
                {"error": str(exc)},
                {"Retry-After": retry_after_header(exc.retry_after_s or 1.0)},
            )
        except TRANSIENT_READ_ERRORS as exc:
            # A storage fault that exhausted retries with no stale
            # fallback: unavailable, not an internal error.
            self._unavailable_responses += 1
            return (
                503,
                {"error": f"archive read failed: {type(exc).__name__}: {exc}"},
                {"Retry-After": "1"},
            )
        except ReproError as exc:
            return 500, {"error": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}

    async def _read_request(self, reader) -> tuple[str, str, dict, bytes]:
        raw_line = await reader.readline()
        if not raw_line:
            raise _ConnectionClosed
        request_line = raw_line.decode("latin-1").rstrip("\r\n")
        if not request_line:
            raise _HttpError(400, "empty request line")
        parts = request_line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "too many header lines")
        content_length = 0
        if "content-length" in headers:
            try:
                content_length = int(headers["content-length"])
            except ValueError as exc:
                raise _HttpError(400, "bad Content-Length") from exc
            if content_length < 0:
                raise _HttpError(400, "bad Content-Length")
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, headers, body

    async def _respond(
        self,
        writer,
        status: int,
        payload: dict,
        *,
        close: bool = True,
        extra_headers: dict | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client disconnected before the response landed

    # -- routing -----------------------------------------------------------

    @staticmethod
    def _endpoint_name(method: str, path: str) -> str:
        path = path.split("?", 1)[0]
        if path.startswith("/nodes/"):
            path = "/nodes/<id>/errors"
        return f"{method} {path}"

    async def _dispatch(self, method: str, path: str, body: bytes):
        path, _, query_string = path.partition("?")
        if path == "/health":
            self._require(method, "GET")
            return 200, self._health()
        if path == "/metrics":
            self._require(method, "GET")
            return 200, self._metrics()
        if path == "/query":
            self._require(method, "POST")
            return 200, await self._run_query(self._parse_plan(body))
        if path == "/predict":
            self._require(method, "GET")
            return 200, await self._predict(query_string)
        if path.startswith("/nodes/") and path.endswith("/errors"):
            self._require(method, "GET")
            node = path[len("/nodes/"):-len("/errors")]
            if not node or "/" in node:
                raise _HttpError(404, f"no such path: {path}")
            return 200, await self._node_errors(node, query_string)
        raise _HttpError(404, f"no such path: {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    @staticmethod
    def _parse_plan(body: bytes) -> Query:
        try:
            spec = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        return Query.from_dict(spec)

    # -- endpoints ---------------------------------------------------------

    def _health(self) -> dict:
        # fingerprint() first: on a live (watched) archive it refreshes
        # the manifest snapshot, so the shard counts match the state the
        # fingerprint names.
        try:
            fingerprint = self.engine.source.fingerprint()
            shards = self.engine.source.shards()
        except SourceUnavailableError as exc:
            # The operator endpoint must answer even when the archive
            # does not: report the breaker, not a 503.
            out = {"status": "degraded", "error": str(exc)}
            if self.breaker is not None:
                out["breaker"] = self.breaker.state
                out["retry_after_s"] = self.breaker.retry_after_s()
            return out
        out = {
            "status": "ok",
            "nodes": len(shards),
            "records": sum(s.n_records or 0 for s in shards),
            "zone_maps": sum(1 for s in shards if s.zone_map is not None),
            "fingerprint": fingerprint,
        }
        if self.breaker is not None and self.breaker.state != "closed":
            out["status"] = "degraded"
            out["breaker"] = self.breaker.state
        manifest = getattr(self.engine.source, "manifest", None)
        if isinstance(manifest, dict) and "generation" in manifest:
            out["generation"] = int(manifest["generation"])
        return out

    def _metrics(self) -> dict:
        uptime = (
            time.monotonic() - self.started_at if self.started_at is not None else 0.0
        )
        out = {
            "uptime_s": uptime,
            "queries_run": self.engine.queries_run,
            "max_concurrency": self.max_concurrency,
            "in_flight": self._in_flight,
            "peak_in_flight": self._peak_in_flight,
            "queued": self._queued,
            "peak_queued": self._peak_queued,
            "cache": self.engine.cache.stats.to_dict(),
            "endpoints": {
                name: m.to_dict() for name, m in sorted(self.metrics.items())
            },
            "admission": {
                "max_queue_depth": self.max_queue_depth,
                "shed_rate_limited": self._shed_rate_limited,
                "shed_overload": self._shed_overload,
                "rate_limiter": (
                    self.limiter.to_dict() if self.limiter is not None else None
                ),
            },
            "connections": {
                "total": self._connections_total,
                "open": self._open_connections,
                "keepalive_reuse": self._keepalive_reuse,
            },
        }
        resilience: dict = {
            "degraded_responses": self._degraded_responses,
            "unavailable_responses": self._unavailable_responses,
            "degrade": self.executor.stats.to_dict(),
        }
        if self.breaker is not None:
            resilience["breaker"] = self.breaker.to_dict()
        if self.resilient_source is not None:
            resilience["reads"] = self.resilient_source.stats.to_dict()
        scatter_stats = getattr(self.engine, "stats", None)
        if scatter_stats is not None:
            resilience["scatter"] = scatter_stats.to_dict()
        out["resilience"] = resilience
        if self._predictor_status is not None:
            out["predictor"] = self._predictor_status
        io = getattr(self.engine.source, "io", None)
        if io is not None:
            out["io"] = io.to_dict()
        return out

    async def _run_query(self, plan: Query) -> dict:
        loop = asyncio.get_running_loop()
        outcome = await loop.run_in_executor(None, self.executor.execute, plan)
        payload = outcome.result.to_dict()
        payload["degraded"] = outcome.degraded
        payload["partial"] = outcome.partial
        if outcome.degraded:
            self._degraded_responses += 1
            payload["degraded_reason"] = outcome.reason
        if outcome.stale:
            payload["stale_age_s"] = outcome.stale_age_s
        if outcome.partial:
            payload["missing_nodes"] = list(outcome.missing_nodes)
        return payload

    async def _predict(self, query_string: str) -> dict:
        """Per-node degradation scores from the online predictor.

        Query params: ``limit`` (top-N), ``threshold`` (minimum score),
        ``node`` (single-node lookup), ``t0`` (pin the replay clock in
        hours), ``refresh=0`` (serve the cached board without
        re-scoring).  404 when the server runs without a predictor.
        """
        if self.predictor is None:
            raise _HttpError(
                404, "no predictor configured (start with a model registry)"
            )
        limit = _query_param_int(query_string, "limit")
        threshold = _query_param_float(query_string, "threshold")
        node = _query_param_str(query_string, "node")
        t0 = _query_param_float(query_string, "t0")
        refresh = _query_param_int(query_string, "refresh")
        do_refresh = refresh != 0

        def work():
            with self._predictor_lock:
                if do_refresh or self.predictor.board is None:
                    self.predictor.refresh(t0)
                board = self.predictor.board
                status = self.predictor.status()
                self._predictor_status = status
                return board, status

        loop = asyncio.get_running_loop()
        try:
            board, status = await loop.run_in_executor(None, work)
        except RuntimeError as exc:
            raise _HttpError(503, str(exc)) from exc
        payload = {
            "model_id": board.model_id,
            "t0_hours": board.t0,
            "n_nodes": len(board.nodes),
            "scores": board.top(limit=limit, threshold=threshold),
            "status": status,
        }
        if node is not None:
            score = board.score_of(node)
            if score is None:
                raise _HttpError(404, f"unknown node {node!r}")
            payload["node"] = {"node": node, "score": score}
        return payload

    async def _node_errors(self, node: str, query_string: str) -> dict:
        known = {s.node for s in self.engine.source.shards()}
        if node not in known:
            raise _HttpError(404, f"unknown node {node!r}")
        limit = _query_param_int(query_string, "limit")
        from ..logs.columnar import KIND_ERROR
        from ..query.plan import Derive

        plan = Query(
            filters=(
                Predicate("kind", "eq", int(KIND_ERROR)),
                Predicate("node", "eq", node),
            ),
            derive=(Derive("n_bits", "n_bits"),),
            project=("t", "expected", "actual", "va", "pp", "temp", "rep", "n_bits"),
            order_by=("t",),
            limit=limit,
            nodes=(node,),
        )
        payload = await self._run_query(plan)
        payload["node"] = node
        return payload


def _query_param_int(query_string: str, name: str) -> int | None:
    for pair in query_string.split("&"):
        key, _, value = pair.partition("=")
        if key == name and value:
            try:
                parsed = int(value)
            except ValueError as exc:
                raise _HttpError(400, f"{name} must be an integer") from exc
            if parsed < 0:
                raise _HttpError(400, f"{name} must be >= 0")
            return parsed
    return None


def _query_param_float(query_string: str, name: str) -> float | None:
    for pair in query_string.split("&"):
        key, _, value = pair.partition("=")
        if key == name and value:
            try:
                return float(value)
            except ValueError as exc:
                raise _HttpError(400, f"{name} must be a number") from exc
    return None


def _query_param_str(query_string: str, name: str) -> str | None:
    for pair in query_string.split("&"):
        key, _, value = pair.partition("=")
        if key == name and value:
            return value
    return None


# ---------------------------------------------------------------------------
# Threaded harness (tests, and anything embedding the server)
# ---------------------------------------------------------------------------


@dataclass
class ServerHandle:
    """A running server on a background thread; ``stop()`` to tear down."""

    server: TelemetryServer
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop
    _stopped: threading.Event = field(default_factory=threading.Event)

    @property
    def address(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, timeout: float = 5.0) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=timeout)


def run_in_thread(server: TelemetryServer, *, timeout: float = 5.0) -> ServerHandle:
    """Start the server's event loop on a daemon thread and wait for bind."""
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    startup_error: list[BaseException] = []

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 — reported to the caller
            startup_error.append(exc)
            ready.set()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            loop.close()

    thread = threading.Thread(target=runner, name="repro-telemetry", daemon=True)
    thread.start()
    if not ready.wait(timeout=timeout):
        raise RuntimeError("telemetry server did not start in time")
    if startup_error:
        thread.join(timeout=timeout)
        raise startup_error[0]
    return ServerHandle(server=server, thread=thread, loop=loop)
