"""Academic calendar driving cluster utilization.

The scanner only runs on *idle* nodes, so the amount of memory scanned per
day (Fig 9) mirrors the inverse of cluster utilization.  The paper notes
intense scanning in August, September and December (academic vacations)
and lower scanning April-July (end of the academic year).  This module
encodes that calendar as a utilization fraction per day, which the job
generator consumes.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

import numpy as np

from ..core import timeutils


def _span(start: _dt.date, end: _dt.date) -> tuple[int, int]:
    """Day-index span [first, last] for a date range (inclusive)."""
    first = (start - timeutils.STUDY_EPOCH.date()).days
    last = (end - timeutils.STUDY_EPOCH.date()).days
    return (first, last)


#: (day-span, utilization) entries; later entries override earlier ones.
#: Levels calibrated so total coverage lands on the paper's ~4.2M
#: node-hours / ~12,135 TB-hours with the Fig 9 seasonal shape.
DEFAULT_CALENDAR: tuple[tuple[tuple[int, int], float], ...] = (
    # Baseline term-time utilization.
    (_span(_dt.date(2015, 2, 1), _dt.date(2016, 3, 31)), 0.64),
    # End of academic year: machine heavily used (Sec III-G, Apr-Jul dip
    # in scanning).
    (_span(_dt.date(2015, 4, 1), _dt.date(2015, 7, 20)), 0.82),
    # Summer vacation: long idle stretches (Aug/Sep scanning peaks).
    (_span(_dt.date(2015, 7, 21), _dt.date(2015, 9, 20)), 0.22),
    # Autumn crunch (deadline season): the machine is busy exactly while
    # the error rate peaks — the source of the Sec III-G anti-correlation.
    (_span(_dt.date(2015, 10, 5), _dt.date(2015, 11, 27)), 0.74),
    # Christmas break (December peak).
    (_span(_dt.date(2015, 12, 15), _dt.date(2016, 1, 7)), 0.26),
)


@dataclass(frozen=True)
class AcademicCalendar:
    """Piecewise-constant cluster utilization over the study window."""

    entries: tuple[tuple[tuple[int, int], float], ...] = DEFAULT_CALENDAR
    weekend_factor: float = 0.60  # weekends are quieter
    n_days: int = timeutils.STUDY_DAYS

    def _base_table(self) -> np.ndarray:
        table = np.full(self.n_days, 0.64, dtype=np.float64)
        for (first, last), util in self.entries:
            lo = max(first, 0)
            hi = min(last, self.n_days - 1)
            if hi >= lo:
                table[lo : hi + 1] = util
        return table

    def utilization(self, day: int | np.ndarray) -> np.ndarray | float:
        """Fraction of the cluster busy with jobs on a given study day."""
        table = self._base_table()
        days = np.asarray(day, dtype=np.int64)
        util = table[np.clip(days, 0, self.n_days - 1)]
        # Weekday of the epoch (2015-02-01) is Sunday (weekday()==6).
        weekday = (6 + days) % 7
        weekend = (weekday == 5) | (weekday == 6)
        util = np.where(weekend, util * self.weekend_factor, util)
        return util[()]

    def idle_fraction(self, day: int | np.ndarray) -> np.ndarray | float:
        """Fraction of node time available to the memory scanner."""
        return (1.0 - np.asarray(self.utilization(day)))[()]

    def utilization_series(self) -> np.ndarray:
        """Per-day utilization over the whole study window."""
        return np.asarray(self.utilization(np.arange(self.n_days)))
