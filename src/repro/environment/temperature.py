"""Room- and node-temperature time series.

The paper states the machine room was kept between 18 and 26 C for the
whole study, node temperatures at error time cluster in 30-40 C (the
scanner barely loads the CPU), a small error population sits above 60 C
(the overheating SoC-12 neighbourhood before those slots were powered
off), and temperature telemetry only exists from April 2015 onward.

The model: room temperature is a smooth seasonal + diurnal oscillation
inside the 18-26 C band plus small node-local jitter; node temperature is
room temperature plus the slot's static thermal offset
(:mod:`repro.cluster.thermal`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.thermal import placement_for
from ..cluster.topology import NodeId
from ..core import timeutils
from ..core.rng import stream

#: HVAC band the paper reports.
ROOM_MIN_C = 18.0
ROOM_MAX_C = 26.0


@dataclass(frozen=True)
class TemperatureModel:
    """Deterministic-plus-jitter temperature field over the machine."""

    room_mean_c: float = 22.0
    seasonal_amplitude_c: float = 2.0
    diurnal_amplitude_c: float = 1.2
    jitter_std_c: float = 0.8
    seed: int = 0

    def room_temperature(self, t_hours: np.ndarray | float) -> np.ndarray | float:
        """Room temperature (C) at study time(s); stays in the HVAC band."""
        t = np.asarray(t_hours, dtype=np.float64)
        seasonal = self.seasonal_amplitude_c * np.sin(
            2.0 * np.pi * (t / 24.0 - 170.0) / 365.25
        )
        diurnal = self.diurnal_amplitude_c * np.sin(
            2.0 * np.pi * (np.mod(t, 24.0) - 9.0) / 24.0
        )
        room = self.room_mean_c + seasonal + diurnal
        return np.clip(room, ROOM_MIN_C, ROOM_MAX_C)[()]

    def node_temperature(
        self, node_id: NodeId, t_hours: np.ndarray | float, jitter: bool = True
    ) -> np.ndarray | float:
        """Node temperature (C), including slot thermal offset and jitter.

        Jitter is deterministic in (node, time): re-querying the same
        instant returns the same reading, like a real sensor log would.
        """
        room = np.asarray(self.room_temperature(t_hours), dtype=np.float64)
        offset = placement_for(node_id).offset_c
        temp = room + offset
        if jitter and self.jitter_std_c > 0.0:
            t = np.atleast_1d(np.asarray(t_hours, dtype=np.float64))
            # Hash (node, quantized time) into a reproducible jitter draw.
            quanta = np.round(t * 3600.0).astype(np.int64)
            jit = np.empty_like(t)
            for i, q in enumerate(quanta):
                gen = stream(self.seed, f"temp/{node_id}/{int(q)}")
                jit[i] = gen.normal(0.0, self.jitter_std_c)
            temp = temp + (jit if np.asarray(t_hours).ndim else jit[0])
        return temp[()] if isinstance(temp, np.ndarray) else temp

    @staticmethod
    def telemetry_available(t_hours: float) -> bool:
        """Whether temperature was being logged at ``t_hours`` (Sec III-F)."""
        return t_hours >= timeutils.TEMPERATURE_LOGGING_START

    def reading(self, node_id: NodeId, t_hours: float) -> float | None:
        """Sensor reading as recorded in a log entry (None before Apr 2015)."""
        if not self.telemetry_available(t_hours):
            return None
        return float(self.node_temperature(node_id, t_hours))
