"""Solar position model for the machine's site (Barcelona, ~100 m a.s.l.).

Sec III-E of the paper correlates multi-bit error counts with the position
of the sun in the sky (day:night ratio ~2:1, peak at local noon).  The
fault-injection model needs a physical driver for that modulation, so we
implement the standard NOAA-style solar elevation computation: declination
and equation-of-time from the fractional year, then the hour-angle formula
for elevation.  Accuracy of a fraction of a degree is ample for modulating
a fault-rate model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import timeutils

#: Site coordinates used by the study (Barcelona).
BARCELONA_LATITUDE_DEG = 41.39
BARCELONA_LONGITUDE_DEG = 2.17
BARCELONA_ALTITUDE_M = 100.0

#: Local civil time offset from UTC.  The study logs local timestamps; we
#: use a fixed +1 h (CET) — neglecting DST shifts the noon peak by at most
#: one bin, which is irrelevant to the shape of Fig 6.
UTC_OFFSET_HOURS = 1.0


@dataclass(frozen=True)
class Site:
    """A geographic site for solar computations."""

    latitude_deg: float = BARCELONA_LATITUDE_DEG
    longitude_deg: float = BARCELONA_LONGITUDE_DEG
    altitude_m: float = BARCELONA_ALTITUDE_M
    utc_offset_hours: float = UTC_OFFSET_HOURS


BARCELONA = Site()


def _fractional_year_rad(t_hours: np.ndarray) -> np.ndarray:
    """Fractional year angle gamma (radians) for study times, vectorized.

    Uses day-of-year + hour within day; exact leap handling is unnecessary
    at the model's accuracy, so a 365.25-day year is used.
    """
    t = np.asarray(t_hours, dtype=np.float64)
    # Day-of-year of the study epoch (2015-02-01) is 32 (1-based).
    doy = 31.0 + t / 24.0  # 0-based day-of-year + fraction
    return 2.0 * np.pi * np.mod(doy, 365.25) / 365.25


def solar_declination_rad(t_hours: np.ndarray | float) -> np.ndarray | float:
    """Solar declination (radians), Spencer's Fourier expansion."""
    g = _fractional_year_rad(t_hours)
    decl = (
        0.006918
        - 0.399912 * np.cos(g)
        + 0.070257 * np.sin(g)
        - 0.006758 * np.cos(2 * g)
        + 0.000907 * np.sin(2 * g)
        - 0.002697 * np.cos(3 * g)
        + 0.00148 * np.sin(3 * g)
    )
    return decl[()] if isinstance(decl, np.ndarray) else decl


def equation_of_time_minutes(t_hours: np.ndarray | float) -> np.ndarray | float:
    """Equation of time (minutes), Spencer's expansion."""
    g = _fractional_year_rad(t_hours)
    eot = 229.18 * (
        0.000075
        + 0.001868 * np.cos(g)
        - 0.032077 * np.sin(g)
        - 0.014615 * np.cos(2 * g)
        - 0.040849 * np.sin(2 * g)
    )
    return eot[()] if isinstance(eot, np.ndarray) else eot


def solar_elevation_deg(
    t_hours: np.ndarray | float, site: Site = BARCELONA
) -> np.ndarray | float:
    """Solar elevation angle (degrees) at study time(s) ``t_hours``.

    Negative values mean the sun is below the horizon.
    """
    t = np.asarray(t_hours, dtype=np.float64)
    decl = solar_declination_rad(t)
    eot = equation_of_time_minutes(t)
    local_clock = np.mod(t, 24.0)
    # True solar time: clock time corrected for longitude and EoT.
    solar_time = (
        local_clock
        + (site.longitude_deg / 15.0 - site.utc_offset_hours)
        + np.asarray(eot) / 60.0
    )
    hour_angle = np.deg2rad(15.0 * (solar_time - 12.0))
    lat = np.deg2rad(site.latitude_deg)
    sin_elev = np.sin(lat) * np.sin(decl) + np.cos(lat) * np.cos(decl) * np.cos(
        hour_angle
    )
    elev = np.rad2deg(np.arcsin(np.clip(sin_elev, -1.0, 1.0)))
    return elev[()]


def is_daytime(t_hours: np.ndarray | float, site: Site = BARCELONA):
    """True where the sun is above the horizon."""
    return np.asarray(solar_elevation_deg(t_hours, site)) > 0.0


def solar_noon_hour(t_hours: float, site: Site = BARCELONA) -> float:
    """Local clock hour of solar noon on the day containing ``t_hours``."""
    day0 = float(timeutils.day_start(int(timeutils.day_index(t_hours))))
    eot = float(equation_of_time_minutes(day0 + 12.0))
    return 12.0 - (site.longitude_deg / 15.0 - site.utc_offset_hours) - eot / 60.0
