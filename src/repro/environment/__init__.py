"""Environment substrate: sun, neutrons, temperature, academic calendar."""

from .calendar import AcademicCalendar
from .neutron import NeutronFluxModel, altitude_factor
from .solar import (
    BARCELONA,
    Site,
    is_daytime,
    solar_declination_rad,
    solar_elevation_deg,
    solar_noon_hour,
)
from .temperature import ROOM_MAX_C, ROOM_MIN_C, TemperatureModel

__all__ = [
    "AcademicCalendar",
    "BARCELONA",
    "NeutronFluxModel",
    "ROOM_MAX_C",
    "ROOM_MIN_C",
    "Site",
    "TemperatureModel",
    "altitude_factor",
    "is_daytime",
    "solar_declination_rad",
    "solar_elevation_deg",
    "solar_noon_hour",
]
