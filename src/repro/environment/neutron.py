"""Atmospheric-neutron flux model.

Multi-bit DRAM upsets are attributed by the paper (Sec III-E) to neutron
showers from cosmic-ray interactions, with an observed diurnal modulation
tracking the sun's elevation.  This module turns that hypothesis into a
generative rate multiplier:

``flux(t) = base * altitude_factor * (night + (day-night) * elevation_term)``

* ``altitude_factor`` follows the standard exponential atmospheric-depth
  scaling (flux roughly doubles every ~1500 m; Barcelona at ~100 m is close
  to the sea-level reference).
* the diurnal term interpolates between a night floor and a noon peak with
  the normalized solar elevation, reproducing the paper's ~2:1 day:night
  multi-bit ratio with a bell around noon.

The absolute scale is folded into the fault-model rates; this module only
provides the *relative* modulation, so its output is dimensionless and
time-averages to ~1 under default parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .solar import BARCELONA, Site, solar_elevation_deg

#: e-folding length of neutron flux with altitude (m).  Flux ~doubles each
#: ~1500 m, i.e. L = 1500 / ln(2).
ALTITUDE_EFOLD_M = 1500.0 / np.log(2.0)


def altitude_factor(altitude_m: float, reference_m: float = 0.0) -> float:
    """Relative neutron flux at ``altitude_m`` vs the reference altitude."""
    return float(np.exp((altitude_m - reference_m) / ALTITUDE_EFOLD_M))


@dataclass(frozen=True)
class NeutronFluxModel:
    """Diurnally modulated relative neutron flux at a site.

    ``day_night_ratio`` is the ratio of the noon peak to the night floor;
    the paper observes roughly 2:1 in multi-bit error counts, so the
    default calibration produces that ratio in thinned event counts.
    """

    site: Site = BARCELONA
    day_night_ratio: float = 3.2
    #: Elevation (deg) at which the daytime term saturates; Barcelona's
    #: summer noon reaches ~72 deg.
    saturation_elevation_deg: float = 72.0

    def relative_flux(self, t_hours: np.ndarray | float) -> np.ndarray | float:
        """Dimensionless flux multiplier at study time(s)."""
        elev = np.asarray(solar_elevation_deg(t_hours, self.site))
        norm = np.clip(elev / self.saturation_elevation_deg, 0.0, 1.0)
        night = 1.0
        peak = self.day_night_ratio
        return (night + (peak - night) * norm)[()]

    @property
    def max_flux(self) -> float:
        """Upper bound on :meth:`relative_flux` (used for NHPP thinning)."""
        return float(self.day_night_ratio)

    def mean_flux(self, t0: float, t1: float, n: int = 2048) -> float:
        """Time-averaged flux over [t0, t1) by midpoint quadrature."""
        ts = np.linspace(t0, t1, n, endpoint=False) + (t1 - t0) / (2 * n)
        return float(np.mean(self.relative_flux(ts)))
