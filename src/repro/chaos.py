"""Deterministic chaos harness for the fault-tolerant execution layer.

The paper's 13-month collection survived dead blades, node reboots and
partial data; our execution layer has to be validated against the same
adversities without flaky tests.  This module provides *seeded,
reproducible* failure injection: a :class:`ChaosPlan` is a pure function
of ``(seed, unit key, attempt)`` — the same discipline the per-node RNG
streams follow — so every chaos test replays bit-identically.

Fault kinds
-----------

``raise``
    The work unit raises :class:`~repro.core.errors.ChaosError` before
    doing any work (a crashed unit; side-effect-free, so a retry is safe).
``kill``
    The worker *process* dies with ``SIGKILL`` mid-unit — the executor
    sees :class:`~concurrent.futures.process.BrokenProcessPool`.  Only
    meaningful on the process backend; firing it in the driver process
    would kill the driver (which is exactly what the driver-kill resume
    tests do, from a sacrificial subprocess).
``hang``
    The unit sleeps far past any reasonable watchdog timeout, simulating
    a wedged node.  Recoverable only where the supervisor can kill the
    worker (process backend).

Torn writes — the fourth failure class of the campaign journal — are not
per-unit faults; :func:`tear_file` truncates a file mid-record the way a
power loss would, for checkpoint/resume tests.

Network/IO faults
-----------------

The telemetry serving tier faces a different adversary: the *storage*
underneath a live query misbehaves while clients keep arriving.
:class:`IoFaultRule` / :class:`IoChaosPlan` extend the same seeded,
``(key, attempt)``-pure discipline to shard reads, and
:class:`ChaosSource` wraps any query source (the duck-typed
``fingerprint``/``shards``/``load_columns`` protocol) to inject them:

``slow_read``
    The read completes, but only after ``delay_s`` — a saturated disk or
    a remote shard on a congested link.
``reset``
    The read dies with :class:`ConnectionResetError` — a storage backend
    dropping the connection mid-transfer.  Transient: a retry may pass.
``torn_read``
    The read raises :class:`~repro.core.errors.ShardCorruptError` — a
    half-written segment observed mid-compaction, or real corruption.
``wedge``
    The read blocks for ``wedge_seconds`` — a wedged storage worker.
    Long enough to trip hedges/timeouts, bounded so tests always drain.

Attempts are counted *per key* by the :class:`ChaosSource`, so a rule
with ``attempts=(1,)`` models a transient fault (the retry or the hedge
read succeeds) and ``attempts=None`` a persistent one.

Plans are frozen dataclasses: picklable, hashable, and safe to ship to
worker processes through the pool initializer or per-task arguments.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from .core.errors import ChaosError, ShardCorruptError

#: Fault kinds a :class:`FaultRule` may inject.
FAULT_KINDS = ("raise", "kill", "hang")

#: Fault kinds an :class:`IoFaultRule` may inject on shard reads.
IO_FAULT_KINDS = ("slow_read", "reset", "torn_read", "wedge")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *which* units fail, *when*, and *how*.

    ``key`` selects the unit (``None`` matches every unit); ``attempts``
    lists the 1-based attempt numbers the rule fires on (``None`` means
    every attempt — a *permanent* fault that must exhaust the retry
    budget).  ``probability`` thins the rule deterministically: whether a
    given ``(key, attempt)`` fires is decided by a hash of the plan seed,
    never by wall-clock randomness.
    """

    kind: str
    key: str | None = None
    attempts: tuple[int, ...] | None = (1,)
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def matches(self, key: str, attempt: int, seed: int) -> bool:
        if self.key is not None and self.key != key:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.probability >= 1.0:
            return True
        return _unit_uniform(seed, key, attempt, self.kind) < self.probability


def _unit_uniform(seed: int, key: str, attempt: int, salt: str) -> float:
    """Deterministic uniform draw in [0, 1) for one (key, attempt)."""
    blob = f"{seed}:{key}:{attempt}:{salt}".encode()
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded set of :class:`FaultRule` injections.

    ``decide`` is pure — repeated supervisors, resumed campaigns and
    worker processes all see the same faults for the same plan.
    ``hang_seconds`` bounds the ``hang`` fault so an *unsupervised* test
    run eventually unwedges instead of stalling CI forever.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    hang_seconds: float = 300.0

    def decide(self, key: str, attempt: int) -> FaultRule | None:
        """The first rule firing for this ``(key, attempt)``, if any."""
        for rule in self.rules:
            if rule.matches(key, attempt, self.seed):
                return rule
        return None

    def apply(self, key: str, attempt: int) -> None:
        """Inject the decided fault (no-op when no rule fires)."""
        rule = self.decide(key, attempt)
        if rule is None:
            return
        if rule.kind == "raise":
            raise ChaosError(
                f"injected failure on unit {key!r} (attempt {attempt})"
            )
        if rule.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if rule.kind == "hang":  # pragma: no cover - killed by the watchdog
            time.sleep(self.hang_seconds)


def raise_on(key: str, n_failures: int = 1, seed: int = 0) -> ChaosPlan:
    """A plan whose unit ``key`` raises on its first ``n_failures`` attempts."""
    return ChaosPlan(
        rules=(FaultRule("raise", key=key, attempts=tuple(range(1, n_failures + 1))),),
        seed=seed,
    )


def always_raise(key: str, seed: int = 0) -> ChaosPlan:
    """A plan whose unit ``key`` fails permanently (exhausts any budget)."""
    return ChaosPlan(rules=(FaultRule("raise", key=key, attempts=None),), seed=seed)


def kill_worker_on(key: str, attempts: tuple[int, ...] = (1,), seed: int = 0) -> ChaosPlan:
    """A plan SIGKILLing the worker running ``key`` on the given attempts."""
    return ChaosPlan(rules=(FaultRule("kill", key=key, attempts=attempts),), seed=seed)


def hang_on(
    key: str,
    attempts: tuple[int, ...] = (1,),
    hang_seconds: float = 300.0,
    seed: int = 0,
) -> ChaosPlan:
    """A plan wedging the unit ``key`` on the given attempts."""
    return ChaosPlan(
        rules=(FaultRule("hang", key=key, attempts=attempts),),
        seed=seed,
        hang_seconds=hang_seconds,
    )


# ---------------------------------------------------------------------------
# Network/IO fault injection (the serving tier's chaos battery)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IoFaultRule:
    """One shard-read injection rule, mirroring :class:`FaultRule`.

    ``key`` selects the node being read (``None`` matches every node);
    ``attempts`` lists the 1-based *per-node read attempt* numbers the
    rule fires on (``None`` = every attempt, a persistent fault).
    ``probability`` thins the rule deterministically from the plan seed.
    ``delay_s`` is the stall injected by ``slow_read``.
    """

    kind: str
    key: str | None = None
    attempts: tuple[int, ...] | None = (1,)
    probability: float = 1.0
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in IO_FAULT_KINDS:
            raise ValueError(
                f"unknown IO fault kind {self.kind!r}; use {IO_FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay_s < 0.0:
            raise ValueError("delay_s must be >= 0")

    def matches(self, key: str, attempt: int, seed: int) -> bool:
        if self.key is not None and self.key != key:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.probability >= 1.0:
            return True
        return _unit_uniform(seed, key, attempt, self.kind) < self.probability


@dataclass(frozen=True)
class IoChaosPlan:
    """A seeded set of :class:`IoFaultRule` injections for shard reads.

    ``decide`` is a pure function of ``(seed, node, attempt)``, so a
    chaos battery replays bit-identically no matter how server threads
    interleave: each node's fault schedule depends only on how many
    times *that node* has been read.  ``wedge_seconds`` bounds the
    ``wedge`` fault so an unsupervised run always drains.
    """

    rules: tuple[IoFaultRule, ...] = ()
    seed: int = 0
    wedge_seconds: float = 30.0

    def decide(self, key: str, attempt: int) -> IoFaultRule | None:
        """The first rule firing for this ``(node, attempt)``, if any."""
        for rule in self.rules:
            if rule.matches(key, attempt, self.seed):
                return rule
        return None


class ChaosSource:
    """A query source whose shard reads fail on schedule.

    Wraps anything exposing the source protocol (``fingerprint`` /
    ``shards`` / ``load_columns``) and applies an :class:`IoChaosPlan`
    to every ``load_columns`` call.  Read attempts are counted per node
    under a lock, so concurrent server threads see a deterministic
    per-node fault schedule regardless of interleaving.

    ``sleep`` is injectable so unit tests can observe stalls without
    waiting them out.
    """

    def __init__(self, inner, plan: IoChaosPlan, *, sleep=time.sleep):
        self._inner = inner
        self.plan = plan
        self._sleep = sleep
        self._attempts: dict[str, int] = {}
        self._lock = threading.Lock()
        self.faults_injected = 0

    @property
    def io(self):
        return self._inner.io

    def __getattr__(self, name):
        # Pass through source extras (``manifest``, ...) untouched.
        return getattr(self._inner, name)

    def fingerprint(self) -> str:
        return self._inner.fingerprint()

    def shards(self):
        return self._inner.shards()

    def attempts(self, node: str) -> int:
        """How many reads this node has seen (for test assertions)."""
        with self._lock:
            return self._attempts.get(node, 0)

    def load_columns(self, node: str, names):
        with self._lock:
            attempt = self._attempts.get(node, 0) + 1
            self._attempts[node] = attempt
        rule = self.plan.decide(node, attempt)
        if rule is not None:
            self._apply(rule, node, attempt)
        return self._inner.load_columns(node, names)

    def _apply(self, rule: IoFaultRule, node: str, attempt: int) -> None:
        with self._lock:
            self.faults_injected += 1
        if rule.kind == "slow_read":
            self._sleep(rule.delay_s)
        elif rule.kind == "reset":
            raise ConnectionResetError(
                f"injected connection reset reading {node!r} "
                f"(attempt {attempt})"
            )
        elif rule.kind == "torn_read":
            raise ShardCorruptError(
                f"injected torn read on {node!r} (attempt {attempt})",
                node=node,
            )
        elif rule.kind == "wedge":
            self._sleep(self.plan.wedge_seconds)


def slow_reads(delay_s: float, probability: float = 1.0, seed: int = 0) -> IoChaosPlan:
    """A plan stalling every (or a thinned subset of) shard read."""
    return IoChaosPlan(
        rules=(
            IoFaultRule(
                "slow_read", attempts=None, probability=probability, delay_s=delay_s
            ),
        ),
        seed=seed,
    )


def reset_reads_on(
    key: str | None, attempts: tuple[int, ...] | None = (1,), seed: int = 0
) -> IoChaosPlan:
    """A plan resetting reads of node ``key`` on the given attempts."""
    return IoChaosPlan(rules=(IoFaultRule("reset", key=key, attempts=attempts),), seed=seed)


def torn_read_on(
    key: str | None, attempts: tuple[int, ...] | None = (1,), seed: int = 0
) -> IoChaosPlan:
    """A plan tearing reads of node ``key`` on the given attempts."""
    return IoChaosPlan(
        rules=(IoFaultRule("torn_read", key=key, attempts=attempts),), seed=seed
    )


def wedge_reads_on(
    key: str | None,
    attempts: tuple[int, ...] | None = (1,),
    wedge_seconds: float = 30.0,
    seed: int = 0,
) -> IoChaosPlan:
    """A plan wedging reads of node ``key`` on the given attempts."""
    return IoChaosPlan(
        rules=(IoFaultRule("wedge", key=key, attempts=attempts),),
        seed=seed,
        wedge_seconds=wedge_seconds,
    )


def tear_file(path: str | Path, drop_bytes: int) -> int:
    """Truncate the last ``drop_bytes`` bytes of ``path`` (a torn write).

    Returns the new size.  Mimics a crash mid-append: the file ends
    inside a record, which checksummed framing (the campaign journal, the
    columnar manifest-last protocol) must detect and discard.
    """
    path = Path(path)
    size = path.stat().st_size
    new_size = max(0, size - int(drop_bytes))
    with open(path, "r+b") as fh:
        fh.truncate(new_size)
        fh.flush()
        os.fsync(fh.fileno())
    return new_size
