"""Deterministic chaos harness for the fault-tolerant execution layer.

The paper's 13-month collection survived dead blades, node reboots and
partial data; our execution layer has to be validated against the same
adversities without flaky tests.  This module provides *seeded,
reproducible* failure injection: a :class:`ChaosPlan` is a pure function
of ``(seed, unit key, attempt)`` — the same discipline the per-node RNG
streams follow — so every chaos test replays bit-identically.

Fault kinds
-----------

``raise``
    The work unit raises :class:`~repro.core.errors.ChaosError` before
    doing any work (a crashed unit; side-effect-free, so a retry is safe).
``kill``
    The worker *process* dies with ``SIGKILL`` mid-unit — the executor
    sees :class:`~concurrent.futures.process.BrokenProcessPool`.  Only
    meaningful on the process backend; firing it in the driver process
    would kill the driver (which is exactly what the driver-kill resume
    tests do, from a sacrificial subprocess).
``hang``
    The unit sleeps far past any reasonable watchdog timeout, simulating
    a wedged node.  Recoverable only where the supervisor can kill the
    worker (process backend).

Torn writes — the fourth failure class of the campaign journal — are not
per-unit faults; :func:`tear_file` truncates a file mid-record the way a
power loss would, for checkpoint/resume tests.

Plans are frozen dataclasses: picklable, hashable, and safe to ship to
worker processes through the pool initializer or per-task arguments.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from .core.errors import ChaosError

#: Fault kinds a :class:`FaultRule` may inject.
FAULT_KINDS = ("raise", "kill", "hang")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *which* units fail, *when*, and *how*.

    ``key`` selects the unit (``None`` matches every unit); ``attempts``
    lists the 1-based attempt numbers the rule fires on (``None`` means
    every attempt — a *permanent* fault that must exhaust the retry
    budget).  ``probability`` thins the rule deterministically: whether a
    given ``(key, attempt)`` fires is decided by a hash of the plan seed,
    never by wall-clock randomness.
    """

    kind: str
    key: str | None = None
    attempts: tuple[int, ...] | None = (1,)
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def matches(self, key: str, attempt: int, seed: int) -> bool:
        if self.key is not None and self.key != key:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.probability >= 1.0:
            return True
        return _unit_uniform(seed, key, attempt, self.kind) < self.probability


def _unit_uniform(seed: int, key: str, attempt: int, salt: str) -> float:
    """Deterministic uniform draw in [0, 1) for one (key, attempt)."""
    blob = f"{seed}:{key}:{attempt}:{salt}".encode()
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded set of :class:`FaultRule` injections.

    ``decide`` is pure — repeated supervisors, resumed campaigns and
    worker processes all see the same faults for the same plan.
    ``hang_seconds`` bounds the ``hang`` fault so an *unsupervised* test
    run eventually unwedges instead of stalling CI forever.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    hang_seconds: float = 300.0

    def decide(self, key: str, attempt: int) -> FaultRule | None:
        """The first rule firing for this ``(key, attempt)``, if any."""
        for rule in self.rules:
            if rule.matches(key, attempt, self.seed):
                return rule
        return None

    def apply(self, key: str, attempt: int) -> None:
        """Inject the decided fault (no-op when no rule fires)."""
        rule = self.decide(key, attempt)
        if rule is None:
            return
        if rule.kind == "raise":
            raise ChaosError(
                f"injected failure on unit {key!r} (attempt {attempt})"
            )
        if rule.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if rule.kind == "hang":  # pragma: no cover - killed by the watchdog
            time.sleep(self.hang_seconds)


def raise_on(key: str, n_failures: int = 1, seed: int = 0) -> ChaosPlan:
    """A plan whose unit ``key`` raises on its first ``n_failures`` attempts."""
    return ChaosPlan(
        rules=(FaultRule("raise", key=key, attempts=tuple(range(1, n_failures + 1))),),
        seed=seed,
    )


def always_raise(key: str, seed: int = 0) -> ChaosPlan:
    """A plan whose unit ``key`` fails permanently (exhausts any budget)."""
    return ChaosPlan(rules=(FaultRule("raise", key=key, attempts=None),), seed=seed)


def kill_worker_on(key: str, attempts: tuple[int, ...] = (1,), seed: int = 0) -> ChaosPlan:
    """A plan SIGKILLing the worker running ``key`` on the given attempts."""
    return ChaosPlan(rules=(FaultRule("kill", key=key, attempts=attempts),), seed=seed)


def hang_on(
    key: str,
    attempts: tuple[int, ...] = (1,),
    hang_seconds: float = 300.0,
    seed: int = 0,
) -> ChaosPlan:
    """A plan wedging the unit ``key`` on the given attempts."""
    return ChaosPlan(
        rules=(FaultRule("hang", key=key, attempts=attempts),),
        seed=seed,
        hang_seconds=hang_seconds,
    )


def tear_file(path: str | Path, drop_bytes: int) -> int:
    """Truncate the last ``drop_bytes`` bytes of ``path`` (a torn write).

    Returns the new size.  Mimics a crash mid-append: the file ends
    inside a record, which checksummed framing (the campaign journal, the
    columnar manifest-last protocol) must detect and discard.
    """
    path = Path(path)
    size = path.stat().st_size
    new_size = max(0, size - int(drop_bytes))
    with open(path, "r+b") as fh:
        fh.truncate(new_size)
        fh.flush()
        os.fsync(fh.fileno())
    return new_size
