"""Per-node log archive.

The study keeps one log file per node; :class:`LogArchive` mirrors that:
records are appended per node, kept in chronological order, and can be
round-tripped through a directory of ``<node>.log`` files.
"""

from __future__ import annotations

import gzip
from collections import defaultdict
from pathlib import Path
from typing import Iterable, Iterator

from ..core.records import ErrorRecord, LogRecord, RecordKind
from .format import format_record, parse_line


def node_stem(path: Path) -> str:
    """The node name encoded in a log file name (``01-02.log[.gz]``)."""
    name = path.name
    if name.endswith(".log.gz"):
        return name[: -len(".log.gz")]
    if name.endswith(".log"):
        return name[: -len(".log")]
    return path.stem


def directory_log_files(path: str | Path) -> list[Path]:
    """Log files of a directory, deduplicated by node and stem-sorted.

    A directory holding both ``node.log`` and ``node.log.gz`` (e.g. a
    partially-compressed archive) yields the node once — the uncompressed
    file wins — and the result is sorted by node stem in one pass, so
    ``.log`` and ``.log.gz`` files interleave in deterministic node order
    instead of grouping by extension.  Shared by the text reader and the
    columnar ingest so both walk files identically.
    """
    directory = Path(path)
    by_stem: dict[str, Path] = {}
    for log_file in sorted(directory.glob("*.log")) + sorted(directory.glob("*.log.gz")):
        by_stem.setdefault(node_stem(log_file), log_file)
    return [by_stem[stem] for stem in sorted(by_stem)]


class LogArchive:
    """In-memory archive of every node's scanner log."""

    def __init__(self) -> None:
        self._by_node: dict[str, list[LogRecord]] = defaultdict(list)

    # -- building -----------------------------------------------------------

    def append(self, record: LogRecord) -> None:
        self._by_node[record.node].append(record)

    def extend(self, records: Iterable[LogRecord]) -> None:
        for record in records:
            self.append(record)

    def sort(self) -> None:
        """Sort every node's records chronologically (stable).

        Ties break on the record-kind *name* (``kind.value`` is the
        string tag), which is the archive's canonical record order: the
        columnar layer reproduces it exactly in
        :func:`repro.logs.columnar.canonical_sort_order`, so streamed
        and compacted archives stay bit-identical to this path.
        """
        for records in self._by_node.values():
            records.sort(key=lambda r: (r.timestamp_hours, r.kind.value))

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return sorted(self._by_node)

    def records(self, node: str) -> list[LogRecord]:
        return list(self._by_node.get(node, ()))

    def all_records(self) -> Iterator[LogRecord]:
        for node in self.nodes:
            yield from self._by_node[node]

    def error_records(self, node: str | None = None) -> Iterator[ErrorRecord]:
        nodes = [node] if node is not None else self.nodes
        for n in nodes:
            for record in self._by_node.get(n, ()):
                if record.kind is RecordKind.ERROR:
                    yield record

    def n_records(self) -> int:
        return sum(len(v) for v in self._by_node.values())

    def n_raw_error_lines(self) -> int:
        """Raw error-line count with repeat compression expanded.

        This is the paper's ">25 million error logs" number: each
        ``repeat_count`` stands for that many consecutive identical lines.
        """
        return sum(r.repeat_count for r in self.error_records())

    def error_frame(self):
        """All ERROR records as an :class:`~repro.logs.frame.ErrorFrame`.

        The record-loop reference implementation; the columnar archive's
        :meth:`~repro.logs.columnar.ColumnarArchive.error_frame` must
        match it bit-for-bit.
        """
        from .frame import ErrorFrame

        return ErrorFrame.from_records(self.error_records())

    # -- persistence -----------------------------------------------------------

    def write_directory(self, path: str | Path, compress: bool = False) -> None:
        """Write one ``<node>.log`` (or ``.log.gz``) file per node.

        A year of logs compresses ~10x; operators of the real study kept
        them gzipped the same way.
        """
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        for node in self.nodes:
            if compress:
                opener = gzip.open(directory / f"{node}.log.gz", "wt", encoding="ascii")
            else:
                opener = open(directory / f"{node}.log", "w", encoding="ascii")
            with opener as fh:
                for record in self._by_node[node]:
                    fh.write(format_record(record))
                    fh.write("\n")

    @classmethod
    def read_directory(cls, path: str | Path) -> "LogArchive":
        """Load an archive from a directory of (optionally gzipped) logs."""
        archive = cls()
        for log_file in directory_log_files(path):
            if log_file.suffix == ".gz":
                fh = gzip.open(log_file, "rt", encoding="ascii")
            else:
                fh = open(log_file, "r", encoding="ascii")
            with fh:
                for line in fh:
                    if line.strip():
                        archive.append(parse_line(line))
        return archive

    # -- columnar bridges ----------------------------------------------------

    def to_columnar(self, path: str | Path) -> dict:
        """Write this archive as a binary columnar directory.

        One ``<node>.npz`` shard per node plus a checksummed
        ``manifest.json``; see :mod:`repro.logs.columnar`.  Returns the
        manifest dict.
        """
        from .columnar import ColumnarArchive

        return ColumnarArchive.from_log_archive(self).save(path)

    @classmethod
    def from_columnar(cls, path: str | Path) -> "LogArchive":
        """Load a columnar directory back into record-object form.

        The exact inverse of :meth:`to_columnar` (checksums verified);
        round-trips bit-for-bit, including the text rendering of every
        record.
        """
        from .columnar import ColumnarArchive

        return ColumnarArchive.load(path).to_log_archive()
