"""Streaming columnar log ingestion and the binary shard archive.

The text logs (:mod:`repro.logs.format`) are the portable reference
representation, but at paper scale (>25M raw error lines) parsing them
one :class:`~repro.core.records.LogRecord` dataclass at a time dominates
wall time and memory.  This module provides the fast path:

* a chunked, memory-bounded **batch parser** that turns ``<node>.log[.gz]``
  files directly into column arrays — lines are split once, field payloads
  are sliced off by their fixed prefixes, and numeric conversion happens
  in bulk, so no per-line record object is ever created;
* :class:`RecordColumns`, the structure-of-arrays twin of a record list,
  exact enough to round-trip back to the text format bit-for-bit;
* :class:`ColumnarArchive`, the per-node archive in columnar form, with a
  **versioned binary format**: one ``<node>.npz`` shard per node plus a
  ``manifest.json`` carrying the format version, record counts, and a
  SHA-256 checksum per shard;
* per-file ingest fanned out over the :mod:`repro.parallel` backends.

The text path stays the reference implementation: both paths must produce
bit-identical :class:`~repro.logs.frame.ErrorFrame` contents and identical
extraction results (property-tested and enforced in CI).  Any line the
fast path cannot handle falls back to :func:`~repro.logs.format.parse_line`,
so malformed input fails with the same :class:`LogFormatError` family the
reference parser raises.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.errors import (
    ChecksumMismatchError,
    ColumnarFormatError,
    LogFormatError,
    ShardCorruptError,
    UnknownFormatVersionError,
)
from ..core.records import (
    AllocFailRecord,
    EndRecord,
    ErrorRecord,
    LogRecord,
    StartRecord,
)
from .format import parse_line
from .frame import ErrorFrame

#: Bump when the shard/manifest layout changes; readers reject archives
#: written by versions they do not understand.  Version 2 adds per-shard
#: **zone maps** to the manifest (min/max/count summaries the query
#: engine uses to skip shards; see :func:`compute_zone_map`) — the shard
#: layout itself is unchanged, so v1 shards remain readable and a v1
#: archive can be upgraded in place by rewriting only the manifest
#: (:func:`upgrade_archive`).  Version 3 makes the manifest a live-store
#: commit log (see :mod:`repro.logs.ingest` and docs/STORAGE.md): a
#: monotonic ``generation`` counter, per-entry LSM ``level``/``seq``
#: fields, a ``batches`` ledger for exactly-once ingest, and multi-node
#: L0 *segment* entries (``node: null`` plus a ``nodes`` list).  One
#: node may now be covered by several entries; readers assemble it in
#: ``seq`` order via :func:`merge_node_parts`.
FORMAT_VERSION = 3

#: Manifest versions this reader understands.  v1 archives simply lack
#: zone maps; consumers must treat a missing ``zone_map`` as "cannot
#: prune", never as "empty shard".  v2 archives lack generation/level/
#: seq bookkeeping; readers default those to a single generation of
#: level-1, one-entry-per-node shards.
SUPPORTED_VERSIONS = (1, 2, 3)

#: Magic string identifying a manifest as ours.
FORMAT_NAME = "repro-columnar"

MANIFEST_NAME = "manifest.json"

#: Lines parsed per batch by the streaming reader; bounds peak memory to
#: one batch of column staging lists regardless of file size.
DEFAULT_BATCH_LINES = 131_072

# Record-kind codes stored in the ``kind`` column (stable on-disk values).
KIND_START = 0
KIND_ERROR = 1
KIND_END = 2
KIND_ALLOC_FAIL = 3

#: Column name -> dtype of one shard (and of RecordColumns).
SHARD_COLUMNS: dict[str, np.dtype] = {
    "kind": np.dtype(np.uint8),
    "t": np.dtype(np.float64),
    "temp": np.dtype(np.float64),  # NaN == "not logged"
    "mb": np.dtype(np.int64),
    "va": np.dtype(np.int64),
    "pp": np.dtype(np.int64),
    "expected": np.dtype(np.uint32),
    "actual": np.dtype(np.uint32),
    "rep": np.dtype(np.int64),
}


# ---------------------------------------------------------------------------
# RecordColumns: structure-of-arrays twin of a list[LogRecord]
# ---------------------------------------------------------------------------


@dataclass
class RecordColumns:
    """Column-array form of a record sequence (all four record kinds).

    Non-applicable fields hold zeros (e.g. ``va`` on a START row); ``temp``
    is float64 with NaN for "not logged" so parsed temperatures survive
    exactly.  ``node_code`` indexes ``node_names`` — a per-node shard has a
    single name, but the parser tolerates mixed-node files the same way
    the reference reader does.
    """

    kind: np.ndarray
    t: np.ndarray
    temp: np.ndarray
    mb: np.ndarray
    va: np.ndarray
    pp: np.ndarray
    expected: np.ndarray
    actual: np.ndarray
    rep: np.ndarray
    node_code: np.ndarray
    node_names: list[str]

    def __len__(self) -> int:
        return int(self.kind.shape[0])

    # -- counts ------------------------------------------------------------

    @property
    def n_errors(self) -> int:
        return int((self.kind == KIND_ERROR).sum())

    @property
    def n_raw_lines(self) -> int:
        """Raw error-line count with repeat compression expanded."""
        return int(self.rep[self.kind == KIND_ERROR].sum())

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls) -> "RecordColumns":
        return cls(
            **{name: np.empty(0, dtype=dt) for name, dt in SHARD_COLUMNS.items()},
            node_code=np.empty(0, dtype=np.int32),
            node_names=[],
        )

    @classmethod
    def from_records(cls, records: Iterable[LogRecord]) -> "RecordColumns":
        """Reference columnarization: one pass over record objects.

        Word values are masked to 32 bits, matching
        :meth:`ErrorFrame._build`; the scanner only ever emits 32-bit
        words.
        """
        staging = _Staging()
        for record in records:
            code = staging.intern(record.node)
            if isinstance(record, ErrorRecord):
                staging.add_error_values(
                    record.timestamp_hours,
                    code,
                    record.virtual_address,
                    record.physical_page,
                    record.expected & 0xFFFFFFFF,
                    record.actual & 0xFFFFFFFF,
                    np.nan if record.temperature_c is None else record.temperature_c,
                    record.repeat_count,
                )
            elif isinstance(record, StartRecord):
                staging.add_plain(
                    KIND_START,
                    record.timestamp_hours,
                    code,
                    np.nan if record.temperature_c is None else record.temperature_c,
                    record.allocated_mb,
                )
            elif isinstance(record, EndRecord):
                staging.add_plain(
                    KIND_END,
                    record.timestamp_hours,
                    code,
                    np.nan if record.temperature_c is None else record.temperature_c,
                    0,
                )
            elif isinstance(record, AllocFailRecord):
                staging.add_plain(
                    KIND_ALLOC_FAIL, record.timestamp_hours, code, np.nan, 0
                )
            else:
                raise LogFormatError(
                    f"unknown record type {type(record).__name__}"
                )
        return staging.build()

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Every array column by name (``node_names`` travels separately).

        The serialization view used by the shard-arena handoff: the
        arrays spill to per-unit ``.npy`` files and
        :meth:`from_arrays` rebuilds the columns from their
        memory-mapped twins.
        """
        arrays = {name: getattr(self, name) for name in SHARD_COLUMNS}
        arrays["node_code"] = self.node_code
        return arrays

    @classmethod
    def from_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        node_names: Sequence[str],
    ) -> "RecordColumns":
        """Rebuild columns from :meth:`to_arrays` output.

        Accepts memory-mapped arrays unchanged when the dtype already
        matches (``np.asarray`` is a no-copy view then), so a claimed
        shard stays zero-copy until its rows are actually consumed.
        """
        return cls(
            **{
                name: np.asarray(arrays[name], dtype=dt)
                for name, dt in SHARD_COLUMNS.items()
            },
            node_code=np.asarray(arrays["node_code"], dtype=np.int32),
            node_names=list(node_names),
        )

    @classmethod
    def concat(cls, parts: Sequence["RecordColumns"]) -> "RecordColumns":
        """Concatenate batches, re-interning node codes across parts."""
        parts = [p for p in parts if len(p)]
        if not parts:
            return cls.empty()
        names: list[str] = []
        index: dict[str, int] = {}
        codes = []
        for part in parts:
            remap = np.empty(len(part.node_names), dtype=np.int32)
            for i, name in enumerate(part.node_names):
                code = index.get(name)
                if code is None:
                    code = len(names)
                    index[name] = code
                    names.append(name)
                remap[i] = code
            codes.append(remap[part.node_code] if len(part.node_names) else part.node_code)
        return cls(
            **{
                name: np.concatenate([getattr(p, name) for p in parts])
                for name in SHARD_COLUMNS
            },
            node_code=np.concatenate(codes),
            node_names=names,
        )

    # -- views -------------------------------------------------------------

    def take(self, order: np.ndarray) -> "RecordColumns":
        """Row-gather: the columns reindexed by ``order`` (no copy of names)."""
        return RecordColumns(
            **{name: getattr(self, name)[order] for name in SHARD_COLUMNS},
            node_code=self.node_code[order],
            node_names=list(self.node_names),
        )

    def split_by_node(self) -> dict[str, "RecordColumns"]:
        """Per-node column sets, preserving within-node record order.

        One stable sort on ``node_code`` plus per-node slicing, not a
        boolean mask per node — a fleet-sized segment splits in
        O(rows log rows), independent of how many nodes it covers.
        """
        order = np.argsort(self.node_code, kind="stable")
        grouped = self.take(order)
        codes = np.arange(len(self.node_names))
        starts = np.searchsorted(grouped.node_code, codes, side="left")
        stops = np.searchsorted(grouped.node_code, codes, side="right")
        out: dict[str, RecordColumns] = {}
        for code, name in enumerate(self.node_names):
            lo, hi = int(starts[code]), int(stops[code])
            out[name] = RecordColumns(
                **{col: getattr(grouped, col)[lo:hi] for col in SHARD_COLUMNS},
                node_code=np.zeros(hi - lo, dtype=np.int32),
                node_names=[name],
            )
        return out

    # -- materialization ---------------------------------------------------

    def to_records(self) -> list[LogRecord]:
        """Materialize record objects (the bridge back to the text path)."""
        records: list[LogRecord] = []
        names = self.node_names
        for i in range(len(self)):
            kind = int(self.kind[i])
            t = float(self.t[i])
            node = names[int(self.node_code[i])]
            tc = float(self.temp[i])
            temp = None if np.isnan(tc) else tc
            if kind == KIND_ERROR:
                records.append(
                    ErrorRecord(
                        timestamp_hours=t,
                        node=node,
                        virtual_address=int(self.va[i]),
                        physical_page=int(self.pp[i]),
                        expected=int(self.expected[i]),
                        actual=int(self.actual[i]),
                        temperature_c=temp,
                        repeat_count=int(self.rep[i]),
                    )
                )
            elif kind == KIND_START:
                records.append(
                    StartRecord(
                        timestamp_hours=t,
                        node=node,
                        allocated_mb=int(self.mb[i]),
                        temperature_c=temp,
                    )
                )
            elif kind == KIND_END:
                records.append(
                    EndRecord(timestamp_hours=t, node=node, temperature_c=temp)
                )
            elif kind == KIND_ALLOC_FAIL:
                records.append(AllocFailRecord(timestamp_hours=t, node=node))
            else:
                raise ColumnarFormatError(f"unknown kind code {kind}")
        return records


class _Staging:
    """Append-only column staging lists, bulk-converted once per batch."""

    __slots__ = (
        "kind", "t", "temp", "mb", "va", "pp", "expected", "actual", "rep",
        "node_code", "names", "index", "blocks",
    )

    def __init__(self) -> None:
        self.kind: list[int] = []
        self.t: list = []          # str or float; bulk-cast to f8
        self.temp: list = []       # str or float; bulk-cast to f8
        self.mb: list[int] = []
        self.va: list[int] = []
        self.pp: list[int] = []
        self.expected: list[int] = []
        self.actual: list[int] = []
        self.rep: list[int] = []
        self.node_code: list[int] = []
        self.names: list[str] = []
        self.index: dict[str, int] = {}
        self.blocks: list[dict[str, np.ndarray]] = []

    def intern(self, node: str) -> int:
        code = self.index.get(node)
        if code is None:
            code = len(self.names)
            self.index[node] = code
            self.names.append(node)
        return code

    def add_error_values(self, t, code, va, pp, exp, act, temp, rep) -> None:
        self.kind.append(KIND_ERROR)
        self.t.append(t)
        self.node_code.append(code)
        self.va.append(va)
        self.pp.append(pp)
        self.expected.append(exp)
        self.actual.append(act)
        self.temp.append(temp)
        self.rep.append(rep)
        self.mb.append(0)

    def add_plain(self, kind, t, code, temp, mb) -> None:
        self.kind.append(kind)
        self.t.append(t)
        self.node_code.append(code)
        self.temp.append(temp)
        self.mb.append(mb)
        self.va.append(0)
        self.pp.append(0)
        self.expected.append(0)
        self.actual.append(0)
        self.rep.append(0)

    def add_block(self, arrays: dict[str, np.ndarray]) -> None:
        """Append a pre-converted column block (the bulk ERROR-run path).

        Scalar rows staged so far are flushed first so record order is
        preserved when blocks and scalars interleave.
        """
        self._flush_scalars()
        self.blocks.append(arrays)

    def add_record(self, record: LogRecord) -> None:
        """Slow-path append of one already-parsed record."""
        code = self.intern(record.node)
        if isinstance(record, ErrorRecord):
            self.add_error_values(
                record.timestamp_hours,
                code,
                record.virtual_address,
                record.physical_page,
                record.expected & 0xFFFFFFFF,
                record.actual & 0xFFFFFFFF,
                np.nan if record.temperature_c is None else record.temperature_c,
                record.repeat_count,
            )
        elif isinstance(record, StartRecord):
            self.add_plain(
                KIND_START,
                record.timestamp_hours,
                code,
                np.nan if record.temperature_c is None else record.temperature_c,
                record.allocated_mb,
            )
        elif isinstance(record, EndRecord):
            self.add_plain(
                KIND_END,
                record.timestamp_hours,
                code,
                np.nan if record.temperature_c is None else record.temperature_c,
                0,
            )
        else:
            self.add_plain(KIND_ALLOC_FAIL, record.timestamp_hours, code, np.nan, 0)

    def _flush_scalars(self) -> None:
        """Bulk-convert the scalar staging lists into one column block."""
        if not self.kind:
            return
        self.blocks.append(
            {
                "kind": np.asarray(self.kind, dtype=np.uint8),
                "t": np.asarray(self.t, dtype=np.float64),
                "temp": np.asarray(self.temp, dtype=np.float64),
                "mb": np.asarray(self.mb, dtype=np.int64),
                "va": np.asarray(self.va, dtype=np.int64),
                "pp": np.asarray(self.pp, dtype=np.int64),
                "expected": np.asarray(self.expected, dtype=np.uint32),
                "actual": np.asarray(self.actual, dtype=np.uint32),
                "rep": np.asarray(self.rep, dtype=np.int64),
                "node_code": np.asarray(self.node_code, dtype=np.int32),
            }
        )
        for column in (
            self.kind, self.t, self.temp, self.mb, self.va, self.pp,
            self.expected, self.actual, self.rep, self.node_code,
        ):
            column.clear()

    def build(self) -> RecordColumns:
        self._flush_scalars()
        blocks = self.blocks
        if not blocks:
            empty = RecordColumns.empty()
            empty.node_names = self.names
            return empty
        if len(blocks) == 1:
            arrays = blocks[0]
        else:
            arrays = {
                name: np.concatenate([b[name] for b in blocks])
                for name in blocks[0]
            }
        return RecordColumns(
            **{name: arrays[name] for name in SHARD_COLUMNS},
            node_code=arrays["node_code"],
            node_names=self.names,
        )


# ---------------------------------------------------------------------------
# Batch text parser
# ---------------------------------------------------------------------------


#: Minimum consecutive ERROR lines worth the fixed cost of a bulk parse.
_ERROR_RUN_MIN = 32

#: Bytes of text per streaming chunk in the whole-file fast path.
_CHUNK_BYTES = 1 << 24

#: Place values for bulk fixed-point conversion.  Widths are capped so
#: every intermediate fits in int64 exactly (wider payloads fall back to
#: the per-line path and Python's arbitrary-precision ``int``).
_POW10 = 10 ** np.arange(18, dtype=np.int64)
_POW16 = 16 ** np.arange(15, dtype=np.int64)

#: (field index, expected prefix) for the nine positions of an ERROR line.
_ERROR_FIELD_PREFIXES = (
    (0, b"t="),
    (1, b"node="),
    (2, b"va=0x"),
    (3, b"pp=0x"),
    (4, b"exp=0x"),
    (5, b"act=0x"),
    (6, b"temp="),
    (7, b"rep="),
)

_LINE_HEAD = np.frombuffer(b"ERROR|", dtype=np.uint8)
_FIELD_PREFIX_ARRAYS = tuple(
    (col, np.frombuffer(prefix, dtype=np.uint8))
    for col, prefix in _ERROR_FIELD_PREFIXES
)

#: Flattened (pipe column, byte offset past the pipe, expected byte)
#: triples for all eight field prefixes, so one fancy gather validates
#: every prefix of every line at once.
_PREFIX_COL = np.concatenate(
    [np.full(p.size, col, dtype=np.int64) for col, p in _FIELD_PREFIX_ARRAYS]
)
_PREFIX_OFFSET = np.concatenate(
    [1 + np.arange(p.size) for _, p in _FIELD_PREFIX_ARRAYS]
)
_PREFIX_EXPECT = np.concatenate([p for _, p in _FIELD_PREFIX_ARRAYS])

#: Digit offsets of the ``exp=0x%08x|act=0x%08x`` block relative to the
#: ``exp`` pipe (valid once the fixed 15-byte field widths are checked).
_EXP_ACT_OFFSETS = np.concatenate([7 + np.arange(8), 22 + np.arange(8)])
_POW16_8 = 16 ** np.arange(7, -1, -1, dtype=np.int64)

#: byte -> digit value (-1 for non-digits); lowercase hex only, matching
#: what format_record emits.
_DEC_VALUE = np.full(256, -1, dtype=np.int8)
_DEC_VALUE[ord("0") : ord("9") + 1] = np.arange(10)
_HEX_VALUE = _DEC_VALUE.copy()
_HEX_VALUE[ord("a") : ord("f") + 1] = np.arange(10, 16)

#: Slack bytes appended after the encoded text so windowed gathers near
#: the end of the buffer never need index clipping.  Must exceed the
#: widest gather span (rep payloads, 18 digits) plus any prefix length.
_PAD = 32


def _encode_padded(
    chunk: str | bytes,
) -> tuple[np.ndarray, np.ndarray, bytes] | None:
    """Prepare a text blob for the byte engine, or None if non-ASCII str.

    Guarantees the returned buffer ends with a newline (a virtual one is
    appended when missing) followed by ``_PAD`` NUL slack bytes, and
    returns the newline positions plus the padded bytes (for slicing)
    alongside it.  ``bytes`` input skips the encode entirely; any
    non-ASCII byte in it fails the digit/prefix checks downstream and is
    diagnosed by the per-line fallback's strict decode.
    """
    if isinstance(chunk, str):
        try:
            raw = chunk.encode("ascii")
        except UnicodeEncodeError:
            return None
    else:
        raw = chunk
    if not raw.endswith(b"\n"):
        raw += b"\n"
    blob = raw + b"\x00" * _PAD
    buf = np.frombuffer(blob, dtype=np.uint8)
    return buf, np.flatnonzero(buf == ord("\n")), blob


def _uint_column(
    buf: np.ndarray, start: np.ndarray, end: np.ndarray, base: int, max_width: int
) -> np.ndarray | None:
    """Bulk-parse unsigned ``base``-10/16 payloads at ``buf[start:end)`` rows.

    Returns int64 values, or None (caller falls back) if any payload is
    empty, wider than ``max_width``, or holds a character outside the
    canonical digit set (``format_record`` emits lowercase hex only).
    ``buf`` must carry ``_PAD`` slack bytes (see :func:`_encode_padded`).
    """
    width = end - start
    if width.min() < 1 or width.max() > max_width:
        return None
    span = int(width.max())
    # Right-aligned gather: leading out-of-field positions are masked to
    # zero, which contributes nothing, so one constant place vector
    # serves every row regardless of its width.  (Payload starts are far
    # enough into each line that ``end - span`` never goes negative for
    # input that passed the prefix checks.)
    idx = end[:, None] + np.arange(-span, 0)
    mask = idx >= start[:, None]
    table = _HEX_VALUE if base == 16 else _DEC_VALUE
    v = table[buf[idx]] * mask
    if (v < 0).any():
        return None
    pow_vec = (_POW16 if base == 16 else _POW10)[span - 1 :: -1]
    return (v * pow_vec).sum(axis=1)


def _temp_column(
    buf: np.ndarray, start: np.ndarray, end: np.ndarray
) -> np.ndarray | None:
    """Bulk-parse ``temp=`` payloads: ``na`` -> NaN, else canonical ``%.2f``.

    A two-decimal fixed-point value is exact in one IEEE division
    (``cents / 100.0`` is the correctly-rounded nearest double, the same
    result ``float()`` gives), so the fast path matches the reference
    parser bit-for-bit.  Anything else — scientific notation, extra
    decimals — returns None for the per-line path.
    """
    width = end - start
    if width.min() < 1:
        return None
    out = np.full(start.shape[0], np.nan, dtype=np.float64)
    na = (width == 2) & (buf[start] == ord("n")) & (buf[start + 1] == ord("a"))
    numeric = ~na
    if not numeric.any():
        return out
    ns = start[numeric]
    ne = end[numeric]
    negative = buf[ns] == ord("-")
    ns = ns + negative
    if ((ne - ns) < 4).any() or (buf[ne - 3] != ord(".")).any():
        return None
    integral = _uint_column(buf, ns, ne - 3, 10, 15)
    if integral is None:
        return None
    cents_frac = _uint_column(buf, ne - 2, ne, 10, 2)
    if cents_frac is None:
        return None
    cents = integral * 100 + cents_frac
    if int(cents.max()) >= 2**53:
        return None  # not exactly representable; let float() decide
    values = cents.astype(np.float64) / 100.0
    out[numeric] = np.where(negative, -values, values)
    return out


def _error_columns_core(
    buf: np.ndarray,
    blob: bytes,
    starts: np.ndarray,
    newlines: np.ndarray,
    grid: np.ndarray,
    check_head: bool = True,
) -> tuple[dict, str] | None:
    """Columnar parse of lines whose pipe/newline positions are known.

    ``starts``/``newlines`` bound each line in ``buf`` (a padded ASCII
    buffer over ``blob``, see :func:`_encode_padded`); ``grid`` holds the
    8 candidate pipe positions per line.  Every field prefix is validated
    positionally and every numeric payload converts through a strict
    digit check, so the lines are accepted only if each is exactly what
    :func:`format_record` writes (single node, canonical layouts,
    ``expected != actual``, ``rep >= 1``).  Anything else returns None
    and the caller takes the per-line path, preserving the reference
    parser's accept/reject behaviour.  Only the timestamp needs real
    ``strtod``; it is the one column parsed from string slices.
    """
    n = int(starts.shape[0])
    # Each row of `grid` must fall inside its own line for the reshape to
    # mean "the 8 separators of line i".
    if not ((grid[:, 0] >= starts).all() and (grid[:, 7] < newlines).all()):
        return None
    if check_head and not (
        buf[starts[:, None] + np.arange(6)] == _LINE_HEAD
    ).all():
        return None
    if not (buf[grid[:, _PREFIX_COL] + _PREFIX_OFFSET] == _PREFIX_EXPECT).all():
        return None
    # Single-node check (one log file holds one node); mixed-node input
    # takes the per-line path.
    node_start = grid[:, 1] + 6
    node_end = grid[:, 2]
    node_width = node_end - node_start
    if node_width[0] < 1 or (node_width != node_width[0]).any():
        return None
    node_bytes = buf[node_start[:, None] + np.arange(int(node_width[0]))]
    if (node_bytes != node_bytes[0]).any():
        return None
    try:
        node = blob[int(node_start[0]) : int(node_end[0])].decode("ascii")
    except UnicodeDecodeError:
        return None
    va = _uint_column(buf, grid[:, 2] + 6, grid[:, 3], 16, 14)
    if va is None:
        return None
    pp = _uint_column(buf, grid[:, 3] + 6, grid[:, 4], 16, 14)
    if pp is None:
        return None
    if ((grid[:, 5] - grid[:, 4]) != 15).any() or ((grid[:, 6] - grid[:, 5]) != 15).any():
        return None  # exp/act are fixed-width %08x
    # One gather covers both fixed-width words; the shared width means a
    # single constant place vector and no per-row masking.
    ea = _HEX_VALUE[buf[grid[:, 4][:, None] + _EXP_ACT_OFFSETS]]
    if (ea < 0).any():
        return None
    expected = (ea[:, :8] * _POW16_8).sum(axis=1)
    actual = (ea[:, 8:] * _POW16_8).sum(axis=1)
    rep = _uint_column(buf, grid[:, 7] + 5, newlines, 10, 18)
    if rep is None:
        return None
    # Mirror ErrorRecord.__post_init__ so accept/reject matches the
    # reference parser.
    if (expected == actual).any() or (rep < 1).any():
        return None
    temp = _temp_column(buf, grid[:, 6] + 6, grid[:, 7])
    if temp is None:
        return None
    t_start = grid[:, 0] + 3
    t_end = grid[:, 1]
    t_width = t_end - t_start
    if t_width.min() < 1:
        return None
    t_span = int(t_width.max())
    try:
        if t_span <= 32:
            # Space-padded fixed-width bytes let numpy run its C strtod
            # (correctly rounded, same result as float()) over the whole
            # column without materializing Python strings.
            idx = t_start[:, None] + np.arange(t_span)
            t_bytes = np.where(idx < t_end[:, None], buf[idx], np.uint8(32))
            t = t_bytes.view(f"S{t_span}").ravel().astype(np.float64)
        else:
            t = np.asarray(
                [
                    blob[a:b].decode("ascii")
                    # repro: noqa[NPY002]: slow path for over-wide timestamps; bounds only
                    for a, b in zip(t_start.tolist(), t_end.tolist())
                ],
                dtype=np.float64,
            )
    except (ValueError, UnicodeDecodeError):
        return None
    columns = {
        "kind": np.full(n, KIND_ERROR, dtype=np.uint8),
        "t": t,
        "temp": temp,
        "mb": np.zeros(n, dtype=np.int64),
        "va": va,
        "pp": pp,
        "expected": expected.astype(np.uint32),
        "actual": actual.astype(np.uint32),
        "rep": rep,
    }
    return columns, node


def _bulk_error_columns(
    chunk: str, expected_ends: np.ndarray | None = None
) -> tuple[dict, str] | None:
    """Byte-level columnar parse of a newline-separated all-ERROR blob.

    ``expected_ends`` (newline position per line) lets callers that
    joined a list of lines verify the blob segments back into exactly
    those lines.
    """
    encoded = _encode_padded(chunk)
    if encoded is None:
        return None
    buf, newlines, blob = encoded
    n = int(newlines.size)
    if n == 0:
        return None
    if expected_ends is not None and (
        n != expected_ends.shape[0] or not np.array_equal(newlines, expected_ends)
    ):
        return None
    pipes = np.flatnonzero(buf == ord("|"))
    if pipes.size != 8 * n:
        return None
    starts = np.empty(n, dtype=np.int64)
    starts[0] = 0
    starts[1:] = newlines[:-1] + 1
    return _error_columns_core(buf, blob, starts, newlines, pipes.reshape(n, 8))


def _bulk_parse_error_run(run: list[str]) -> tuple[dict, str] | None:
    """Bulk-parse a list of consecutive ERROR lines (with or without
    trailing newlines), verifying the joined blob segments back into
    exactly the input lines."""
    n = len(run)
    lengths = np.fromiter(map(len, run), dtype=np.int64, count=n)
    if run[0].endswith("\n"):
        chunk = "".join(run)
        ends = np.cumsum(lengths) - 1
        if not chunk.endswith("\n"):
            ends[-1] += 1  # the engine appends the virtual final newline
    else:
        # "\n".join inserts n-1 separators; the +1 on every line already
        # counts the virtual final newline the engine appends.
        chunk = "\n".join(run)
        ends = np.cumsum(lengths + 1) - 1
    return _bulk_error_columns(chunk, ends)


def _append_error_block(staging: _Staging, columns: dict, node: str) -> None:
    code = staging.intern(node)
    columns["node_code"] = np.full(
        int(columns["kind"].shape[0]), code, dtype=np.int32
    )
    staging.add_block(columns)


def parse_lines(lines: Iterable[str]) -> RecordColumns:
    """Parse a batch of log lines into columns, no record objects.

    Runs of consecutive ERROR lines — the overwhelming bulk of any real
    archive — are parsed column-wise in one pass by
    :func:`_bulk_parse_error_run`.  Everything else takes a per-line fast
    path that assumes the exact field order :func:`format_record` writes;
    any line that deviates — reordered fields, unknown kinds, malformed
    or half-written lines — is handed to :func:`parse_line`, which either
    recovers it (it accepts any field order) or raises the same
    :class:`LogFormatError` the text reference path would.  Blank lines
    are skipped, as in :meth:`LogArchive.read_directory`.
    """
    lines = list(lines)
    staging = _Staging()
    n_lines = len(lines)
    i = 0
    try:
        while i < n_lines:
            raw = lines[i]
            if raw.startswith("ERROR|"):
                j = i + 1
                while j < n_lines and lines[j].startswith("ERROR|"):
                    j += 1
                if j - i >= _ERROR_RUN_MIN:
                    bulk = _bulk_parse_error_run(lines[i:j])
                    if bulk is not None:
                        _append_error_block(staging, *bulk)
                        i = j
                        continue
                for k in range(i, j):
                    _parse_one(staging, lines[k])
                i = j
            else:
                _parse_one(staging, raw)
                i += 1
        return staging.build()
    except ValueError as exc:
        # A fast-path string payload (timestamp/temperature) failed bulk
        # numeric conversion; re-parse line-by-line for a precise error.
        for raw in lines:
            if raw.strip():
                parse_line(raw)
        raise LogFormatError(f"unparseable numeric field in batch: {exc}") from exc


def _parse_one(staging: _Staging, raw: str) -> None:
    """Per-line fast path with reference-parser fallback (order preserved)."""
    line = raw.rstrip("\n")
    if not line or not line.strip():
        return
    parts = line.split("|")
    try:
        if (
            len(parts) == 9
            and parts[0] == "ERROR"
            and parts[1].startswith("t=")
            and parts[2].startswith("node=")
            and parts[3].startswith("va=0x")
            and parts[4].startswith("pp=0x")
            and parts[5].startswith("exp=0x")
            and parts[6].startswith("act=0x")
            and parts[7].startswith("temp=")
            and parts[8].startswith("rep=")
        ):
            expected = int(parts[5][6:], 16)
            actual = int(parts[6][6:], 16)
            repeat = int(parts[8][4:])
            # Lines ErrorRecord.__post_init__ would reject go through the
            # reference parser so they raise the same LogFormatError.
            if expected != actual and repeat >= 1:
                temp = parts[7][5:]
                staging.add_error_values(
                    parts[1][2:],
                    staging.intern(parts[2][5:]),
                    int(parts[3][5:], 16),
                    int(parts[4][5:], 16),
                    expected,
                    actual,
                    "nan" if temp == "na" else temp,
                    repeat,
                )
                return
        if (
            len(parts) == 5
            and parts[0] == "START"
            and parts[1].startswith("t=")
            and parts[2].startswith("node=")
            and parts[3].startswith("mb=")
            and parts[4].startswith("temp=")
        ):
            temp = parts[4][5:]
            staging.add_plain(
                KIND_START,
                parts[1][2:],
                staging.intern(parts[2][5:]),
                "nan" if temp == "na" else temp,
                int(parts[3][3:]),
            )
            return
        if (
            len(parts) == 4
            and parts[0] == "END"
            and parts[1].startswith("t=")
            and parts[2].startswith("node=")
            and parts[3].startswith("temp=")
        ):
            temp = parts[3][5:]
            staging.add_plain(
                KIND_END,
                parts[1][2:],
                staging.intern(parts[2][5:]),
                "nan" if temp == "na" else temp,
                0,
            )
            return
        if (
            len(parts) == 3
            and parts[0] == "ALLOC_FAIL"
            and parts[1].startswith("t=")
            and parts[2].startswith("node=")
        ):
            staging.add_plain(
                KIND_ALLOC_FAIL,
                parts[1][2:],
                staging.intern(parts[2][5:]),
                "nan",
                0,
            )
            return
    except ValueError:
        pass  # bad numeric payload: let the reference parser diagnose
    staging.add_record(parse_line(line))


def _parse_chunk_fast(staging: _Staging, chunk: str | bytes) -> bool:
    """Byte-level parse of a newline-separated blob, no line splitting.

    The encoded buffer is segmented once into maximal runs of
    ``ERROR|``-prefixed lines — each bulk-parsed by
    :func:`_error_columns_core` straight from the shared pipe/newline
    position arrays — and everything else (START/END/ALLOC_FAIL lines,
    short runs, anything non-canonical), which is sliced out and handed
    to :func:`_parse_one` line by line.  Returns False for non-ASCII
    str input; the caller falls back to the line path.
    """
    encoded = _encode_padded(chunk)
    if encoded is None:
        return False
    buf, newlines, blob = encoded
    n = int(newlines.size)
    if n == 0:
        return True
    starts = np.empty(n, dtype=np.int64)
    starts[0] = 0
    starts[1:] = newlines[:-1] + 1
    is_err = (buf[starts[:, None] + np.arange(6)] == _LINE_HEAD).all(axis=1)
    pipes = np.flatnonzero(buf == ord("|"))
    edges = np.flatnonzero(is_err[1:] != is_err[:-1]) + 1
    # repro: noqa[NPY002]: run boundaries only — O(runs), not O(lines)
    bounds = [0, *edges.tolist(), n]
    for lo, hi in zip(bounds, bounds[1:]):
        if is_err[lo] and hi - lo >= _ERROR_RUN_MIN:
            seg_starts = starts[lo:hi]
            seg_ends = newlines[lo:hi]
            p0 = int(np.searchsorted(pipes, seg_starts[0]))
            p1 = int(np.searchsorted(pipes, seg_ends[-1]))
            if p1 - p0 == 8 * (hi - lo):
                bulk = _error_columns_core(
                    buf,
                    blob,
                    seg_starts,
                    seg_ends,
                    pipes[p0:p1].reshape(hi - lo, 8),
                    check_head=False,
                )
                if bulk is not None:
                    _append_error_block(staging, *bulk)
                    continue
        # repro: noqa[NPY002]: slow-path fallback — these lines re-parse one by one anyway
        for a, b in zip(starts[lo:hi].tolist(), newlines[lo:hi].tolist()):
            # Strict decode: a non-ASCII byte raises UnicodeDecodeError
            # exactly as the text reference path does at read time.
            _parse_one(staging, blob[a:b].decode("ascii"))
    return True


def parse_chunk(chunk: str | bytes) -> RecordColumns:
    """Parse a newline-separated blob of log text into columns.

    The blob is parsed in place at byte level by
    :func:`_parse_chunk_fast` (the dominant path at paper scale); only
    non-ASCII str input falls back to :func:`parse_lines` over split
    lines.
    """
    staging = _Staging()
    try:
        if not _parse_chunk_fast(staging, chunk):
            return parse_lines(chunk.split("\n"))
        return staging.build()
    except UnicodeDecodeError:
        raise
    except ValueError as exc:
        # A fast-path string payload (timestamp/temperature) failed bulk
        # numeric conversion; re-parse line-by-line for a precise error.
        text = chunk.decode("ascii") if isinstance(chunk, bytes) else chunk
        for raw in text.split("\n"):
            if raw.strip():
                parse_line(raw)
        raise LogFormatError(f"unparseable numeric field in batch: {exc}") from exc


def _open_text(path: Path):
    import gzip

    if path.name.endswith(".gz"):
        return gzip.open(path, "rt", encoding="ascii")
    return open(path, "r", encoding="ascii")


def _open_binary(path: Path):
    import gzip

    if path.name.endswith(".gz"):
        return gzip.open(path, "rb")
    return open(path, "rb")


def _iter_byte_chunks(path: str | Path) -> Iterator[bytes]:
    """Stream a log file as newline-aligned byte blobs of ~_CHUNK_BYTES.

    Binary reads skip the text-mode decode; the byte engine validates
    ASCII-ness itself (see :func:`_parse_chunk_fast`).
    """
    with _open_binary(Path(path)) as fh:
        tail = b""
        while True:
            block = fh.read(_CHUNK_BYTES)
            if not block:
                if tail:
                    yield tail
                return
            if tail:
                block = tail + block
            cut = block.rfind(b"\n")
            if cut < 0:
                tail = block
                continue
            tail = block[cut + 1 :]
            yield block[: cut + 1]


def iter_record_batches(
    path: str | Path, batch_lines: int = DEFAULT_BATCH_LINES
) -> Iterator[RecordColumns]:
    """Stream a log file as column batches of at most ``batch_lines`` rows."""
    if batch_lines < 1:
        raise ValueError("batch_lines must be >= 1")
    with _open_text(Path(path)) as fh:
        while True:
            chunk = list(islice(fh, batch_lines))
            if not chunk:
                return
            yield parse_lines(chunk)


def read_log_file(
    path: str | Path, batch_lines: int = DEFAULT_BATCH_LINES
) -> RecordColumns:
    """One whole ``<node>.log[.gz]`` file as a single column set.

    With the default batch size the file streams through
    :func:`parse_chunk` in newline-aligned byte blocks, skipping the
    per-line list entirely; an explicit ``batch_lines`` takes the
    line-batched path (same results, row-count-bounded batches).
    """
    if batch_lines != DEFAULT_BATCH_LINES:
        return RecordColumns.concat(list(iter_record_batches(path, batch_lines)))
    return RecordColumns.concat(
        [parse_chunk(chunk) for chunk in _iter_byte_chunks(path)]
    )


def _ingest_file(path_str: str) -> RecordColumns:
    """Module-level per-file work unit (picklable for the process backend)."""
    return read_log_file(path_str)


# ---------------------------------------------------------------------------
# Canonical record order
# ---------------------------------------------------------------------------


#: Tie rank of each kind *code* under the text path's sort key.  The
#: reference :meth:`LogArchive.sort` orders equal-timestamp records by
#: ``RecordKind.value`` — a *string* — so the tie order is alphabetical:
#: ALLOC_FAIL < END < ERROR < START, i.e. rank ``3 - code`` for the
#: stable on-disk codes 0..3.  Every columnar merge must reproduce this
#: exact order or streamed archives stop being bit-identical to batch
#: ones.
_KIND_SORT_RANK = np.array([3, 2, 1, 0], dtype=np.int64)


def canonical_sort_order(
    t: np.ndarray, kind: np.ndarray, group: np.ndarray | None = None
) -> np.ndarray:
    """Stable permutation into the archive's canonical record order.

    Primary key: timestamp.  Secondary key: the record-kind *name* in
    string order (see :data:`_KIND_SORT_RANK`), matching
    :meth:`repro.logs.store.LogArchive.sort` tie for tie.  Stability
    means equal ``(t, kind)`` rows keep their input order, which is how
    multi-part merges preserve commit (``seq``) order among ties.

    With ``group`` (an integer key per row) the permutation sorts by
    group first, then the canonical key within each group — equivalent
    to canonically sorting every group on its own, in one pass.  The
    compactor uses this to merge a whole multi-node component without
    materializing per-node intermediates.
    """
    rank = _KIND_SORT_RANK[np.asarray(kind, dtype=np.int64)]
    keys: tuple[np.ndarray, ...] = (rank, np.asarray(t, dtype=np.float64))
    if group is not None:
        keys = keys + (np.asarray(group, dtype=np.int64),)
    return np.lexsort(keys)


def merge_node_parts(parts: Sequence[RecordColumns]) -> RecordColumns:
    """Canonical merge of one node's shard parts (caller orders by seq).

    A single part passes through untouched — legacy one-shard-per-node
    archives keep their raw on-disk order, and live L0 batches are
    canonically sorted at append time, so both cases are already in
    final order.  Multiple parts concatenate and stable-sort by the
    canonical key; ties therefore resolve in part (commit) order.
    """
    parts = [p for p in parts if len(p)]
    if not parts:
        return RecordColumns.empty()
    if len(parts) == 1:
        return parts[0]
    merged = RecordColumns.concat(parts)
    return merged.take(canonical_sort_order(merged.t, merged.kind))


def entry_nodes(entry: dict) -> list[str]:
    """Node names covered by one manifest entry (1 shard or N-node segment)."""
    node = entry.get("node")
    if node is not None:
        return [node]
    return list(entry.get("nodes") or [])


# ---------------------------------------------------------------------------
# Zone maps
# ---------------------------------------------------------------------------


def compute_zone_map(cols: RecordColumns) -> dict:
    """Per-shard min/max/count summary used for predicate pruning.

    The summary must stay *conservative*: a shard may only be skipped
    when the zone map proves no row can match, so every entry describes
    the full range actually present.  ``temp`` ranges ignore NaN ("not
    logged") rows and carry ``n_temp`` so null/not-null predicates can
    prune too; ``bits`` is the flipped-bit-count range over ERROR rows
    (the paper's "#bits"), which is what lets multi-bit queries skip
    single-bit-only shards without opening them.
    """
    from ..core import bitops

    n = len(cols)
    zone: dict = {
        "n_records": n,
        "t": None,
        "temp": None,
        "n_temp": 0,
        "kinds": {},
        "bits": None,
    }
    if n == 0:
        return zone
    zone["t"] = [float(cols.t.min()), float(cols.t.max())]
    has_temp = ~np.isnan(cols.temp)
    n_temp = int(has_temp.sum())
    zone["n_temp"] = n_temp
    if n_temp:
        logged = cols.temp[has_temp]
        zone["temp"] = [float(logged.min()), float(logged.max())]
    kinds, counts = np.unique(cols.kind, return_counts=True)
    zone["kinds"] = {str(int(k)): int(c) for k, c in zip(kinds, counts)}
    err = cols.kind == KIND_ERROR
    if err.any():
        bits = np.asarray(
            bitops.n_flipped_bits(cols.expected[err], cols.actual[err]),
            dtype=np.int64,
        ).reshape(-1)
        zone["bits"] = [int(bits.min()), int(bits.max())]
    return zone


def manifest_fingerprint(manifest: dict) -> str:
    """Content fingerprint of an archive: digest over its shard digests.

    Stable across manifest rewrites that do not change shard bytes
    (e.g. a zone-map backfill), so query-result cache entries survive a
    ``repro logs upgrade`` — same data, same key.  v3 segment entries
    (``node: null``) hash under the empty node label; for v1/v2
    manifests the sort key and hashed bytes reduce to the historical
    per-node form, so existing fingerprints are unchanged.  Every ingest
    or compaction commit changes the shard population, hence the
    fingerprint — which is what invalidates query caches (see
    docs/STORAGE.md).
    """
    digest = hashlib.sha256()
    entries = sorted(
        manifest["shards"], key=lambda e: ((e.get("node") or ""), e["file"])
    )
    for entry in entries:
        digest.update((entry.get("node") or "").encode())
        digest.update(entry["sha256"].encode())
    return digest.hexdigest()


def shard_payload(cols: RecordColumns, node_label: str) -> bytes:
    """Serialized ``.npz`` bytes of one shard/segment (shared writer path).

    ``node_label`` is the scalar stored under the ``node`` member: the
    node name for per-node shards, ``""`` for multi-node segments (whose
    real names live in ``node_names``/``node_code``).
    """
    buffer = io.BytesIO()
    np.savez(
        buffer,
        format_version=np.asarray(FORMAT_VERSION, dtype=np.int64),
        # repro: noqa[NPY001]: unicode columns — width (<U#) must be value-inferred
        node=np.asarray(node_label),
        # repro: noqa[NPY001]: unicode columns — width (<U#) must be value-inferred
        node_names=np.asarray(cols.node_names),
        node_code=cols.node_code,
        **{name: getattr(cols, name) for name in SHARD_COLUMNS},
    )
    return buffer.getvalue()


def write_manifest_atomic(
    path: str | Path, manifest: dict, *, before_replace=None
) -> None:
    """Durably commit ``manifest.json``: temp file + fsync + atomic rename.

    The commit point is the ``os.replace``; a crash before it leaves the
    previous manifest fully intact, a crash after it leaves the new one.
    ``before_replace`` is a test hook (crash injection between durability
    and visibility); production callers leave it None.
    """
    import os
    import tempfile

    from ..core.fsio import fsync_dir

    manifest_path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=manifest_path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if before_replace is not None:
            before_replace()
        os.replace(tmp, manifest_path)
        fsync_dir(manifest_path.parent)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


# ---------------------------------------------------------------------------
# ColumnarArchive
# ---------------------------------------------------------------------------


class ColumnarArchive:
    """Per-node log archive held as column arrays.

    The columnar twin of :class:`~repro.logs.store.LogArchive`: same
    query API (``nodes``, ``records``, ``error_records``, counts), but
    errors reach the analysis as an :class:`ErrorFrame` without ever
    materializing record objects.  Persisted as one ``.npz`` shard per
    node plus a checksummed manifest (see :meth:`save` / :meth:`load`).
    """

    def __init__(self, columns_by_node: dict[str, RecordColumns] | None = None):
        self._by_node: dict[str, RecordColumns] = dict(columns_by_node or {})
        #: node -> ShardCorruptError for shards dropped by a degraded load
        #: (``load(..., skip_corrupt=True)``); empty on a clean archive.
        self.skipped_shards: dict[str, ShardCorruptError] = {}
        #: The manifest this archive was loaded from, if any.
        self.manifest: dict | None = None
        # Lazy-load state (entry-granular, since one v3 segment entry may
        # cover many nodes): file -> entry not yet decoded, node -> files
        # covering it, node -> decoded-but-unmerged (seq, part) pairs.
        # An entry is always consumed atomically — decoding distributes
        # *all* its nodes into ``_parts`` — so pending-entry counts and
        # loaded-part counts never overlap.
        self._pending: dict[str, dict] = {}
        self._node_files: dict[str, list[str]] = {}
        self._parts: dict[str, list[tuple[int, RecordColumns]]] = {}
        self._directory: Path | None = None
        self._verify_checksums = True

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_log_archive(cls, archive) -> "ColumnarArchive":
        """Columnarize an in-memory :class:`LogArchive` (reference path)."""
        return cls(
            {
                node: RecordColumns.from_records(archive.records(node))
                for node in archive.nodes
            }
        )

    @classmethod
    def read_text_directory(
        cls,
        path: str | Path,
        *,
        workers: int | None = None,
        backend: str | None = None,
        batch_lines: int = DEFAULT_BATCH_LINES,
    ) -> "ColumnarArchive":
        """Ingest a directory of text logs, one parallel work unit per file.

        Files are deduplicated by node stem and stem-sorted (shared with
        the reference reader), so node order — and therefore every
        downstream frame — is deterministic regardless of backend.
        """
        from ..parallel import parallel_map, resolve_backend, resolve_workers
        from .store import directory_log_files

        files = directory_log_files(path)
        n_workers = resolve_workers(workers)
        exec_backend = resolve_backend(backend, n_workers)
        if batch_lines == DEFAULT_BATCH_LINES:
            parts = parallel_map(
                _ingest_file,
                [str(p) for p in files],
                backend=exec_backend,
                workers=n_workers,
            )
        else:
            parts = [read_log_file(p, batch_lines) for p in files]
        merged = RecordColumns.concat(parts)
        return cls(merged.split_by_node())

    # -- queries -----------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return sorted(
            self._by_node.keys() | self._node_files.keys() | self._parts.keys()
        )

    def columns(self, node: str) -> RecordColumns:
        cols = self._by_node.get(node)
        if cols is None and (node in self._node_files or node in self._parts):
            cols = self._assemble(node)
        return cols if cols is not None else RecordColumns.empty()

    def _decode_entry(self, entry: dict) -> None:
        """Read one manifest entry and distribute its rows into ``_parts``."""
        cols = _load_shard(
            self._directory, entry, verify_checksum=self._verify_checksums
        )
        seq = int(entry.get("seq") or 0)
        node = entry.get("node")
        if node is not None:
            self._parts.setdefault(node, []).append((seq, cols))
        else:
            for name, sub in cols.split_by_node().items():
                self._parts.setdefault(name, []).append((seq, sub))

    def _assemble(self, node: str) -> RecordColumns:
        """Materialize one node: decode its covering entries, merge parts."""
        for filename in self._node_files.pop(node, ()):
            entry = self._pending.pop(filename, None)
            if entry is not None:  # None: already decoded via a sibling node
                self._decode_entry(entry)
        parts = sorted(self._parts.pop(node, []), key=lambda p: p[0])
        cols = merge_node_parts([part for _, part in parts])
        self._by_node[node] = cols
        return cols

    def is_loaded(self, node: str) -> bool:
        """False while a lazily-opened shard has not been read from disk."""
        return node in self._by_node

    def records(self, node: str) -> list[LogRecord]:
        return self.columns(node).to_records()

    def all_records(self) -> Iterator[LogRecord]:
        for node in self.nodes:
            yield from self.records(node)

    def error_records(self, node: str | None = None) -> Iterator[ErrorRecord]:
        nodes = [node] if node is not None else self.nodes
        for n in nodes:
            for record in self.records(n):
                if isinstance(record, ErrorRecord):
                    yield record

    def _pending_count(self, field: str) -> int:
        """Sum a manifest count over rows not yet merged into ``_by_node``:
        undecoded entries contribute their manifest totals (decoding only
        those whose entry lacks the field — hand-edited manifests), and
        decoded-but-unmerged parts are counted directly."""
        total = 0
        for filename, entry in list(self._pending.items()):
            value = entry.get(field)
            if value is None:
                del self._pending[filename]
                self._decode_entry(entry)
                continue  # its rows are in _parts now, counted below
            total += int(value)
        for parts in self._parts.values():
            for _, cols in parts:
                total += (
                    len(cols) if field == "n_records" else int(getattr(cols, field))
                )
        return total

    def n_records(self) -> int:
        return sum(len(c) for c in self._by_node.values()) + self._pending_count(
            "n_records"
        )

    def n_errors(self) -> int:
        return sum(c.n_errors for c in self._by_node.values()) + self._pending_count(
            "n_errors"
        )

    def n_raw_error_lines(self) -> int:
        """The paper's ">25 million error logs" number (repeats expanded)."""
        return sum(
            c.n_raw_lines for c in self._by_node.values()
        ) + self._pending_count("n_raw_lines")

    # -- the fast path -----------------------------------------------------

    def error_frame(self) -> ErrorFrame:
        """All ERROR rows as an :class:`ErrorFrame`, fully vectorized.

        Matches ``ErrorFrame.from_records(archive.error_records())``
        bit-for-bit: nodes are visited in sorted order and codes assigned
        at first error appearance, which is exactly the interning order
        the record-loop constructor produces.
        """
        names: list[str] = []
        chunks: list[tuple[RecordColumns, np.ndarray, int]] = []
        for node in self.nodes:
            cols = self.columns(node)  # materializes lazy shards
            mask = cols.kind == KIND_ERROR
            if not mask.any():
                continue
            chunks.append((cols, mask, len(names)))
            names.append(node)
        if not chunks:
            return ErrorFrame.from_records([])
        return ErrorFrame.from_columns(
            time_hours=np.concatenate([c.t[m] for c, m, _ in chunks]),
            node_code=np.concatenate(
                [np.full(int(m.sum()), code, dtype=np.int32) for _, m, code in chunks]
            ),
            node_names=names,
            expected=np.concatenate([c.expected[m] for c, m, _ in chunks]),
            actual=np.concatenate([c.actual[m] for c, m, _ in chunks]),
            virtual_address=np.concatenate([c.va[m] for c, m, _ in chunks]),
            physical_page=np.concatenate([c.pp[m] for c, m, _ in chunks]),
            temperature_c=np.concatenate([c.temp[m] for c, m, _ in chunks]),
            repeat_count=np.concatenate([c.rep[m] for c, m, _ in chunks]),
        )

    # -- bridges -----------------------------------------------------------

    def to_log_archive(self):
        """Materialize the record-object archive (reference form)."""
        from .store import LogArchive

        archive = LogArchive()
        for node in self.nodes:
            archive.extend(self.records(node))
        return archive

    def write_text_directory(self, path: str | Path, compress: bool = False) -> None:
        self.to_log_archive().write_directory(path, compress=compress)

    # -- binary persistence ------------------------------------------------

    def save(self, path: str | Path) -> dict:
        """Write one ``.npz`` shard per node plus the checksummed manifest.

        Returns the manifest dict.  Writing the manifest last means a
        half-written directory fails loudly on load (missing manifest)
        rather than silently truncating the archive.
        """
        from .. import __version__

        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        shards = []
        for seq, node in enumerate(self.nodes):
            cols = self.columns(node)  # materializes lazy shards
            filename = f"{node}.npz"
            payload = shard_payload(cols, node)
            (directory / filename).write_bytes(payload)
            shards.append(
                {
                    "node": node,
                    "file": filename,
                    "sha256": hashlib.sha256(payload).hexdigest(),
                    "n_records": len(cols),
                    "n_errors": cols.n_errors,
                    "n_raw_lines": cols.n_raw_lines,
                    "zone_map": compute_zone_map(cols),
                    # One fully-compacted shard per node: a batch save is
                    # a single-generation archive of level-1 sorted runs.
                    "level": 1,
                    "seq": seq,
                }
            )
        manifest = {
            "format": FORMAT_NAME,
            "format_version": FORMAT_VERSION,
            "writer": f"repro {__version__}",
            "generation": 1,
            "next_seq": len(shards),
            "batches": [],
            "n_nodes": len(shards),
            "n_records": self.n_records(),
            "n_errors": self.n_errors(),
            "n_raw_lines": self.n_raw_error_lines(),
            "shards": shards,
        }
        manifest_path = directory / MANIFEST_NAME
        manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return manifest

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        verify_checksums: bool = True,
        skip_corrupt: bool = False,
        lazy: bool = False,
    ) -> "ColumnarArchive":
        """Read a columnar archive, validating version, layout and checksums.

        Per-shard damage (missing file, torn bytes, checksum mismatch,
        node/count mismatch) raises :class:`ShardCorruptError` naming the
        node.  With ``skip_corrupt=True`` the load degrades instead: bad
        shards are dropped, the surviving population is returned, and the
        damage is recorded on ``archive.skipped_shards`` (node ->
        exception) — the same accounting the paper applies to dead blades.
        Archive-level problems (missing/corrupt manifest, unknown format
        version) stay fatal either way.

        With ``lazy=True`` only the manifest is read eagerly; each node's
        shard(s) are read (and checksum-verified) on first access, so
        touching one node of a thousand-node archive costs one file read
        (plus, under v3, any multi-node segment covering it).  Counts
        come from the manifest without any shard I/O.  Lazy loads cannot
        degrade — shard damage surfaces at first access as the usual
        :class:`ShardCorruptError` — so ``skip_corrupt`` is rejected in
        combination with ``lazy``.

        v3 archives may cover one node with several entries (live L0
        segments plus compacted runs); parts are assembled in commit
        (``seq``) order through :func:`merge_node_parts`, and a corrupt
        entry under ``skip_corrupt`` drops *every* node it covers (a
        partially-assembled node would silently miss records).
        """
        if lazy and skip_corrupt:
            raise ValueError(
                "skip_corrupt requires eager loading (lazy=False): a lazy "
                "load cannot know which shards are damaged up front"
            )
        directory = Path(path)
        manifest = read_manifest(directory)
        archive = cls()
        archive.manifest = manifest
        archive._directory = directory
        archive._verify_checksums = verify_checksums
        if lazy:
            archive._pending = {e["file"]: e for e in manifest["shards"]}
            for entry in manifest["shards"]:
                for name in entry_nodes(entry):
                    archive._node_files.setdefault(name, []).append(entry["file"])
            return archive
        skipped: dict[str, ShardCorruptError] = {}
        parts: dict[str, list[tuple[int, RecordColumns]]] = {}
        for entry in manifest["shards"]:
            try:
                cols = _load_shard(
                    directory, entry, verify_checksum=verify_checksums
                )
            except ShardCorruptError as exc:
                if not skip_corrupt:
                    raise
                for name in entry_nodes(entry):
                    skipped[name] = exc
                continue
            seq = int(entry.get("seq") or 0)
            if entry.get("node") is not None:
                parts.setdefault(entry["node"], []).append((seq, cols))
            else:
                for name, sub in cols.split_by_node().items():
                    parts.setdefault(name, []).append((seq, sub))
        for name, node_parts in parts.items():
            if name in skipped:
                continue  # incomplete node: dead-blade accounting
            node_parts.sort(key=lambda p: p[0])
            archive._by_node[name] = merge_node_parts(
                [part for _, part in node_parts]
            )
        archive.skipped_shards = skipped
        return archive


def read_manifest(path: str | Path) -> dict:
    """Load and validate ``manifest.json`` (format, version, shard list)."""
    manifest_path = Path(path) / MANIFEST_NAME
    try:
        text = manifest_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ColumnarFormatError(
            f"not a columnar archive (no {MANIFEST_NAME}): {manifest_path}"
        ) from exc
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ColumnarFormatError(f"corrupt manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise ColumnarFormatError(
            f"{manifest_path} is not a {FORMAT_NAME!r} manifest"
        )
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise UnknownFormatVersionError(
            f"archive format version {version!r} not supported "
            f"(this reader understands versions {SUPPORTED_VERSIONS})"
        )
    shards = manifest.get("shards")
    if not isinstance(shards, list):
        raise ColumnarFormatError(f"manifest {manifest_path} has no shard list")
    for entry in shards:
        if not isinstance(entry, dict) or not {"node", "file", "sha256"} <= set(entry):
            raise ColumnarFormatError(
                f"manifest {manifest_path} has a malformed shard entry: {entry!r}"
            )
        if entry["node"] is None:
            # v3 multi-node segment: the real names live in ``nodes``.
            nodes = entry.get("nodes")
            if not isinstance(nodes, list) or not nodes:
                raise ColumnarFormatError(
                    f"manifest {manifest_path} has a segment entry without "
                    f"a node list: {entry.get('file')!r}"
                )
    for key in ("generation", "next_seq"):
        value = manifest.get(key)
        if value is not None and (not isinstance(value, int) or value < 0):
            raise ColumnarFormatError(
                f"manifest {manifest_path} has a malformed {key!r}: {value!r}"
            )
    batches = manifest.get("batches")
    if batches is not None and not isinstance(batches, list):
        raise ColumnarFormatError(
            f"manifest {manifest_path} has a malformed batch ledger: {batches!r}"
        )
    return manifest


def upgrade_archive(path: str | Path) -> dict:
    """Upgrade a v1/v2 archive's manifest in place to the current format.

    v1 -> v2 backfills zone maps; v2 -> v3 adds the live-store
    bookkeeping (``generation``/``next_seq``/``batches`` plus per-entry
    ``level``/``seq``).  Only the manifest is rewritten — shard files
    (and therefore their checksums and the archive fingerprint) are
    untouched, so the upgrade is cheap, idempotent, and safe to
    interrupt: the new manifest is committed via temp file + fsync +
    atomic rename.  Returns the (possibly already current) manifest.
    """
    directory = Path(path)
    manifest = read_manifest(directory)
    needs_upgrade = (
        manifest["format_version"] != FORMAT_VERSION
        or manifest.get("generation") is None
        or manifest.get("next_seq") is None
        or any(
            "zone_map" not in entry or "level" not in entry or "seq" not in entry
            for entry in manifest["shards"]
        )
    )
    if not needs_upgrade:
        return manifest
    for position, entry in enumerate(manifest["shards"]):
        if "zone_map" not in entry:
            cols = _load_shard(directory, entry, verify_checksum=True)
            entry["zone_map"] = compute_zone_map(cols)
            entry.setdefault("n_records", len(cols))
            entry.setdefault("n_errors", cols.n_errors)
            entry.setdefault("n_raw_lines", cols.n_raw_lines)
        # Pre-v3 archives hold exactly one fully-merged shard per node:
        # a single generation of level-1 runs in manifest order.
        entry.setdefault("level", 1)
        entry.setdefault("seq", position)
    manifest["format_version"] = FORMAT_VERSION
    manifest.setdefault("generation", 1)
    manifest.setdefault(
        "next_seq", 1 + max((int(e["seq"]) for e in manifest["shards"]), default=-1)
    )
    manifest.setdefault("batches", [])
    write_manifest_atomic(directory / MANIFEST_NAME, manifest)
    return manifest


def _load_shard(
    directory: Path, entry: dict, *, verify_checksum: bool = True
) -> RecordColumns:
    shard_path = directory / entry["file"]
    shard_node = entry.get("node")
    try:
        payload = shard_path.read_bytes()
    except OSError as exc:
        raise ShardCorruptError(
            f"missing shard {shard_path}", node=shard_node
        ) from exc
    if verify_checksum:
        digest = hashlib.sha256(payload).hexdigest()
        if digest != entry["sha256"]:
            raise ChecksumMismatchError(
                f"shard {shard_path} checksum mismatch: "
                f"manifest {entry['sha256'][:12]}…, file {digest[:12]}…",
                node=shard_node,
            )
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
            version = int(npz["format_version"])
            # The shard layout is identical across v1 and v2 (zone maps
            # live in the manifest), so an upgraded archive may hold v1
            # shards under a v2 manifest.
            if version not in SUPPORTED_VERSIONS:
                raise UnknownFormatVersionError(
                    f"shard {shard_path} has format version {version}, "
                    f"this reader understands versions {SUPPORTED_VERSIONS}"
                )
            node = str(npz["node"])
            arrays = {name: npz[name] for name in SHARD_COLUMNS}
            node_code = npz["node_code"]
            node_names = [str(n) for n in npz["node_names"]]
    except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError) as exc:
        raise ShardCorruptError(
            f"corrupt shard {shard_path}: {exc}", node=shard_node
        ) from exc
    if shard_node is not None and node != shard_node:
        # Multi-node segments (v3) store a sentinel `node=""` scalar; the
        # real names live in node_names/node_code, so only per-node shards
        # carry a checkable node label.
        raise ShardCorruptError(
            f"shard {shard_path} holds node {node!r}, manifest says {shard_node!r}",
            node=shard_node,
        )
    n = {int(a.shape[0]) for a in arrays.values()} | {int(node_code.shape[0])}
    if len(n) != 1:
        raise ShardCorruptError(
            f"shard {shard_path} has ragged columns: {n}", node=shard_node
        )
    cols = RecordColumns(
        **{
            name: np.asarray(arr, dtype=SHARD_COLUMNS[name])
            for name, arr in arrays.items()
        },
        node_code=np.asarray(node_code, dtype=np.int32),
        node_names=node_names,
    )
    expected = entry.get("n_records")
    if expected is not None and expected != len(cols):
        raise ShardCorruptError(
            f"shard {shard_path} has {len(cols)} records, "
            f"manifest promised {expected}",
            node=shard_node,
        )
    return cols
