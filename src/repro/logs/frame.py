"""Array-backed error table for vectorized analysis.

The analysis package operates on millions of error observations; a list of
dataclasses would make every histogram a Python loop.  :class:`ErrorFrame`
is a thin structure-of-arrays: one NumPy column per field, node names
interned to integer codes, and derived per-row quantities (flipped-bit
counts, flip directions) computed once with :mod:`repro.core.bitops`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..core import bitops
from ..core.events import MemoryError_
from ..core.records import ErrorRecord


@dataclass
class ErrorFrame:
    """Structure-of-arrays view of an error population."""

    time_hours: np.ndarray          # f8
    node_code: np.ndarray           # i4 index into node_names
    node_names: list[str]           # code -> name
    expected: np.ndarray            # u4
    actual: np.ndarray              # u4
    virtual_address: np.ndarray     # i8
    physical_page: np.ndarray       # i8
    temperature_c: np.ndarray       # f4, NaN when not logged
    repeat_count: np.ndarray        # i8
    _n_bits: np.ndarray | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return int(self.time_hours.shape[0])

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[ErrorRecord]) -> "ErrorFrame":
        records = list(records)
        return cls._build(
            records,
            lambda r: (
                r.timestamp_hours,
                r.node,
                r.expected,
                r.actual,
                r.virtual_address,
                r.physical_page,
                r.temperature_c,
                r.repeat_count,
            ),
        )

    @classmethod
    def from_errors(cls, errors: Iterable[MemoryError_]) -> "ErrorFrame":
        """Build from extracted independent errors (one row per fault)."""
        errors = list(errors)
        return cls._build(
            errors,
            lambda e: (
                e.first_seen_hours,
                e.node,
                e.expected,
                e.actual,
                e.virtual_address,
                e.physical_page,
                e.temperature_c,
                e.raw_log_count,
            ),
        )

    @classmethod
    def from_columns(
        cls,
        *,
        time_hours: np.ndarray,
        node_code: np.ndarray,
        node_names: Sequence[str],
        expected: np.ndarray,
        actual: np.ndarray,
        virtual_address: np.ndarray,
        physical_page: np.ndarray,
        temperature_c: np.ndarray,
        repeat_count: np.ndarray,
    ) -> "ErrorFrame":
        """Build directly from column arrays (the columnar ingest path).

        Inputs are cast to the frame's canonical dtypes; ``temperature_c``
        uses NaN for "not logged", matching :meth:`from_records` with
        ``temperature_c=None``.  No per-row Python loop runs, which is the
        point: this is how millions of rows enter the analysis without
        ever existing as record objects.
        """
        return cls(
            time_hours=np.asarray(time_hours, dtype=np.float64),
            node_code=np.asarray(node_code, dtype=np.int32),
            node_names=list(node_names),
            expected=np.asarray(expected, dtype=np.uint32),
            actual=np.asarray(actual, dtype=np.uint32),
            virtual_address=np.asarray(virtual_address, dtype=np.int64),
            physical_page=np.asarray(physical_page, dtype=np.int64),
            temperature_c=np.asarray(temperature_c, dtype=np.float32),
            repeat_count=np.asarray(repeat_count, dtype=np.int64),
        )

    @classmethod
    def _build(cls, rows: Sequence, extract) -> "ErrorFrame":
        n = len(rows)
        time_hours = np.empty(n, dtype=np.float64)
        expected = np.empty(n, dtype=np.uint32)
        actual = np.empty(n, dtype=np.uint32)
        va = np.empty(n, dtype=np.int64)
        pp = np.empty(n, dtype=np.int64)
        temp = np.full(n, np.nan, dtype=np.float32)
        repeat = np.empty(n, dtype=np.int64)
        codes = np.empty(n, dtype=np.int32)
        names: list[str] = []
        index: dict[str, int] = {}
        for i, row in enumerate(rows):
            t, node, exp, act, v, p, tc, rep = extract(row)
            code = index.get(node)
            if code is None:
                code = len(names)
                index[node] = code
                names.append(node)
            codes[i] = code
            time_hours[i] = t
            expected[i] = exp & 0xFFFFFFFF
            actual[i] = act & 0xFFFFFFFF
            va[i] = v
            pp[i] = p
            if tc is not None:
                temp[i] = tc
            repeat[i] = rep
        return cls(
            time_hours=time_hours,
            node_code=codes,
            node_names=names,
            expected=expected,
            actual=actual,
            virtual_address=va,
            physical_page=pp,
            temperature_c=temp,
            repeat_count=repeat,
        )

    # -- derived columns -------------------------------------------------------

    @property
    def n_bits(self) -> np.ndarray:
        """Flipped-bit count per row (cached)."""
        if self._n_bits is None:
            self._n_bits = np.asarray(
                bitops.n_flipped_bits(self.expected, self.actual),
                dtype=np.int64,
            ).reshape(-1)
        return self._n_bits

    @property
    def flip_mask(self) -> np.ndarray:
        return np.bitwise_xor(self.expected, self.actual)

    def node_name(self, code: int) -> str:
        return self.node_names[int(code)]

    def codes_for(self, names: Iterable[str]) -> np.ndarray:
        """Codes of the given node names (absent names are skipped)."""
        lookup = {n: i for i, n in enumerate(self.node_names)}
        return np.array(
            [lookup[n] for n in names if n in lookup], dtype=np.int32
        )

    # -- filtering ---------------------------------------------------------------

    def select(self, mask: np.ndarray) -> "ErrorFrame":
        """Row subset (node interning table is shared, not recompacted)."""
        # repro: noqa[NPY001]: accepts bool masks and fancy indices — dtype passes through
        mask = np.asarray(mask)
        return ErrorFrame(
            time_hours=self.time_hours[mask],
            node_code=self.node_code[mask],
            node_names=self.node_names,
            expected=self.expected[mask],
            actual=self.actual[mask],
            virtual_address=self.virtual_address[mask],
            physical_page=self.physical_page[mask],
            temperature_c=self.temperature_c[mask],
            repeat_count=self.repeat_count[mask],
        )

    def exclude_nodes(self, names: Iterable[str]) -> "ErrorFrame":
        """Drop all rows belonging to the given nodes."""
        codes = set(int(c) for c in self.codes_for(names))
        if not codes:
            return self
        keep = ~np.isin(self.node_code, list(codes))
        return self.select(keep)

    def multibit_only(self) -> "ErrorFrame":
        return self.select(self.n_bits >= 2)

    def singlebit_only(self) -> "ErrorFrame":
        return self.select(self.n_bits == 1)

    def sorted_by_time(self) -> "ErrorFrame":
        order = np.argsort(self.time_hours, kind="stable")
        return self.select(order)
