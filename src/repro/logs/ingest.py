"""Live storage engine: append-only ingest + LSM-style shard compaction.

The batch path (:meth:`ColumnarArchive.save`) needs every node's records
in RAM before a single byte reaches disk.  This module is the streaming
alternative: campaign workers hand small record batches to
:meth:`LiveArchive.append_batch`, which commits them as level-0 segment
shards; a background :func:`compact_archive` pass merges accumulated
small segments into large sorted per-node runs, LSM-style, so the read
path never degrades past a bounded number of parts per node.

Commit protocol (shared by ingest and compaction, see docs/STORAGE.md):

1. segment ``.npz.tmp`` written + fsync'd          [segment-temp-written]
2. ``os.replace`` tmp -> final segment file        [segment-published]
3. manifest tmp written + fsync'd                  [manifest-temp-written]
4. ``os.replace`` manifest tmp -> manifest.json    [manifest-committed]
5. (compaction only) consumed files unlinked       [obsolete-removed]

Step 4 is the *only* commit point.  A crash anywhere before it leaves
the previous manifest fully intact; files from steps 1-3 are orphans
swept by the next :meth:`LiveArchive.open`.  A crash after it leaves
the new manifest; step 5 is best-effort cleanup, and any consumed files
that survive it are likewise swept as orphans.  The bracketed names are
the chaos injection points the crash-safety tests kill at
(``f"{op}:{step}"`` with ``op`` in ``ingest``/``compact``).

Exactly-once ingest: the manifest carries a ``batches`` ledger of
committed batch ids.  Re-appending an already-committed id is a no-op,
so a campaign resuming after a crash (or a retried RPC) can blindly
replay its stream without duplicating a record.

All writers serialize through a ``.ingest.lock`` file lock; readers
never take it (the manifest swap is atomic).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..cache import FileLock
from ..core.errors import ColumnarFormatError
from ..core.fsio import fsync_dir
from .columnar import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    SHARD_COLUMNS,
    RecordColumns,
    _load_shard,
    canonical_sort_order,
    compute_zone_map,
    entry_nodes,
    manifest_fingerprint,
    read_manifest,
    shard_payload,
    write_manifest_atomic,
)

LOCK_NAME = ".ingest.lock"

#: Segments covering at most this many nodes carry exact per-node
#: ``node_zones`` in their manifest entry, which keeps pruning-counter
#: behaviour identical before and after compaction.  Larger segments
#: (fleet-scale flushes) fall back to one aggregate ``zone_map`` so the
#: manifest stays bounded.
NODE_ZONE_LIMIT = 256

#: Chaos injection points of one segment+manifest commit, in protocol
#: order.  Crash tests kill at ``f"ingest:{step}"`` / ``f"compact:{step}"``.
INGEST_COMMIT_STEPS = (
    "segment-temp-written",
    "segment-published",
    "manifest-temp-written",
    "manifest-committed",
)

#: Compaction adds a planning step before and cleanup step after.
COMPACT_COMMIT_STEPS = ("planned",) + INGEST_COMMIT_STEPS + ("obsolete-removed",)


def _step(chaos, op: str, name: str) -> None:
    """Fire one crash-injection point (no-op without a chaos plan)."""
    if chaos is not None:
        chaos.apply(f"{op}:{name}", 1)


def _segment_filename(seq: int, level: int) -> str:
    return f"seg-{seq:08d}-L{level}.npz"


def _publish_segment(
    directory: Path,
    per_node: dict[str, RecordColumns],
    *,
    seq: int,
    level: int,
    chaos=None,
    op: str = "ingest",
) -> dict:
    """Durably write one segment file; return its manifest entry.

    ``per_node`` maps node name -> that node's rows *already in
    canonical order*; rows are laid out grouped by sorted node name, so
    a single-part node read back from this segment is in final order
    without re-sorting.  The manifest entry is returned but NOT yet
    committed — the caller owns the manifest swap (the commit point).
    """
    names = sorted(per_node)
    ordered = [per_node[name] for name in names]
    cols = RecordColumns.concat(ordered) if len(ordered) > 1 else ordered[0]
    single = names[0] if len(names) == 1 else None
    payload = shard_payload(cols, single if single is not None else "")
    filename = _segment_filename(seq, level)
    tmp = directory / (filename + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    _step(chaos, op, "segment-temp-written")
    os.replace(tmp, directory / filename)
    fsync_dir(directory)
    _step(chaos, op, "segment-published")
    entry = {
        "node": single,
        "file": filename,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "n_records": len(cols),
        "n_errors": cols.n_errors,
        "n_raw_lines": cols.n_raw_lines,
        "zone_map": compute_zone_map(cols),
        "level": level,
        "seq": seq,
    }
    if single is None:
        entry["nodes"] = names
        entry["n_nodes"] = len(names)
        if len(names) <= NODE_ZONE_LIMIT:
            entry["node_zones"] = {
                name: compute_zone_map(per_node[name]) for name in names
            }
    return entry


def _refresh_totals(manifest: dict) -> None:
    """Recompute archive totals from the (new) entry population."""
    entries = manifest["shards"]
    nodes: set[str] = set()
    for entry in entries:
        nodes.update(entry_nodes(entry))
    manifest["n_nodes"] = len(nodes)
    manifest["n_records"] = sum(int(e.get("n_records") or 0) for e in entries)
    manifest["n_errors"] = sum(int(e.get("n_errors") or 0) for e in entries)
    manifest["n_raw_lines"] = sum(int(e.get("n_raw_lines") or 0) for e in entries)


def _fresh_manifest() -> dict:
    from .. import __version__

    return {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "writer": f"repro {__version__}",
        "generation": 0,
        "next_seq": 0,
        "batches": [],
        "n_nodes": 0,
        "n_records": 0,
        "n_errors": 0,
        "n_raw_lines": 0,
        "shards": [],
    }


@dataclass
class IngestReport:
    """Outcome of one :meth:`LiveArchive.append_batch` commit."""

    generation: int
    committed: list[str] = field(default_factory=list)
    deduplicated: list[str] = field(default_factory=list)
    n_records: int = 0
    segment: str | None = None

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "committed": list(self.committed),
            "deduplicated": list(self.deduplicated),
            "n_records": self.n_records,
            "segment": self.segment,
        }


@dataclass
class CompactionReport:
    """Outcome of one :func:`compact_archive` pass."""

    generation: int
    entries_before: int
    entries_after: int
    entries_consumed: int
    segments_written: int
    n_components: int
    n_records: int
    max_level: int
    dry_run: bool = False

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "entries_before": self.entries_before,
            "entries_after": self.entries_after,
            "entries_consumed": self.entries_consumed,
            "segments_written": self.segments_written,
            "n_components": self.n_components,
            "n_records": self.n_records,
            "max_level": self.max_level,
            "dry_run": self.dry_run,
        }


class LiveArchive:
    """Append-only writer handle on a v3 columnar archive directory.

    Readers keep using :class:`ColumnarArchive.load` /
    :class:`repro.query.source.ArchiveSource` on the same directory —
    every committed state is a complete, valid archive.
    """

    def __init__(self, directory: Path, manifest: dict):
        self.directory = directory
        self.manifest = manifest

    # -- constructors ------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, *, exist_ok: bool = True) -> "LiveArchive":
        """Initialize an empty v3 archive (or open an existing one)."""
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / MANIFEST_NAME).exists():
            if not exist_ok:
                raise ColumnarFormatError(
                    f"archive already exists: {directory / MANIFEST_NAME}"
                )
            return cls.open(directory)
        write_manifest_atomic(directory / MANIFEST_NAME, _fresh_manifest())
        return cls(directory, read_manifest(directory))

    @classmethod
    def open(cls, path: str | Path) -> "LiveArchive":
        """Open an existing v3 archive for appending; sweeps orphans."""
        directory = Path(path)
        manifest = read_manifest(directory)
        if int(manifest["format_version"]) != FORMAT_VERSION:
            raise ColumnarFormatError(
                f"live ingest requires a v{FORMAT_VERSION} archive, found "
                f"v{manifest['format_version']}: run `repro logs upgrade "
                f"{directory}` first"
            )
        archive = cls(directory, manifest)
        archive.sweep()
        return archive

    # -- introspection -----------------------------------------------------

    @property
    def generation(self) -> int:
        return int(self.manifest.get("generation") or 0)

    @property
    def committed_batches(self) -> list[str]:
        return list(self.manifest.get("batches") or [])

    def fingerprint(self) -> str:
        return manifest_fingerprint(self.manifest)

    def refresh(self) -> dict:
        """Re-read the manifest (another process may have committed)."""
        self.manifest = read_manifest(self.directory)
        return self.manifest

    # -- writes ------------------------------------------------------------

    def append_batch(
        self, batches: dict[str, RecordColumns], *, chaos=None
    ) -> IngestReport:
        """Commit named record batches as one level-0 segment.

        ``batches`` maps a stable batch id (e.g. ``unit:<node>``) to the
        rows it contributes; ids already in the manifest's ledger are
        dropped (exactly-once semantics under replay).  All fresh rows
        land in a single multi-node L0 segment, each node's rows sorted
        into canonical order at append time so compaction later merges
        already-sorted runs.  Empty batches still enter the ledger.
        """
        with FileLock(self.directory / LOCK_NAME):
            manifest = read_manifest(self.directory)
            committed = set(manifest.get("batches") or [])
            fresh = {
                batch_id: cols
                for batch_id, cols in batches.items()
                if batch_id not in committed
            }
            deduplicated = sorted(set(batches) - set(fresh))
            if not fresh:
                self.manifest = manifest
                return IngestReport(
                    generation=self.generation, deduplicated=deduplicated
                )
            nonempty = [cols for cols in fresh.values() if len(cols)]
            entry = None
            if nonempty:
                merged = (
                    RecordColumns.concat(nonempty)
                    if len(nonempty) > 1
                    else nonempty[0]
                )
                per_node = {
                    name: sub.take(canonical_sort_order(sub.t, sub.kind))
                    for name, sub in merged.split_by_node().items()
                }
                seq = int(manifest["next_seq"])
                entry = _publish_segment(
                    self.directory,
                    per_node,
                    seq=seq,
                    level=0,
                    chaos=chaos,
                    op="ingest",
                )
                manifest["shards"].append(entry)
                manifest["next_seq"] = seq + 1
            manifest["generation"] = int(manifest.get("generation") or 0) + 1
            manifest["batches"] = sorted(committed | set(fresh))
            _refresh_totals(manifest)
            write_manifest_atomic(
                self.directory / MANIFEST_NAME,
                manifest,
                before_replace=lambda: _step(
                    chaos, "ingest", "manifest-temp-written"
                ),
            )
            _step(chaos, "ingest", "manifest-committed")
            self.manifest = manifest
            return IngestReport(
                generation=self.generation,
                committed=sorted(fresh),
                deduplicated=deduplicated,
                n_records=int(entry["n_records"]) if entry else 0,
                segment=entry["file"] if entry else None,
            )

    def sweep(self) -> list[str]:
        """Remove torn temp files and unreferenced segment orphans.

        Safe whenever the lock is free: writers hold it across their
        whole publish+commit window, so under the lock every ``.tmp``
        is torn and every unreferenced ``.npz`` is an orphan from a
        crashed commit (or a consumed segment whose unlink was lost).
        """
        removed: list[str] = []
        with FileLock(self.directory / LOCK_NAME):
            manifest = read_manifest(self.directory)
            referenced = {entry["file"] for entry in manifest["shards"]}
            for path in sorted(self.directory.iterdir()):
                name = path.name
                if not path.is_file() or name in (MANIFEST_NAME, LOCK_NAME):
                    continue
                if name.endswith(".tmp") or (
                    name.endswith(".npz") and name not in referenced
                ):
                    path.unlink()
                    removed.append(name)
            self.manifest = manifest
        return removed

    def compact(self, **kwargs) -> CompactionReport:
        report = compact_archive(self.directory, **kwargs)
        self.refresh()
        return report


def _plan_components(entries: list[dict]) -> list[list[int]]:
    """Group compactable entries into connected components.

    An entry needs compaction if it is level 0 or shares a node with
    another entry.  Consuming an entry consumes *all* its nodes, which
    transitively pulls in every other entry covering them — so the unit
    of work is a connected component of the entry/node bipartite graph.
    Components are processed one at a time, which is what bounds
    compaction memory at fleet scale (disjoint node ranges stay in
    separate components).
    """
    covering: dict[str, list[int]] = {}
    for index, entry in enumerate(entries):
        for name in entry_nodes(entry):
            covering.setdefault(name, []).append(index)
    seeds = {
        index
        for index, entry in enumerate(entries)
        if int(entry.get("level") or 0) == 0
        or any(len(covering[name]) > 1 for name in entry_nodes(entry))
    }
    assigned: dict[int, int] = {}
    components: list[list[int]] = []
    for seed in sorted(seeds):
        if seed in assigned:
            continue
        component: list[int] = []
        frontier = [seed]
        assigned[seed] = len(components)
        while frontier:
            index = frontier.pop()
            component.append(index)
            for name in entry_nodes(entries[index]):
                for other in covering[name]:
                    if other not in assigned:
                        assigned[other] = len(components)
                        frontier.append(other)
        components.append(sorted(component))
    return components


def compact_archive(
    path: str | Path,
    *,
    max_segment_rows: int = 1_000_000,
    max_segment_nodes: int = 256,
    verify_checksums: bool = True,
    chaos=None,
    dry_run: bool = False,
) -> CompactionReport:
    """Merge small/overlapping segments into sorted higher-level runs.

    Every node touched by the pass ends up covered by exactly one output
    segment, its parts merged in commit (``seq``) order through the
    canonical sort — byte-identical to what a batch
    ``ColumnarArchive.save`` of the same records would hold.  Untouched
    entries (already-compacted single-coverage runs) pass through
    unmodified, checksums intact.  The whole pass commits atomically in
    one manifest swap; ``dry_run`` reports the plan without writing.
    """
    directory = Path(path)
    with FileLock(directory / LOCK_NAME):
        manifest = read_manifest(directory)
        if int(manifest["format_version"]) != FORMAT_VERSION:
            raise ColumnarFormatError(
                f"compaction requires a v{FORMAT_VERSION} archive, found "
                f"v{manifest['format_version']}: run `repro logs upgrade "
                f"{directory}` first"
            )
        entries = list(manifest["shards"])
        components = _plan_components(entries)
        consumed = sorted(index for component in components for index in component)
        generation = int(manifest.get("generation") or 0)
        if dry_run or not components:
            return CompactionReport(
                generation=generation,
                entries_before=len(entries),
                entries_after=len(entries) - len(consumed) + len(components),
                entries_consumed=len(consumed),
                segments_written=0,
                n_components=len(components),
                n_records=sum(
                    int(entries[i].get("n_records") or 0) for i in consumed
                ),
                max_level=max(
                    (int(entries[i].get("level") or 0) + 1 for i in consumed),
                    default=0,
                ),
                dry_run=dry_run,
            )
        _step(chaos, "compact", "planned")
        next_seq = int(manifest["next_seq"])
        new_entries: list[dict] = []
        rows_consumed = 0
        rows_written = 0
        max_level = 0
        for component in components:
            level = 1 + max(
                int(entries[index].get("level") or 0) for index in component
            )
            max_level = max(max_level, level)
            # Load the component's parts in commit (seq) order and merge
            # them with ONE grouped stable sort: node name first, then
            # the canonical (t, kind) key, ties staying in concat = seq
            # order.  Row for row this equals merging each node's parts
            # separately, but it touches every row exactly once and
            # never materializes per-node intermediates — a fleet-sized
            # component costs one extra copy of its rows, not hundreds
            # of thousands of tiny column objects.
            ordered = sorted(
                (entries[index] for index in component),
                key=lambda e: int(e.get("seq") or 0),
            )
            loaded = [
                _load_shard(directory, entry, verify_checksum=verify_checksums)
                for entry in ordered
            ]
            rows_consumed += sum(len(cols) for cols in loaded)
            merged = (
                RecordColumns.concat(loaded) if len(loaded) > 1 else loaded[0]
            )
            del loaded
            names_sorted = sorted(merged.node_names)
            rank_of = {name: rank for rank, name in enumerate(names_sorted)}
            name_rank = np.fromiter(
                (rank_of[name] for name in merged.node_names),
                dtype=np.int64,
                count=len(merged.node_names),
            )
            node_key = name_rank[merged.node_code]
            grouped = merged.take(
                canonical_sort_order(merged.t, merged.kind, group=node_key)
            )
            del merged
            ranks = np.arange(len(names_sorted))
            keys_grouped = np.sort(node_key)
            starts = np.searchsorted(keys_grouped, ranks, side="left")
            stops = np.searchsorted(keys_grouped, ranks, side="right")
            # Pack merged nodes into bounded output segments.
            bucket: dict[str, RecordColumns] = {}
            bucket_rows = 0
            for rank, name in enumerate(names_sorted):
                lo, hi = int(starts[rank]), int(stops[rank])
                cols = RecordColumns(
                    **{
                        column: getattr(grouped, column)[lo:hi]
                        for column in SHARD_COLUMNS
                    },
                    node_code=np.zeros(hi - lo, dtype=np.int32),
                    node_names=[name],
                )
                if bucket and (
                    bucket_rows + len(cols) > max_segment_rows
                    or len(bucket) >= max_segment_nodes
                ):
                    new_entries.append(
                        _publish_segment(
                            directory,
                            bucket,
                            seq=next_seq,
                            level=level,
                            chaos=chaos,
                            op="compact",
                        )
                    )
                    next_seq += 1
                    bucket, bucket_rows = {}, 0
                bucket[name] = cols
                bucket_rows += len(cols)
                rows_written += len(cols)
            if bucket:
                new_entries.append(
                    _publish_segment(
                        directory,
                        bucket,
                        seq=next_seq,
                        level=level,
                        chaos=chaos,
                        op="compact",
                    )
                )
                next_seq += 1
        if rows_written != rows_consumed:  # pragma: no cover - invariant
            raise ColumnarFormatError(
                f"compaction row mismatch: consumed {rows_consumed}, "
                f"wrote {rows_written}"
            )
        consumed_set = set(consumed)
        consumed_files = [entries[index]["file"] for index in consumed]
        manifest["shards"] = [
            entry
            for index, entry in enumerate(entries)
            if index not in consumed_set
        ] + new_entries
        manifest["generation"] = generation + 1
        manifest["next_seq"] = next_seq
        _refresh_totals(manifest)
        write_manifest_atomic(
            directory / MANIFEST_NAME,
            manifest,
            before_replace=lambda: _step(
                chaos, "compact", "manifest-temp-written"
            ),
        )
        _step(chaos, "compact", "manifest-committed")
        # Best-effort cleanup: survivors are orphans, swept on next open.
        for filename in consumed_files:
            try:
                os.unlink(directory / filename)
            except OSError:
                pass
        _step(chaos, "compact", "obsolete-removed")
        return CompactionReport(
            generation=generation + 1,
            entries_before=len(entries),
            entries_after=len(manifest["shards"]),
            entries_consumed=len(consumed),
            segments_written=len(new_entries),
            n_components=len(components),
            n_records=rows_written,
            max_level=max_level,
        )


