"""Serialization of scanner log records to text lines and back.

One record per line, ``KIND|key=value|...`` with a stable field order.
Timestamps are hours since the study epoch with nanosecond-scale decimal
precision; addresses and word values are hex.  ``parse_line`` is the exact
inverse of ``format_record`` (property-tested).
"""

from __future__ import annotations

from ..core.errors import LogFormatError
from ..core.records import (
    AllocFailRecord,
    EndRecord,
    ErrorRecord,
    LogRecord,
    StartRecord,
)

_FIELD_SEP = "|"
# repr() of a float is the shortest string that round-trips exactly, so
# parse(format(record)) == record holds bit-for-bit.
_TS_FMT = "{!r}"


def _fmt_temp(temp: float | None) -> str:
    return "na" if temp is None else f"{temp:.2f}"


def _parse_temp(text: str) -> float | None:
    return None if text == "na" else float(text)


def format_record(record: LogRecord) -> str:
    """Render one record as its log line."""
    ts = _TS_FMT.format(record.timestamp_hours)
    if isinstance(record, StartRecord):
        return _FIELD_SEP.join(
            [
                "START",
                f"t={ts}",
                f"node={record.node}",
                f"mb={record.allocated_mb}",
                f"temp={_fmt_temp(record.temperature_c)}",
            ]
        )
    if isinstance(record, ErrorRecord):
        return _FIELD_SEP.join(
            [
                "ERROR",
                f"t={ts}",
                f"node={record.node}",
                f"va=0x{record.virtual_address:x}",
                f"pp=0x{record.physical_page:x}",
                f"exp=0x{record.expected:08x}",
                f"act=0x{record.actual:08x}",
                f"temp={_fmt_temp(record.temperature_c)}",
                f"rep={record.repeat_count}",
            ]
        )
    if isinstance(record, EndRecord):
        return _FIELD_SEP.join(
            [
                "END",
                f"t={ts}",
                f"node={record.node}",
                f"temp={_fmt_temp(record.temperature_c)}",
            ]
        )
    if isinstance(record, AllocFailRecord):
        return _FIELD_SEP.join(["ALLOC_FAIL", f"t={ts}", f"node={record.node}"])
    raise LogFormatError(f"unknown record type {type(record).__name__}")


def _fields(line: str) -> dict[str, str]:
    parts = line.strip().split(_FIELD_SEP)
    out: dict[str, str] = {"_kind": parts[0]}
    for part in parts[1:]:
        try:
            key, value = part.split("=", 1)
        except ValueError as exc:
            raise LogFormatError(f"malformed field {part!r} in {line!r}") from exc
        out[key] = value
    return out


def parse_line(line: str) -> LogRecord:
    """Parse one log line back into its record (inverse of format_record)."""
    if not line.strip():
        raise LogFormatError("empty log line")
    f = _fields(line)
    kind = f["_kind"]
    try:
        if kind == "START":
            return StartRecord(
                timestamp_hours=float(f["t"]),
                node=f["node"],
                allocated_mb=int(f["mb"]),
                temperature_c=_parse_temp(f["temp"]),
            )
        if kind == "ERROR":
            return ErrorRecord(
                timestamp_hours=float(f["t"]),
                node=f["node"],
                virtual_address=int(f["va"], 16),
                physical_page=int(f["pp"], 16),
                expected=int(f["exp"], 16),
                actual=int(f["act"], 16),
                temperature_c=_parse_temp(f["temp"]),
                repeat_count=int(f.get("rep", "1")),
            )
        if kind == "END":
            return EndRecord(
                timestamp_hours=float(f["t"]),
                node=f["node"],
                temperature_c=_parse_temp(f["temp"]),
            )
        if kind == "ALLOC_FAIL":
            return AllocFailRecord(timestamp_hours=float(f["t"]), node=f["node"])
    except (KeyError, ValueError) as exc:
        raise LogFormatError(f"cannot parse {line!r}: {exc}") from exc
    raise LogFormatError(f"unknown record kind {kind!r}")
