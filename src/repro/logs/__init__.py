"""Log formats, per-node archives, and the array-backed error table."""

from .columnar import ColumnarArchive, RecordColumns, read_log_file
from .format import format_record, parse_line
from .frame import ErrorFrame
from .ingest import CompactionReport, IngestReport, LiveArchive, compact_archive
from .store import LogArchive, directory_log_files

__all__ = [
    "ColumnarArchive",
    "CompactionReport",
    "ErrorFrame",
    "IngestReport",
    "LiveArchive",
    "LogArchive",
    "RecordColumns",
    "compact_archive",
    "directory_log_files",
    "format_record",
    "parse_line",
    "read_log_file",
]
