"""Log formats, per-node archives, and the array-backed error table."""

from .format import format_record, parse_line
from .frame import ErrorFrame
from .store import LogArchive

__all__ = ["ErrorFrame", "LogArchive", "format_record", "parse_line"]
