"""Simulated ECC-less LPDDR DRAM substrate."""

from .addressing import DEFAULT_SWIZZLE, PAGE_BYTES, WORDS_PER_PAGE, AddressMap, BitSwizzle
from .cells import CellArray
from .device import DeviceSpec, SimulatedDram, make_device
from .faults import (
    ColumnFault,
    MultiCellEvent,
    RowFault,
    StuckCell,
    TransientFlip,
    WeakCell,
    charge_loss_mask,
)
from .geometry import DramGeometry

__all__ = [
    "AddressMap",
    "BitSwizzle",
    "CellArray",
    "ColumnFault",
    "DEFAULT_SWIZZLE",
    "DeviceSpec",
    "DramGeometry",
    "MultiCellEvent",
    "PAGE_BYTES",
    "RowFault",
    "SimulatedDram",
    "StuckCell",
    "TransientFlip",
    "WeakCell",
    "WORDS_PER_PAGE",
    "charge_loss_mask",
    "make_device",
]
