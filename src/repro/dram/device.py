"""The simulated unprotected DRAM device.

Ties together the cell array, geometry, bit swizzle and address map into
the object the scanner actually reads and writes.  There is **no ECC
anywhere in this path** — that is the whole point of the paper's prototype;
the :mod:`repro.ecc` package is only used *after the fact* to classify what
a protected system would have done with each observed corruption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError
from .addressing import DEFAULT_SWIZZLE, AddressMap, BitSwizzle
from .cells import CellArray
from .faults import (
    ColumnFault,
    MultiCellEvent,
    RowFault,
    StuckCell,
    TransientFlip,
    WeakCell,
)
from .geometry import DramGeometry


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one node's scanned DRAM region."""

    n_words: int
    geometry: DramGeometry | None = None
    swizzle: BitSwizzle = DEFAULT_SWIZZLE

    def __post_init__(self) -> None:
        if self.n_words <= 0:
            raise ConfigurationError("device needs at least one word")
        if self.geometry is not None and self.geometry.total_words < self.n_words:
            raise ConfigurationError("geometry smaller than requested capacity")


class SimulatedDram:
    """An ECC-less DRAM region as seen through one scan session."""

    def __init__(self, spec: DeviceSpec, address_map: AddressMap | None = None):
        self.spec = spec
        self.cells = CellArray(spec.n_words)
        self.address_map = address_map or AddressMap(n_words=spec.n_words)
        if self.address_map.n_words != spec.n_words:
            raise ConfigurationError("address map does not cover the device")

    @property
    def n_words(self) -> int:
        return self.spec.n_words

    # -- scanner-facing API ---------------------------------------------------

    def write_word(self, word_index: int, value: int) -> None:
        self.cells.write(word_index, value)

    def fill(self, value: int) -> None:
        self.cells.fill(value)

    def write_block(self, start: int, values: np.ndarray) -> None:
        self.cells.write_block(start, values)

    def read_word(self, word_index: int) -> int:
        return self.cells.read(word_index)

    def read_block(self, start: int = 0, count: int | None = None) -> np.ndarray:
        return self.cells.read_block(start, count)

    # -- fault application ------------------------------------------------------

    def apply(self, fault) -> None:
        """Apply any fault object from :mod:`repro.dram.faults`.

        Transient masks are *physical-line* masks: they are routed through
        the device's bit swizzle before touching logical storage, which is
        how adjacent-line disturbances become non-adjacent logical flips.
        """
        if isinstance(fault, TransientFlip):
            logical = self.spec.swizzle.physical_to_logical_mask(fault.flip_mask)
            self.cells.xor_word(fault.word_index, logical)
        elif isinstance(fault, StuckCell):
            logical_mask = self.spec.swizzle.physical_to_logical_mask(fault.mask)
            logical_value = self.spec.swizzle.physical_to_logical_mask(fault.value)
            self.cells.add_stuck(fault.word_index, logical_mask, logical_value)
        elif isinstance(fault, WeakCell):
            self.cells.set_bits(
                fault.word_index, fault.mask, fault.discharge_value << fault.bit
            )
        elif isinstance(fault, MultiCellEvent):
            for flip in fault.flips:
                self.apply(flip)
        elif isinstance(fault, (RowFault, ColumnFault)):
            if self.spec.geometry is None:
                raise ConfigurationError(
                    "row/column faults need a device with geometry attached"
                )
            logical_mask = self.spec.swizzle.physical_to_logical_mask(fault.mask)
            logical_value = self.spec.swizzle.physical_to_logical_mask(fault.value)
            if isinstance(fault, RowFault):
                words = self.spec.geometry.row_words(fault.bank, fault.row)
            else:
                words = self.spec.geometry.column_words(fault.bank, fault.col)
            for word in words:
                if word < self.n_words:
                    self.cells.add_stuck(int(word), logical_mask, logical_value)
        else:
            raise ConfigurationError(f"unknown fault type {type(fault).__name__}")

    def apply_logical_flip(self, word_index: int, logical_mask: int) -> None:
        """Corrupt logical bits directly, bypassing the swizzle.

        Used when replaying a *catalogued* corruption (e.g. the Table I
        patterns, which are already expressed in logical bits).
        """
        self.cells.xor_word(word_index, logical_mask)

    # -- bookkeeping --------------------------------------------------------------

    def virtual_address(self, word_index: int) -> int:
        return int(self.address_map.virtual_address(word_index))

    def physical_page(self, word_index: int) -> int:
        return int(self.address_map.physical_page(word_index))


def make_device(
    mb: int,
    swizzle: BitSwizzle = DEFAULT_SWIZZLE,
    with_geometry: bool = False,
    salt: int = 0,
) -> SimulatedDram:
    """Convenience constructor: a device of ``mb`` megabytes.

    ``with_geometry`` attaches a bank/row/col geometry sized to the region
    (needed only by multi-cell neighbourhood faults).
    """
    n_words = (int(mb) * 1024 * 1024) // 4
    geometry = DramGeometry.for_capacity_mb(mb) if with_geometry else None
    spec = DeviceSpec(n_words=n_words, geometry=geometry, swizzle=swizzle)
    return SimulatedDram(spec, AddressMap(n_words=n_words, salt=salt))
