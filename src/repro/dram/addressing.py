"""Bit swizzle and virtual/physical address mapping.

Two mappings that shape what the scanner *sees*:

* **Bit swizzle** — DRAM layouts scramble the logical bit order of a word
  across physical data lines (the paper: "this scrambling is done to avoid
  resonance on the bus").  A disturbance hitting *adjacent physical* lines
  therefore corrupts *non-adjacent logical* bits, which is the paper's
  explanation for most multi-bit errors being non-consecutive with a mean
  corrupted-bit distance of ~3 and max 11.
* **Virtual-to-physical page map** — the scanner logs both the virtual
  address and the physical page; a simple deterministic per-session page
  mapping produces consistent pairs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..core.bitops import WORD_BITS
from ..core.errors import ConfigurationError


def stable_salt(key: str) -> int:
    """Deterministic 31-bit address-map salt derived from a string.

    Built-in ``hash()`` is randomized per interpreter (PYTHONHASHSEED),
    which would make physical-page mappings differ between runs — and
    between the parent and worker processes of a parallel campaign.  A
    cryptographic digest keeps every process on the same mapping.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") & 0x7FFFFFFF

#: Bytes per OS page (used for the physical-page field of error logs).
PAGE_BYTES = 4096
WORDS_PER_PAGE = PAGE_BYTES // 4


@dataclass(frozen=True)
class BitSwizzle:
    """A permutation of the 32 bit positions of a word.

    ``perm[logical] = physical``: logical bit *i* of the stored word is
    carried on physical line ``perm[i]``.
    """

    perm: tuple[int, ...]

    def __post_init__(self) -> None:
        if sorted(self.perm) != list(range(WORD_BITS)):
            raise ConfigurationError("swizzle must be a permutation of 0..31")

    @property
    def inverse(self) -> tuple[int, ...]:
        inv = [0] * WORD_BITS
        for logical, physical in enumerate(self.perm):
            inv[physical] = logical
        return tuple(inv)

    def logical_to_physical_mask(self, mask: int) -> int:
        """Map a logical flip mask onto physical data lines."""
        out = 0
        for logical in range(WORD_BITS):
            if (mask >> logical) & 1:
                out |= 1 << self.perm[logical]
        return out

    def physical_to_logical_mask(self, mask: int) -> int:
        """Map a physical-line disturbance mask back to logical bits.

        This is the direction the scanner observes: physics hits lines,
        logs show logical bits.
        """
        inv = self.inverse
        out = 0
        for physical in range(WORD_BITS):
            if (mask >> physical) & 1:
                out |= 1 << inv[physical]
        return out

    @classmethod
    def identity(cls) -> "BitSwizzle":
        return cls(tuple(range(WORD_BITS)))

    @classmethod
    def interleaved(cls, stride: int = 3) -> "BitSwizzle":
        """Stride-interleaved layout: logical bit i -> line (i*stride) % 32.

        ``stride`` must be coprime with 32 (i.e. odd).  The default stride
        of 3 means two *physically adjacent* lines carry logical bits ~11
        positions apart in one direction and 3*k patterns generally — after
        calibration this reproduces the paper's mean logical distance ~3
        between corrupted bits and maximum 11 (see the swizzle ablation
        bench).
        """
        if stride % 2 == 0:
            raise ConfigurationError("stride must be odd (coprime with 32)")
        return cls(tuple((i * stride) % WORD_BITS for i in range(WORD_BITS)))


#: The prototype's layout used throughout the paper-calibrated campaign.
DEFAULT_SWIZZLE = BitSwizzle.interleaved(3)


@dataclass(frozen=True)
class AddressMap:
    """Per-session virtual-to-physical mapping of the scanned buffer.

    The scanner allocates one large virtual buffer; the OS backs it with
    physical pages.  We model the backing as a base physical frame plus a
    deterministic page permutation derived from a session salt — enough to
    give realistic-looking, internally consistent (virtual, physical page)
    pairs in the logs.
    """

    virtual_base: int = 0x3000_0000
    physical_frame_base: int = 0x8_0000
    n_words: int = 0
    salt: int = 0

    def __post_init__(self) -> None:
        if self.n_words < 0:
            raise ConfigurationError("n_words must be non-negative")

    @property
    def n_pages(self) -> int:
        return -(-self.n_words // WORDS_PER_PAGE) if self.n_words else 0

    def virtual_address(self, word_index: np.ndarray | int):
        """Virtual byte address of a scanned word index."""
        idx = np.asarray(word_index, dtype=np.int64)
        self._check(idx)
        return (self.virtual_base + idx * 4)[()]

    def word_index(self, virtual_address: np.ndarray | int):
        """Inverse of :meth:`virtual_address`."""
        va = np.asarray(virtual_address, dtype=np.int64)
        idx = (va - self.virtual_base) // 4
        self._check(idx)
        return idx[()]

    def physical_page(self, word_index: np.ndarray | int):
        """Physical page frame number backing a word index.

        Pages are permuted by a multiplicative hash of (page, salt) so
        two sessions on the same node get different backings, like real
        allocations would.
        """
        idx = np.asarray(word_index, dtype=np.int64)
        self._check(idx)
        page = idx // WORDS_PER_PAGE
        n = max(self.n_pages, 1)
        mixed = (page * 2654435761 + self.salt * 40503) % n
        return (self.physical_frame_base + mixed)[()]

    def _check(self, idx: np.ndarray) -> None:
        if self.n_words and np.any((idx < 0) | (idx >= self.n_words)):
            raise ConfigurationError("address outside the scanned buffer")
