"""Geometric organization of the simulated LPDDR device.

A node's scanned region is modelled as a linear array of 32-bit words that
the memory controller maps onto (bank, row, column) coordinates.  The
geometry matters for two of the paper's observations:

* one physical disturbance (a neutron-induced charge cloud, a weak spot in
  one chip) touches cells that are *physically* close — same row/column
  neighbourhoods — yet the controller interleaving maps them to scattered
  *logical* addresses, producing the "multiple single-bit errors in
  different memory regions at the same instant" phenomenon of Sec III-C;
* whole-row/whole-column faults (related work, Sridharan & Liberty) touch
  many words sharing a coordinate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class DramGeometry:
    """Bank/row/column organization of a scanned region.

    The default models a 3 GB region as 8 banks of 32768 rows x 3072
    columns of 32-bit words (8*32768*3072 words * 4 B = 3 GiB).
    """

    n_banks: int = 8
    n_rows: int = 32768
    n_cols: int = 3072

    def __post_init__(self) -> None:
        if min(self.n_banks, self.n_rows, self.n_cols) < 1:
            raise ConfigurationError("geometry dimensions must be positive")

    @property
    def words_per_bank(self) -> int:
        return self.n_rows * self.n_cols

    @property
    def total_words(self) -> int:
        return self.n_banks * self.words_per_bank

    @property
    def total_bytes(self) -> int:
        return self.total_words * 4

    @classmethod
    def for_capacity_mb(cls, mb: int, n_banks: int = 8, n_cols: int = 1024):
        """A geometry covering at least ``mb`` megabytes with given shape."""
        words = (int(mb) * 1024 * 1024) // 4
        rows = max(1, -(-words // (n_banks * n_cols)))
        return cls(n_banks=n_banks, n_rows=rows, n_cols=n_cols)

    # -- coordinate transforms (vectorized) --------------------------------

    def decompose(self, word_index: np.ndarray | int):
        """(bank, row, col) of linear word indices, controller-interleaved.

        Banks are interleaved at word granularity (standard practice for
        bandwidth), so consecutive logical words hit different banks:
        ``word -> bank = word % n_banks``, then row-major within the bank.
        """
        idx = np.asarray(word_index, dtype=np.int64)
        if np.any((idx < 0) | (idx >= self.total_words)):
            raise ConfigurationError("word index outside device")
        bank = idx % self.n_banks
        within = idx // self.n_banks
        row = within // self.n_cols
        col = within % self.n_cols
        return bank[()], row[()], col[()]

    def compose(self, bank, row, col) -> np.ndarray | int:
        """Inverse of :meth:`decompose`."""
        bank = np.asarray(bank, dtype=np.int64)
        row = np.asarray(row, dtype=np.int64)
        col = np.asarray(col, dtype=np.int64)
        if np.any((bank < 0) | (bank >= self.n_banks)):
            raise ConfigurationError("bank outside device")
        if np.any((row < 0) | (row >= self.n_rows)):
            raise ConfigurationError("row outside device")
        if np.any((col < 0) | (col >= self.n_cols)):
            raise ConfigurationError("col outside device")
        return ((row * self.n_cols + col) * self.n_banks + bank)[()]

    def row_words(self, bank: int, row: int) -> np.ndarray:
        """All word indices stored in one physical row of one bank."""
        cols = np.arange(self.n_cols, dtype=np.int64)
        return np.asarray(self.compose(bank, row, cols))

    def column_words(self, bank: int, col: int) -> np.ndarray:
        """All word indices sharing one physical column of one bank."""
        rows = np.arange(self.n_rows, dtype=np.int64)
        return np.asarray(self.compose(bank, rows, col))

    def physical_neighborhood(
        self, word_index: int, radius: int = 2
    ) -> np.ndarray:
        """Word indices physically near a word (same bank, row/col window).

        Used by the multi-region event model: a single particle strike
        corrupts cells within a physical neighbourhood, which this method
        maps back to scattered logical addresses.
        """
        bank, row, col = self.decompose(int(word_index))
        rows = np.arange(max(0, row - radius), min(self.n_rows, row + radius + 1))
        cols = np.arange(max(0, col - radius), min(self.n_cols, col + radius + 1))
        rr, cc = np.meshgrid(rows, cols, indexing="ij")
        return np.asarray(self.compose(bank, rr.ravel(), cc.ravel()))
