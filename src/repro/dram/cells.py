"""Backing store of the simulated device: the cell array.

The cell array holds the current content of every 32-bit word plus the
sparse overlays that persistent faults impose (stuck bits).  Reads and
writes are fully vectorized over NumPy arrays; the stuck overlay is kept
sparse (dict of word -> (mask, value)) because real devices have at most a
handful of stuck words, so applying it costs O(#stuck) not O(#words).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ConfigurationError


class CellArray:
    """A linear array of 32-bit words with a sparse stuck-bit overlay."""

    def __init__(self, n_words: int, fill: int = 0):
        if n_words <= 0:
            raise ConfigurationError("cell array needs at least one word")
        self.n_words = int(n_words)
        self._words = np.full(self.n_words, fill & 0xFFFFFFFF, dtype=np.uint32)
        # word_index -> (stuck mask, stuck value within mask)
        self._stuck: dict[int, tuple[int, int]] = {}

    # -- write path ---------------------------------------------------------

    def write(self, word_index: int, value: int) -> None:
        """Store one word (stuck bits silently refuse the new value)."""
        self._words[word_index] = np.uint32(value & 0xFFFFFFFF)

    def fill(self, value: int) -> None:
        """Store the same value into every word (the scanner's write pass)."""
        self._words.fill(np.uint32(value & 0xFFFFFFFF))

    def write_block(self, start: int, values: np.ndarray) -> None:
        """Store a contiguous block of words."""
        values = np.asarray(values, dtype=np.uint32)
        self._words[start : start + values.shape[0]] = values

    # -- read path ------------------------------------------------------------

    def read(self, word_index: int) -> int:
        """Read one word with the stuck overlay applied."""
        raw = int(self._words[word_index])
        stuck = self._stuck.get(int(word_index))
        if stuck is not None:
            mask, value = stuck
            raw = (raw & ~mask | value) & 0xFFFFFFFF
        return raw

    def read_block(self, start: int = 0, count: int | None = None) -> np.ndarray:
        """Read a contiguous block (a *copy*) with the stuck overlay applied.

        Returns a copy rather than a view because the overlay must not
        contaminate the backing store.
        """
        if count is None:
            count = self.n_words - start
        out = self._words[start : start + count].copy()
        for idx, (mask, value) in self._stuck.items():
            if start <= idx < start + count:
                out[idx - start] = (int(out[idx - start]) & ~mask | value) & 0xFFFFFFFF
        return out

    # -- fault manipulation ---------------------------------------------------

    def xor_word(self, word_index: int, flip_mask: int) -> None:
        """Corrupt the stored value of one word (transient upset)."""
        self._words[word_index] = np.uint32(
            int(self._words[word_index]) ^ (flip_mask & 0xFFFFFFFF)
        )

    def set_bits(self, word_index: int, mask: int, value: int) -> None:
        """Force selected stored bits to given levels (weak-cell firing)."""
        raw = int(self._words[word_index])
        self._words[word_index] = np.uint32((raw & ~mask | (value & mask)) & 0xFFFFFFFF)

    def add_stuck(self, word_index: int, mask: int, value: int) -> None:
        """Install (or merge) a stuck-bit overlay on one word."""
        if not 0 <= word_index < self.n_words:
            raise ConfigurationError("stuck word outside device")
        mask &= 0xFFFFFFFF
        value &= mask
        old = self._stuck.get(int(word_index))
        if old is not None:
            old_mask, old_value = old
            value = (old_value & ~mask) | value
            mask = old_mask | mask
        self._stuck[int(word_index)] = (mask, value)

    def clear_stuck(self, word_index: int | None = None) -> None:
        """Remove one stuck overlay, or all of them."""
        if word_index is None:
            self._stuck.clear()
        else:
            self._stuck.pop(int(word_index), None)

    @property
    def stuck_words(self) -> dict[int, tuple[int, int]]:
        """Read-only view of the stuck overlay (word -> (mask, value))."""
        return dict(self._stuck)
