"""Fault taxonomy for the simulated device.

These dataclasses describe *physical* faults; applying one to a
:class:`~repro.dram.device.SimulatedDram` changes what subsequent reads
return.  The taxonomy mirrors the phenomena the paper identifies:

* :class:`TransientFlip` — a one-shot upset (cosmic-ray SEU): the stored
  value is corrupted once; the scanner's next rewrite clears it.
* :class:`StuckCell` — a cell (or group of bits in one word) that returns
  a fixed value regardless of writes; produces the endless streams of
  identical ERROR lines the removed faulty node emitted (>98% of raw logs).
* :class:`WeakCell` — a manufacturing-variability cell that intermittently
  leaks charge: each time it *fires* the stored bit decays toward its
  discharge value; the 100%-identical-bit signature of nodes 04-05/58-02.
* :class:`MultiCellEvent` — one particle strike corrupting several cells
  in a physical neighbourhood; through the controller interleave and the
  bit swizzle it appears as simultaneous errors at scattered logical
  addresses (Sec III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.bitops import WORD_BITS


@dataclass(frozen=True)
class TransientFlip:
    """A one-shot XOR of ``flip_mask`` into the word at ``word_index``."""

    word_index: int
    flip_mask: int

    def __post_init__(self) -> None:
        if not 0 < self.flip_mask <= 0xFFFFFFFF:
            raise ValueError("flip_mask must be a nonzero 32-bit mask")


@dataclass(frozen=True)
class StuckCell:
    """Bits of one word permanently stuck at given values.

    ``mask`` selects the stuck bits; ``value`` gives their stuck levels.
    """

    word_index: int
    mask: int
    value: int

    def __post_init__(self) -> None:
        if not 0 < self.mask <= 0xFFFFFFFF:
            raise ValueError("mask must be a nonzero 32-bit mask")
        if self.value & ~self.mask & 0xFFFFFFFF:
            raise ValueError("value has bits outside mask")


@dataclass(frozen=True)
class WeakCell:
    """An intermittently leaking cell.

    ``bit`` is the logical bit position; ``discharge_value`` is the level
    the cell decays to when it fires (0 for a true cell losing charge,
    1 for an anti-cell).  The firing schedule lives in the fault-injection
    model; this object only describes the physics of one firing.
    """

    word_index: int
    bit: int
    discharge_value: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.bit < WORD_BITS:
            raise ValueError("bit outside word")
        if self.discharge_value not in (0, 1):
            raise ValueError("discharge_value must be 0 or 1")

    @property
    def mask(self) -> int:
        return 1 << self.bit


@dataclass(frozen=True)
class RowFault:
    """A whole physical row failing (related work: Sridharan & Liberty).

    Every word of one (bank, row) loses the same physical data lines;
    expressed as a stuck fault over the row when applied to a device with
    geometry attached.
    """

    bank: int
    row: int
    mask: int
    value: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.mask <= 0xFFFFFFFF:
            raise ValueError("mask must be a nonzero 32-bit mask")
        if self.value & ~self.mask & 0xFFFFFFFF:
            raise ValueError("value has bits outside mask")


@dataclass(frozen=True)
class ColumnFault:
    """A whole physical column failing (one bit line of one bank)."""

    bank: int
    col: int
    mask: int
    value: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.mask <= 0xFFFFFFFF:
            raise ValueError("mask must be a nonzero 32-bit mask")
        if self.value & ~self.mask & 0xFFFFFFFF:
            raise ValueError("value has bits outside mask")


@dataclass(frozen=True)
class MultiCellEvent:
    """One physical event corrupting several words at the same instant."""

    flips: tuple[TransientFlip, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.flips:
            raise ValueError("MultiCellEvent needs at least one flip")
        if len({f.word_index for f in self.flips}) != len(self.flips):
            raise ValueError("MultiCellEvent flips must hit distinct words")

    @property
    def n_words(self) -> int:
        return len(self.flips)

    @property
    def total_bits(self) -> int:
        from ..core.bitops import popcount

        return int(sum(popcount(f.flip_mask) for f in self.flips))


def charge_loss_mask(
    stored: int, n_bits: int, rng: np.random.Generator, p_one_to_zero: float = 0.9
) -> int:
    """Draw a flip mask with the paper's 1->0 dominance.

    Each flipped bit is a charge-loss (1->0) flip with probability
    ``p_one_to_zero`` — only possible on bits currently storing 1 — and a
    0->1 flip otherwise.  If the stored word lacks bits in the wanted
    direction, the other direction is used, so the requested number of
    flips is always produced for words that have ``n_bits`` flippable bits.
    """
    stored &= 0xFFFFFFFF
    ones = [b for b in range(WORD_BITS) if (stored >> b) & 1]
    zeros = [b for b in range(WORD_BITS) if not (stored >> b) & 1]
    mask = 0
    for _ in range(n_bits):
        want_loss = rng.random() < p_one_to_zero
        pool = ones if (want_loss and ones) or not zeros else zeros
        if not pool:
            break
        bit = pool.pop(int(rng.integers(len(pool))))
        mask |= 1 << bit
    return mask
