"""Live log monitoring: the operational side of the study's daemon.

The study analysed its logs after the fact; a production deployment of
the same scanner wants the analysis *online*: tail the per-node log
files as the daemon appends to them, maintain per-node state, raise the
Sec III-I alarms as bursts develop, and recommend the Sec IV actions
(quarantine, checkpoint tightening).

:class:`LogFollower` incrementally reads a directory of ``<node>.log``
files (tracking per-file offsets, tolerating rotation/truncation);
:class:`OnlineMonitor` feeds new ERROR records to the spatio-temporal
predictor and emits :class:`Advice` events.  ``repro monitor --dir``
drives it from the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from .core.records import ErrorRecord, LogRecord, RecordKind
from .logs.format import parse_line
from .logs.frame import ErrorFrame
from .resilience.prediction import PredictorConfig


class LogFollower:
    """Incremental reader over a directory of per-node log files.

    Tracks a ``(inode, offset)`` pair per file so it survives the ways a
    live log directory misbehaves:

    * **truncation** — the file shrank below our offset (e.g. the daemon
      restarted with a fresh log): re-read from the start;
    * **rotation** — the path now names a *different* file (inode
      changed, as with ``logrotate``'s rename-and-recreate), even if the
      new file is already larger than our old offset: re-read from the
      start of the new file;
    * **disappearance** — the file vanished between polls (or between
      ``stat`` and ``open``): skip it this round and drop its state, so
      a later re-creation is read from offset 0.

    Partial trailing lines are never consumed; they are completed (or
    not) by a subsequent poll.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        # path -> (inode, byte offset of the next unread character)
        self._state: dict[Path, tuple[int, int]] = {}

    def poll(self) -> list[LogRecord]:
        """All records appended since the previous poll, across files."""
        records: list[LogRecord] = []
        seen: set[Path] = set()
        for log_file in sorted(self.directory.glob("*.log")):
            try:
                stat = log_file.stat()
            except OSError:
                continue  # vanished since glob; state dropped below
            seen.add(log_file)
            inode, offset = self._state.get(log_file, (stat.st_ino, 0))
            if stat.st_ino != inode or stat.st_size < offset:
                # Rotated (new inode) or truncated: start over.
                inode, offset = stat.st_ino, 0
            if stat.st_size == offset:
                self._state[log_file] = (inode, offset)
                continue
            try:
                with open(log_file, "r", encoding="ascii") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                seen.discard(log_file)  # vanished mid-poll; retry fresh
                continue
            # Only consume complete lines; carry partials to next poll.
            consumed = chunk.rfind("\n") + 1
            for line in chunk[:consumed].splitlines():
                if line.strip():
                    records.append(parse_line(line))
            self._state[log_file] = (
                inode,
                offset + len(chunk[:consumed].encode("ascii")),
            )
        for stale in set(self._state) - seen:
            del self._state[stale]
        records.sort(key=lambda r: r.timestamp_hours)
        return records


@dataclass(frozen=True)
class Advice:
    """One operational recommendation emitted by the monitor."""

    time_hours: float
    node: str
    kind: str       # "quarantine" | "tighten-checkpoints"
    reason: str


@dataclass
class MonitorState:
    """Aggregates maintained across polls.

    ``n_errors`` counts error *records*; ``n_raw_lines`` expands their
    repeat compression (the paper's raw-log-line unit).
    """

    n_errors: int = 0
    n_raw_lines: int = 0
    n_alarms: int = 0
    errors_by_node: dict[str, int] = field(default_factory=dict)


class OnlineMonitor:
    """Streaming Sec III-I/IV policy engine over incoming records."""

    def __init__(
        self,
        predictor_config: PredictorConfig | None = None,
        quarantine_days: float = 30.0,
    ):
        self.config = predictor_config or PredictorConfig()
        self.quarantine_days = quarantine_days
        self.state = MonitorState()
        self._recent: dict[str, list[float]] = {}
        self._alarmed_until: dict[str, float] = {}

    def ingest(self, records: list[LogRecord]) -> list[Advice]:
        """Feed new records; return any advice triggered by them."""
        advice: list[Advice] = []
        for record in records:
            if record.kind is not RecordKind.ERROR:
                continue
            assert isinstance(record, ErrorRecord)
            node = record.node
            t = record.timestamp_hours
            self.state.n_errors += 1
            self.state.n_raw_lines += record.repeat_count
            self.state.errors_by_node[node] = (
                self.state.errors_by_node.get(node, 0) + 1
            )
            if t < self._alarmed_until.get(node, float("-inf")):
                continue
            window = self._recent.setdefault(node, [])
            window.append(t)
            cutoff = t - self.config.window_hours
            while window and window[0] < cutoff:
                window.pop(0)
            if len(window) > self.config.trigger_count:
                self._alarmed_until[node] = t + self.config.horizon_hours
                self.state.n_alarms += 1
                window.clear()
                advice.append(
                    Advice(
                        time_hours=t,
                        node=node,
                        kind="quarantine",
                        reason=(
                            f"more than {self.config.trigger_count} errors "
                            f"within {self.config.window_hours:.0f}h: "
                            f"quarantine for {self.quarantine_days:.0f} days"
                        ),
                    )
                )
                advice.append(
                    Advice(
                        time_hours=t,
                        node=node,
                        kind="tighten-checkpoints",
                        reason=(
                            "degraded regime on this node: shorten the "
                            "checkpoint interval until the alarm clears"
                        ),
                    )
                )
        return advice


def monitor_directory(
    directory: str | Path,
    predictor_config: PredictorConfig | None = None,
) -> Iterator[Advice]:
    """One full pass over a log directory, yielding advice in order.

    For a one-shot (non-daemon) review of a collected log set; the CLI
    uses this for ``repro monitor``.
    """
    follower = LogFollower(directory)
    monitor = OnlineMonitor(predictor_config)
    for item in monitor.ingest(follower.poll()):
        yield item


def frame_from_directory(directory: str | Path) -> ErrorFrame:
    """Convenience: all ERROR records of a log directory as a table."""
    follower = LogFollower(directory)
    errors = [
        r for r in follower.poll() if r.kind is RecordKind.ERROR
    ]
    return ErrorFrame.from_records(errors)
