"""Cluster substrate: the studied machine's topology, nodes and thermals."""

from .node import Node, NodeRole, NodeState
from .registry import ClusterRegistry, TopologyConfig, names
from .thermal import ThermalPlacement, placement_for
from .topology import (
    BLADES_PER_CHASSIS,
    CHASSIS_PER_RACK,
    OVERHEATING_SOC,
    SHUTDOWN_BLADE,
    SOCS_PER_BLADE,
    STUDY_BLADES,
    STUDY_NODES,
    TOTAL_BLADES,
    TOTAL_NODES,
    NodeId,
    study_node_ids,
)

__all__ = [
    "BLADES_PER_CHASSIS",
    "CHASSIS_PER_RACK",
    "ClusterRegistry",
    "Node",
    "NodeId",
    "NodeRole",
    "NodeState",
    "OVERHEATING_SOC",
    "SHUTDOWN_BLADE",
    "SOCS_PER_BLADE",
    "STUDY_BLADES",
    "STUDY_NODES",
    "ThermalPlacement",
    "TopologyConfig",
    "TOTAL_BLADES",
    "TOTAL_NODES",
    "names",
    "placement_for",
    "study_node_ids",
]
