"""Thermal placement model for the prototype.

The paper observes: SoC-12 slots overheat due to rack position (and heat
their neighbours), room temperature is kept between 18 and 26 C, most
errors are logged at node temperatures of 30-40 C (the scanner barely
loads the CPU), and a small error population sits above 60 C.

This module assigns each node a static *thermal offset* from room
temperature depending on its slot, which the environment model combines
with the room temperature time series to produce the per-record
temperature telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .topology import OVERHEATING_SOC, NodeId

#: Baseline node-over-room offset while running only the scanner (deg C).
IDLE_OFFSET_C = 12.0

#: Extra offset for the overheating SoC-12 slots while they are on.
OVERHEATING_EXTRA_C = 38.0

#: Extra offset for slots adjacent to SoC 12 (heated by their neighbour).
NEIGHBOR_EXTRA_C = 6.0

#: Mild gradient along the blade: higher slot index sits higher in the
#: chassis airflow and runs slightly warmer.
SLOT_GRADIENT_C = 0.15


@dataclass(frozen=True)
class ThermalPlacement:
    """Static thermal character of one slot."""

    node_id: NodeId
    offset_c: float

    def node_temperature(self, room_c: float | np.ndarray) -> np.ndarray | float:
        """Node temperature given room temperature(s)."""
        return np.asarray(room_c) + self.offset_c


def placement_for(node_id: NodeId) -> ThermalPlacement:
    """Thermal placement of a slot from its coordinates."""
    offset = IDLE_OFFSET_C + SLOT_GRADIENT_C * (node_id.soc - 1)
    if node_id.soc == OVERHEATING_SOC:
        offset += OVERHEATING_EXTRA_C
    elif node_id.near_overheating_slot:
        offset += NEIGHBOR_EXTRA_C
    return ThermalPlacement(node_id, offset)


def offsets_grid(n_blades: int, socs_per_blade: int) -> np.ndarray:
    """Grid of static thermal offsets for the whole machine."""
    out = np.empty((n_blades, socs_per_blade))
    for blade in range(1, n_blades + 1):
        for soc in range(1, socs_per_blade + 1):
            out[blade - 1, soc - 1] = placement_for(NodeId(blade, soc)).offset_c
    return out
