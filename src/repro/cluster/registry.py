"""Cluster registry: builds the studied machine and answers queries.

The registry materializes the paper's population: 945 grid slots, of which
9 are login nodes, a handful are dead hardware, and 923 end up continuously
scanned.  It also renders per-node quantities into the 63x15 grids used by
the paper's heat-map figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from ..core.errors import TopologyError
from .node import Node, NodeRole
from .topology import (
    SHUTDOWN_BLADE,
    SOCS_PER_BLADE,
    STUDY_BLADES,
    NodeId,
    study_node_ids,
)

#: Number of login nodes (Sec II-A): first SoC of the first 9 blades.
N_LOGIN_NODES = 9

#: Dead nodes (permanent hardware failures, never scanned).  The paper
#: reports 923 scanned of 945 slots: 945 - 9 login - 13 dead = 923.  The
#: coordinates are not published; these are fixed, arbitrary picks spread
#: over the machine (deterministic so every experiment sees one machine).
DEFAULT_DEAD_NODES: tuple[str, ...] = (
    "07-03", "11-14", "16-08", "22-01", "27-11", "31-05", "36-15",
    "41-02", "45-09", "50-13", "54-06", "59-10", "62-04",
)


@dataclass(frozen=True)
class TopologyConfig:
    """How the studied machine population is commissioned."""

    n_login_nodes: int = N_LOGIN_NODES
    dead_nodes: tuple[str, ...] = DEFAULT_DEAD_NODES
    #: The SoC-12 slots are powered off for long stretches once their
    #: overheating is recognized (study hours; ~June 2015 onward).
    soc12_off_start_hours: float = 120 * 24.0
    soc12_off_end_hours: float = 425 * 24.0
    #: Blade 33 is shut down for a long period due to hardware issues.
    blade33_off_start_hours: float = 60 * 24.0
    blade33_off_end_hours: float = 300 * 24.0


class ClusterRegistry:
    """All nodes of the studied machine, indexed by :class:`NodeId`."""

    def __init__(self, config: TopologyConfig | None = None):
        self.config = config or TopologyConfig()
        self._nodes: dict[NodeId, Node] = {}
        self._build()

    def _build(self) -> None:
        cfg = self.config
        dead = {NodeId.parse(n) for n in cfg.dead_nodes}
        for node_id in study_node_ids():
            if node_id.blade <= cfg.n_login_nodes and node_id.soc == 1:
                role = NodeRole.LOGIN
            elif node_id in dead:
                role = NodeRole.DEAD
            else:
                role = NodeRole.COMPUTE
            node = Node(node_id, role=role)
            if role is NodeRole.COMPUTE:
                if node_id.overheating_slot:
                    node.add_off_interval(
                        cfg.soc12_off_start_hours, cfg.soc12_off_end_hours
                    )
                if node_id.blade == SHUTDOWN_BLADE:
                    node.add_off_interval(
                        cfg.blade33_off_start_hours, cfg.blade33_off_end_hours
                    )
            self._nodes[node_id] = node

    # -- basic queries ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes.values())

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def get(self, node_id: NodeId | str) -> Node:
        if isinstance(node_id, str):
            node_id = NodeId.parse(node_id)
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"node {node_id} not in the studied machine")

    def nodes(self, role: NodeRole | None = None) -> list[Node]:
        if role is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.role is role]

    def scanned_nodes(self) -> list[Node]:
        """The compute nodes that take part in the scanning study (923)."""
        return self.nodes(NodeRole.COMPUTE)

    @property
    def n_scanned(self) -> int:
        return len(self.scanned_nodes())

    # -- heat-map grids ---------------------------------------------------

    def grid(
        self,
        values: Mapping[str, float] | Callable[[Node], float],
        fill: float = 0.0,
        dtype=np.float64,
    ) -> np.ndarray:
        """Render a per-node quantity into the paper's 63x15 grid.

        ``values`` is either a mapping from node name (``BB-SS``) to value,
        or a callable evaluated on every node.  Slots for login/dead nodes
        keep ``fill`` unless explicitly present in the mapping.
        """
        out = np.full((STUDY_BLADES, SOCS_PER_BLADE), fill, dtype=dtype)
        if callable(values):
            for node in self._nodes.values():
                out[node.node_id.grid_index] = values(node)
        else:
            for name, value in values.items():
                node_id = NodeId.parse(name)
                if node_id not in self._nodes:
                    raise TopologyError(f"grid value for unknown node {name}")
                out[node_id.grid_index] = value
        return out

    def role_grid(self) -> np.ndarray:
        """Grid of role codes: 0=compute, 1=login, 2=dead."""
        codes = {NodeRole.COMPUTE: 0, NodeRole.LOGIN: 1, NodeRole.DEAD: 2}
        return self.grid(lambda n: codes[n.role], dtype=np.int64)


def names(nodes: Iterable[Node]) -> list[str]:
    """Names (``BB-SS``) of an iterable of nodes."""
    return [str(n.node_id) for n in nodes]
