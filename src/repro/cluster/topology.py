"""Physical topology of the Mont-Blanc-style prototype.

The machine in the paper has 72 blades of 15 SoCs (1080 nodes) in 2 racks
of 4 chassis of 9 blades.  One full chassis (9 blades) was dedicated to
another study, leaving the 63 blades x 15 SoCs grid that every heat map in
the paper (Figs 1-3) uses.  Nodes are named ``BB-SS`` (blade, SoC), both
1-based, e.g. ``02-04`` — the hot node of Fig 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from ..core.errors import TopologyError

#: Full machine dimensions.
TOTAL_BLADES = 72
SOCS_PER_BLADE = 15
TOTAL_NODES = TOTAL_BLADES * SOCS_PER_BLADE  # 1080

#: Blades per chassis and chassis per rack.
BLADES_PER_CHASSIS = 9
CHASSIS_PER_RACK = 4

#: Blades taking part in the reliability study (one chassis excluded).
STUDY_BLADES = 63
STUDY_NODES = STUDY_BLADES * SOCS_PER_BLADE  # 945

#: The SoC slot (1-based) that overheats due to its position in the rack.
OVERHEATING_SOC = 12

#: Blade shut down during the year due to hardware issues (Sec III-A).
SHUTDOWN_BLADE = 33


@total_ordering
@dataclass(frozen=True, slots=True)
class NodeId:
    """Blade/SoC coordinate of one node, 1-based on both axes."""

    blade: int
    soc: int

    def __post_init__(self) -> None:
        if not 1 <= self.blade <= TOTAL_BLADES:
            raise TopologyError(f"blade {self.blade} outside 1..{TOTAL_BLADES}")
        if not 1 <= self.soc <= SOCS_PER_BLADE:
            raise TopologyError(f"SoC {self.soc} outside 1..{SOCS_PER_BLADE}")

    def __str__(self) -> str:
        return f"{self.blade:02d}-{self.soc:02d}"

    def __lt__(self, other: "NodeId") -> bool:
        return (self.blade, self.soc) < (other.blade, other.soc)

    @classmethod
    def parse(cls, text: str) -> "NodeId":
        """Parse a ``BB-SS`` node name."""
        try:
            blade_s, soc_s = text.split("-")
            return cls(int(blade_s), int(soc_s))
        except (ValueError, TypeError) as exc:
            raise TopologyError(f"malformed node id {text!r}") from exc

    @property
    def chassis(self) -> int:
        """Chassis index (1-based) within the machine."""
        return (self.blade - 1) // BLADES_PER_CHASSIS + 1

    @property
    def rack(self) -> int:
        """Rack index (1-based)."""
        return (self.chassis - 1) // CHASSIS_PER_RACK + 1

    @property
    def grid_index(self) -> tuple[int, int]:
        """(row, col) position in the 63x15 heat-map grid, 0-based."""
        return (self.blade - 1, self.soc - 1)

    @property
    def overheating_slot(self) -> bool:
        """True for the SoC-12 position the admins had to power off."""
        return self.soc == OVERHEATING_SOC

    @property
    def near_overheating_slot(self) -> bool:
        """Physically adjacent to the overheating SoC-12 slot.

        Sec III-D observes that nodes hosting isolated undetectable errors
        sit near SoC 12; we define "near" as a SoC index within 1 slot.
        """
        return abs(self.soc - OVERHEATING_SOC) == 1

    def neighbors(self) -> tuple["NodeId", ...]:
        """Nodes in adjacent slots on the same blade (1-D blade layout)."""
        out = []
        for soc in (self.soc - 1, self.soc + 1):
            if 1 <= soc <= SOCS_PER_BLADE:
                out.append(NodeId(self.blade, soc))
        return tuple(out)


def study_node_ids() -> list[NodeId]:
    """All 945 node coordinates in the study grid, row-major order."""
    return [
        NodeId(blade, soc)
        for blade in range(1, STUDY_BLADES + 1)
        for soc in range(1, SOCS_PER_BLADE + 1)
    ]
