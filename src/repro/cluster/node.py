"""Per-node role and availability state.

Roles are static properties decided at commissioning time (login node,
dead hardware); states evolve over the study (idle/busy/powered off) and
drive when the memory scanner may run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .topology import NodeId


class NodeRole(str, Enum):
    """Commissioned role of a node (fixed for the whole study)."""

    COMPUTE = "compute"  # takes part in the scanning study
    LOGIN = "login"      # one of the 9 login nodes, never scanned
    DEAD = "dead"        # permanent hardware failure, never scanned


class NodeState(str, Enum):
    """Operational state at a point in time."""

    IDLE = "idle"  # no job running: scanner may run
    BUSY = "busy"  # job running: scanner stopped by prologue
    OFF = "off"    # powered down (overheating SoC-12 slots, blade 33)


@dataclass
class Node:
    """A single SoC node with its role and time-varying state."""

    node_id: NodeId
    role: NodeRole = NodeRole.COMPUTE
    state: NodeState = NodeState.IDLE
    #: Intervals [start, end) in study-hours during which the node is
    #: administratively powered off (sorted, non-overlapping).
    off_intervals: list[tuple[float, float]] = field(default_factory=list)

    @property
    def scannable(self) -> bool:
        """Whether this node participates in the reliability study at all."""
        return self.role is NodeRole.COMPUTE

    def add_off_interval(self, start: float, end: float) -> None:
        if end <= start:
            raise ValueError("off interval must have positive length")
        self.off_intervals.append((float(start), float(end)))
        self.off_intervals.sort()

    def is_off(self, t_hours: float) -> bool:
        """Whether the node is powered off at time ``t_hours``."""
        for start, end in self.off_intervals:
            if start <= t_hours < end:
                return True
            if start > t_hours:
                break
        return False

    def on_windows(self, start: float, end: float) -> list[tuple[float, float]]:
        """Sub-intervals of ``[start, end)`` during which the node is on."""
        if not self.scannable:
            return []
        windows: list[tuple[float, float]] = []
        cursor = float(start)
        for off_start, off_end in self.off_intervals:
            if off_end <= cursor:
                continue
            if off_start >= end:
                break
            if off_start > cursor:
                windows.append((cursor, min(off_start, end)))
            cursor = max(cursor, off_end)
            if cursor >= end:
                break
        if cursor < end:
            windows.append((cursor, float(end)))
        return windows

    def off_hours(self, start: float, end: float) -> float:
        """Total powered-off hours within ``[start, end)``."""
        on = sum(e - s for s, e in self.on_windows(start, end))
        return (end - start) - on if self.scannable else (end - start)
