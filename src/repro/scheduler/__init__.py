"""Job-scheduler substrate: idle-window generation for scanner runs."""

from .batch import BatchScheduler, ScheduledScan
from .jobs import ActivityConfig, DailyActivityGenerator, IdleWindow

__all__ = [
    "ActivityConfig",
    "BatchScheduler",
    "DailyActivityGenerator",
    "IdleWindow",
    "ScheduledScan",
]
