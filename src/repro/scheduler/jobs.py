"""Per-node daily job activity -> idle windows for the scanner.

The scanner runs exactly when a node is idle, so scanning coverage is the
complement of job load.  For each node-day the generator draws a total
idle budget around the calendar's idle fraction and splits it into a few
idle windows separated by job bursts.  All random draws for a node's whole
year are vectorized up front; the per-day assembly is plain float
arithmetic, keeping the 923-node x 425-day campaign cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import timeutils
from ..environment.calendar import AcademicCalendar


@dataclass(frozen=True)
class ActivityConfig:
    """Shape of daily activity cycles."""

    #: Mean number of idle windows per day (when there is idle time).
    mean_windows: float = 2.0
    #: Standard deviation of the daily idle-fraction jitter.
    idle_jitter: float = 0.06
    max_windows: int = 4
    #: Probability scale for a *fully idle* day (no jobs at all) when the
    #: calendar is deep in vacation.  Fully idle days produce windows that
    #: span midnight-to-midnight; consecutive ones merge into the
    #: multi-day scan sessions seen during August/December (and needed by
    #: the long counting-pattern sessions behind several Table I rows).
    p_zero_jobs_scale: float = 0.8
    #: Idle fraction above which zero-job days start appearing.
    zero_jobs_threshold: float = 0.60


@dataclass(frozen=True)
class IdleWindow:
    """One idle interval on one node, in absolute study hours."""

    start_hours: float
    end_hours: float

    @property
    def duration_hours(self) -> float:
        return self.end_hours - self.start_hours


class DailyActivityGenerator:
    """Draws idle windows for one node across the whole study."""

    def __init__(
        self,
        calendar: AcademicCalendar,
        config: ActivityConfig | None = None,
        n_days: int = timeutils.STUDY_DAYS,
    ):
        self.calendar = calendar
        self.config = config or ActivityConfig()
        self.n_days = int(n_days)

    def idle_windows(self, rng: np.random.Generator) -> list[IdleWindow]:
        """All idle windows for one node over the study, chronological."""
        cfg = self.config
        days = np.arange(self.n_days)
        idle_frac = np.asarray(self.calendar.idle_fraction(days), dtype=np.float64)
        jitter = rng.normal(0.0, cfg.idle_jitter, size=self.n_days)
        idle_hours = np.clip((idle_frac + jitter) * 24.0, 0.0, 24.0)
        n_windows = np.clip(
            rng.poisson(cfg.mean_windows, size=self.n_days), 0, cfg.max_windows
        )
        # A day with idle time gets at least one window.
        n_windows = np.where((idle_hours > 0.2) & (n_windows == 0), 1, n_windows)
        # Deep-vacation days may see no jobs at all: one full-day window.
        p_zero = cfg.p_zero_jobs_scale * np.clip(
            (idle_frac - cfg.zero_jobs_threshold) / (1.0 - cfg.zero_jobs_threshold),
            0.0,
            1.0,
        )
        zero_jobs = rng.random(self.n_days) < p_zero
        # Pre-draw the split proportions for the maximum window count.
        split_draws = rng.random(size=(self.n_days, cfg.max_windows))
        gap_draws = rng.random(size=(self.n_days, cfg.max_windows + 1))
        # Each day's busy/idle layout is rotated by a uniform phase so
        # scanning coverage is flat in hour-of-day; without this, every
        # day starts with a job gap at midnight and coverage (hence
        # observed error counts, Fig 5) would show a spurious diurnal bell.
        phase_draws = rng.random(size=self.n_days) * 24.0

        windows: list[IdleWindow] = []
        for day in range(self.n_days):
            t0 = timeutils.day_start(day)
            if zero_jobs[day]:
                windows.append(IdleWindow(t0, t0 + 24.0))
                continue
            k = int(n_windows[day])
            idle = float(idle_hours[day])
            if k == 0 or idle <= 0.0:
                continue
            busy = 24.0 - idle
            # Proportions of the idle budget per window.
            w = split_draws[day, :k] + 0.25  # avoid degenerate slivers
            w = w / w.sum() * idle
            # Proportions of the busy budget per gap (k+1 gaps).
            g = gap_draws[day, : k + 1] + 0.10
            g = g / g.sum() * busy
            phase = float(phase_draws[day])
            cursor = 0.0
            for i in range(k):
                cursor += float(g[i])
                start = (cursor + phase) % 24.0
                duration = float(w[i])
                if start + duration <= 24.0:
                    windows.append(IdleWindow(t0 + start, t0 + start + duration))
                else:
                    windows.append(IdleWindow(t0 + start, t0 + 24.0))
                    windows.append(
                        IdleWindow(t0, t0 + (start + duration - 24.0))
                    )
                cursor += duration
        windows.sort(key=lambda w: w.start_hours)
        return windows

    def expected_idle_hours(self) -> float:
        """Calendar-implied idle hours over the study (no jitter)."""
        days = np.arange(self.n_days)
        return float(
            np.sum(np.asarray(self.calendar.idle_fraction(days)) * 24.0)
        )
