"""The batch scheduler orchestrating scanning across the machine.

Combines the cluster registry (which nodes exist, when they are powered
off) with per-node daily activity to produce, for every scanned node, the
idle windows during which the epilogue script launches the memory scanner.
This is the layer that creates the coverage structure of Figs 1, 2 and 9:
login nodes get nothing, SoC-12 slots lose their powered-off months,
blade 33 loses its downtime, everyone else accumulates ~5000 hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..cluster.node import Node
from ..cluster.registry import ClusterRegistry
from ..core.rng import RngFactory
from ..environment.calendar import AcademicCalendar
from .jobs import ActivityConfig, DailyActivityGenerator, IdleWindow


@dataclass(frozen=True)
class ScheduledScan:
    """An idle window on a specific node, ready for the scanner daemon."""

    node: str
    window: IdleWindow


class BatchScheduler:
    """Produces every scheduled scan window of the study."""

    def __init__(
        self,
        registry: ClusterRegistry,
        calendar: AcademicCalendar | None = None,
        activity: ActivityConfig | None = None,
        rng_factory: RngFactory | None = None,
        n_days: int | None = None,
    ):
        self.registry = registry
        self.calendar = calendar or AcademicCalendar()
        self.rng_factory = rng_factory or RngFactory()
        if n_days is None:
            self._generator = DailyActivityGenerator(self.calendar, activity)
        else:
            self._generator = DailyActivityGenerator(
                self.calendar, activity, n_days=n_days
            )

    def node_windows(self, node: Node) -> list[IdleWindow]:
        """Idle windows for one node, clipped to its powered-on intervals."""
        if not node.scannable:
            return []
        rng = self.rng_factory.fresh(f"scheduler/{node.node_id}")
        raw = self._generator.idle_windows(rng)
        windows: list[IdleWindow] = []
        for w in raw:
            for on_start, on_end in node.on_windows(w.start_hours, w.end_hours):
                if on_end > on_start:
                    windows.append(IdleWindow(on_start, on_end))
        return windows

    def all_scans(self) -> Iterator[ScheduledScan]:
        """Every scan window across the machine (node-major order)."""
        for node in self.registry.scanned_nodes():
            name = str(node.node_id)
            for window in self.node_windows(node):
                yield ScheduledScan(node=name, window=window)

    def total_idle_hours(self) -> float:
        """Total scheduled scanning hours over the machine (pre-daemon)."""
        return sum(
            w.duration_hours
            for node in self.registry.scanned_nodes()
            for w in self.node_windows(node)
        )
