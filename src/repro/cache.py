"""Disk-backed campaign/analysis cache.

The paper-scale campaign costs ~15 s per seed; figure sweeps, benchmarks
and the CLI all replay the same handful of configurations.  This module
persists campaign results under ``~/.cache/repro`` so repeated runs —
including runs in *different processes* — skip re-simulation entirely.

Keys
----

An entry is keyed on a SHA-256 digest over:

* the canonical field-by-field rendering of the :class:`CampaignConfig`
  (seed included; the execution fields ``workers``/``backend`` excluded,
  because every backend produces bit-identical results);
* the package version; and
* a fingerprint of the package's own source tree, so *any* code change
  invalidates every cached entry rather than silently serving stale
  simulations.

Storage is pickle — appropriate for a local cache of deterministic
simulation output, not an interchange format.  Unreadable or corrupt
entries are treated as misses.  Set ``REPRO_NO_CACHE=1`` to disable, or
``REPRO_CACHE_DIR`` to relocate the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from . import __version__

#: Bump to orphan every existing entry when the on-disk layout changes.
#: Schema 2: campaign archives are stored columnar (see repro.logs.columnar).
CACHE_SCHEMA = 2

#: Config fields that steer execution without affecting results.
EXECUTION_FIELDS = ("workers", "backend")


def cache_root() -> Path:
    """The cache directory (``REPRO_CACHE_DIR`` > XDG > ``~/.cache/repro``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_disabled_by_env() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")


def _canonical(obj: Any) -> Any:
    """A JSON-able, order-stable rendering of (nested) config objects."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        rendered = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        rendered["__type__"] = type(obj).__qualname__
        return rendered
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, float):
        return repr(obj)  # full precision, stable across platforms
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    return repr(obj)


_SOURCE_FINGERPRINT: str | None = None


def source_fingerprint() -> str:
    """Digest of every ``.py`` file in the installed ``repro`` package.

    Hashing file *contents* (not mtimes) keeps the fingerprint identical
    across processes and machines for the same code, while any edit to
    the simulation invalidates the whole cache.
    """
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is None:
        package_dir = Path(__file__).parent
        digest = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(str(path.relative_to(package_dir)).encode())
            digest.update(path.read_bytes())
        _SOURCE_FINGERPRINT = digest.hexdigest()
    return _SOURCE_FINGERPRINT


def config_digest(config: Any, exclude: tuple[str, ...] = EXECUTION_FIELDS) -> str:
    """Stable cache key for a campaign configuration."""
    payload = _canonical(config)
    if isinstance(payload, dict):
        for name in exclude:
            payload.pop(name, None)
    envelope = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "source": source_fingerprint(),
        "config": payload,
    }
    blob = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


@dataclass
class CampaignCache:
    """Content-addressed pickle store for campaign results."""

    root: Path = field(default_factory=cache_root)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if cache_disabled_by_env():
            self.enabled = False

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- primitives ---------------------------------------------------------

    def load(self, key: str) -> Any | None:
        """The cached value for ``key``, or None on any kind of miss."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def store(self, key: str, value: Any) -> bool:
        """Persist ``value`` atomically; False if the write failed."""
        if not self.enabled:
            return False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self.path_for(key))
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            return False
        self.stats.stores += 1
        return True

    def get_or_compute(self, config: Any, compute: Callable[[], Any]) -> Any:
        """The cached result for ``config``, computing and storing on miss."""
        key = config_digest(config)
        value = self.load(key)
        if value is None:
            value = compute()
            self.store(key, value)
        return value

    # -- maintenance --------------------------------------------------------

    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


_DEFAULT_CACHE: CampaignCache | None = None


def default_cache() -> CampaignCache:
    """The process-wide cache instance (honours the env switches)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = CampaignCache()
    return _DEFAULT_CACHE
