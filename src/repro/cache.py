"""Disk-backed campaign/analysis cache.

The paper-scale campaign costs ~15 s per seed; figure sweeps, benchmarks
and the CLI all replay the same handful of configurations.  This module
persists campaign results under ``~/.cache/repro`` so repeated runs —
including runs in *different processes* — skip re-simulation entirely.

Keys
----

An entry is keyed on a SHA-256 digest over:

* the canonical field-by-field rendering of the :class:`CampaignConfig`
  (seed included; the execution fields ``workers``/``backend`` excluded,
  because every backend produces bit-identical results);
* the package version; and
* a fingerprint of the package's own source tree, so *any* code change
  invalidates every cached entry rather than silently serving stale
  simulations.

Storage is pickle — appropriate for a local cache of deterministic
simulation output, not an interchange format.  Unreadable or corrupt
entries are treated as misses.  Set ``REPRO_NO_CACHE=1`` to disable, or
``REPRO_CACHE_DIR`` to relocate the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from . import __version__
from .core.errors import CheckpointError

try:  # POSIX advisory locks; Windows falls back to lockfile spinning.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

#: Bump to orphan every existing entry when the on-disk layout changes.
#: Schema 2: campaign archives are stored columnar (see repro.logs.columnar).
CACHE_SCHEMA = 2

#: Config fields that steer execution without affecting results.
EXECUTION_FIELDS = ("workers", "backend")


def cache_root() -> Path:
    """The cache directory (``REPRO_CACHE_DIR`` > XDG > ``~/.cache/repro``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_disabled_by_env() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")


def _canonical(obj: Any) -> Any:
    """A JSON-able, order-stable rendering of (nested) config objects."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        rendered = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        rendered["__type__"] = type(obj).__qualname__
        return rendered
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, float):
        return repr(obj)  # full precision, stable across platforms
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    return repr(obj)


_SOURCE_FINGERPRINT: str | None = None


def source_fingerprint() -> str:
    """Digest of every ``.py`` file in the installed ``repro`` package.

    Hashing file *contents* (not mtimes) keeps the fingerprint identical
    across processes and machines for the same code, while any edit to
    the simulation invalidates the whole cache.
    """
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is None:
        package_dir = Path(__file__).parent
        digest = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(str(path.relative_to(package_dir)).encode())
            digest.update(path.read_bytes())
        _SOURCE_FINGERPRINT = digest.hexdigest()
    return _SOURCE_FINGERPRINT


def config_digest(config: Any, exclude: tuple[str, ...] = EXECUTION_FIELDS) -> str:
    """Stable cache key for a campaign configuration."""
    payload = _canonical(config)
    if isinstance(payload, dict):
        for name in exclude:
            payload.pop(name, None)
    envelope = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "source": source_fingerprint(),
        "config": payload,
    }
    blob = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class FileLock:
    """Advisory inter-process lock guarding a directory's writers.

    Uses ``flock`` where available (POSIX), else an ``O_EXCL`` lockfile
    with timed spinning.  Concurrent ``repro`` invocations serialize
    their cache/journal writes through this, so two processes can never
    interleave a torn entry.  Reentrant within a process is *not*
    supported — hold it for the shortest write possible.
    """

    def __init__(self, path: str | Path, timeout_s: float = 30.0):
        self.path = Path(path)
        self.timeout_s = timeout_s
        self._fd: int | None = None

    def acquire(self) -> None:
        import time as _time

        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            deadline = _time.monotonic() + self.timeout_s
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return
                except OSError:
                    if _time.monotonic() >= deadline:
                        os.close(fd)
                        raise TimeoutError(f"could not lock {self.path}")
                    _time.sleep(0.02)
        else:  # pragma: no cover - non-POSIX fallback
            deadline = _time.monotonic() + self.timeout_s
            while True:
                try:
                    self._fd = os.open(
                        self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
                    )
                    return
                except FileExistsError:
                    if _time.monotonic() >= deadline:
                        raise TimeoutError(f"could not lock {self.path}")
                    _time.sleep(0.02)

    def release(self) -> None:
        if self._fd is None:
            return
        if fcntl is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.close(self._fd)
            try:
                os.unlink(self.path)
            except OSError:
                pass
        self._fd = None

    def __enter__(self) -> "FileLock":
        try:
            self.acquire()
            return self
        except BaseException:
            # Never leak a held lock out of a failed __enter__ —
            # release() is a no-op when acquire() itself failed.
            self.release()
            raise

    def __exit__(self, *exc) -> None:
        self.release()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


@dataclass
class CampaignCache:
    """Content-addressed pickle store for campaign results."""

    root: Path = field(default_factory=cache_root)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if cache_disabled_by_env():
            self.enabled = False

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def _lock(self) -> FileLock:
        return FileLock(self.root / ".lock")

    # -- primitives ---------------------------------------------------------

    def load(self, key: str) -> Any | None:
        """The cached value for ``key``, or None on any kind of miss."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def store(self, key: str, value: Any) -> bool:
        """Persist ``value`` atomically; False if the write failed.

        The write is temp-file + ``os.replace`` (readers never see a torn
        entry) *and* serialized through an inter-process :class:`FileLock`
        so concurrent ``repro`` invocations storing the same key cannot
        interleave — last completed writer wins cleanly.
        """
        if not self.enabled:
            return False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with self._lock():
                fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as fh:
                        pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                        fh.flush()
                        os.fsync(fh.fileno())
                    os.replace(tmp, self.path_for(key))
                finally:
                    if os.path.exists(tmp):
                        os.unlink(tmp)
        except (OSError, TimeoutError):
            return False
        self.stats.stores += 1
        return True

    def get_or_compute(self, config: Any, compute: Callable[[], Any]) -> Any:
        """The cached result for ``config``, computing and storing on miss."""
        key = config_digest(config)
        value = self.load(key)
        if value is None:
            value = compute()
            self.store(key, value)
        return value

    # -- maintenance --------------------------------------------------------

    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# ---------------------------------------------------------------------------
# Campaign checkpoint journal
# ---------------------------------------------------------------------------

#: Frame magic for one journal entry; bump with the frame layout.
JOURNAL_MAGIC = b"RJN1"

#: Journal schema carried in meta.json; bump to orphan old checkpoints.
JOURNAL_SCHEMA = 1

_JOURNAL_META = "meta.json"
_JOURNAL_FILE = "journal.bin"
_HEADER_LEN = len(JOURNAL_MAGIC) + 8 + 32  # magic | u64 length | sha256


class CampaignJournal:
    """Append-only, fsync'd checkpoint of completed per-node results.

    The durability protocol mirrors the columnar archive's manifest-last
    discipline, adapted to incremental appends: ``meta.json`` (the
    config digest this checkpoint belongs to) is written first and
    fsync'd, then each completed node appends one checksummed frame —
    ``magic | u64 payload length | sha256(payload) | payload`` — to
    ``journal.bin``, fsync'd per append.  A crash mid-append leaves a
    torn tail that :meth:`entries` detects (short read or digest
    mismatch) and discards, so a resumed campaign recomputes exactly the
    nodes whose results never became durable.  A resume additionally
    *truncates* the torn bytes before appending — frames written after
    garbage would be unreachable on every later resume, since frame
    iteration stops at the first bad frame.

    Entries are keyed by node name; a node journaled twice (a retried
    driver) keeps the *first* durable entry, preserving bit-identity with
    an uninterrupted run since per-node results are deterministic.
    """

    def __init__(self, directory: str | Path, key: str):
        self.directory = Path(directory)
        self.key = key
        self._fh = None
        self.n_torn = 0
        #: Byte offset just past the last fully-validated frame, set by
        #: :meth:`entries` — the truncation point for a torn tail.
        self.valid_bytes = 0

    @property
    def journal_path(self) -> Path:
        return self.directory / _JOURNAL_FILE

    @property
    def meta_path(self) -> Path:
        return self.directory / _JOURNAL_META

    # -- lifecycle ----------------------------------------------------------

    def open(self, *, resume: bool) -> dict[str, Any]:
        """Create or attach to the journal; return already-durable entries.

        ``resume=False`` starts a fresh journal (truncating any previous
        one).  ``resume=True`` requires the existing checkpoint to carry
        the same config digest — resuming someone else's checkpoint would
        silently mix simulations — and returns its completed entries.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        existing: dict[str, Any] = {}
        if resume and self.meta_path.exists():
            try:
                meta = json.loads(self.meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint meta {self.meta_path}: {exc}"
                ) from exc
            if meta.get("schema") != JOURNAL_SCHEMA:
                raise CheckpointError(
                    f"checkpoint {self.directory} has schema "
                    f"{meta.get('schema')!r}, this writer uses {JOURNAL_SCHEMA}"
                )
            if meta.get("key") != self.key:
                raise CheckpointError(
                    f"checkpoint {self.directory} belongs to a different "
                    f"campaign configuration (digest {meta.get('key')!r}, "
                    f"this run is {self.key!r})"
                )
            existing = self.entries()
            if self.n_torn:
                # Amputate the torn tail before reopening for append:
                # frames written after garbage bytes would be unreachable
                # on every later resume (_iter_frames stops at the first
                # bad frame), so a second crash would lose all progress
                # journaled by this resumed run.
                with open(self.journal_path, "r+b") as fh:
                    fh.truncate(self.valid_bytes)
                    fh.flush()
                    os.fsync(fh.fileno())
        else:
            self._write_meta()
            try:
                self.journal_path.unlink()
            except FileNotFoundError:
                pass
        self._fh = open(self.journal_path, "ab")
        return existing

    def _write_meta(self) -> None:
        payload = json.dumps(
            {"schema": JOURNAL_SCHEMA, "key": self.key, "writer": __version__},
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.meta_path)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- appends ------------------------------------------------------------

    def append(self, node: str, value: Any) -> None:
        """Durably journal one completed node (fsync before returning)."""
        if self._fh is None:
            raise CheckpointError("journal is not open for appends")
        payload = pickle.dumps((node, value), protocol=pickle.HIGHEST_PROTOCOL)
        frame = (
            JOURNAL_MAGIC
            + len(payload).to_bytes(8, "little")
            + hashlib.sha256(payload).digest()
            + payload
        )
        self._fh.write(frame)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- reads --------------------------------------------------------------

    def _iter_frames(self) -> Iterator[tuple[str, Any]]:
        try:
            blob = self.journal_path.read_bytes()
        except OSError:
            return
        offset = 0
        while offset < len(blob):
            header = blob[offset : offset + _HEADER_LEN]
            if len(header) < _HEADER_LEN or not header.startswith(JOURNAL_MAGIC):
                self.n_torn += 1
                return  # torn or foreign tail: everything after is void
            length = int.from_bytes(header[4:12], "little")
            digest = header[12:44]
            payload = blob[offset + _HEADER_LEN : offset + _HEADER_LEN + length]
            if len(payload) < length or hashlib.sha256(payload).digest() != digest:
                self.n_torn += 1
                return
            try:
                node, value = pickle.loads(payload)
            except Exception:
                self.n_torn += 1
                return
            offset += _HEADER_LEN + length
            self.valid_bytes = offset
            yield node, value

    def entries(self) -> dict[str, Any]:
        """All durable entries, first write per node winning."""
        self.n_torn = 0
        self.valid_bytes = 0
        out: dict[str, Any] = {}
        for node, value in self._iter_frames():
            out.setdefault(node, value)
        return out


_DEFAULT_CACHE: CampaignCache | None = None


def default_cache() -> CampaignCache:
    """The process-wide cache instance (honours the env switches)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = CampaignCache()
    return _DEFAULT_CACHE
