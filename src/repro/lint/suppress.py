"""Inline suppressions: ``# repro: noqa[RULE-ID]: reason``.

A suppression acknowledges one (or several, comma-separated) rule
violations and *must* carry a reason — an unexplained suppression is
itself a finding (LNT001), because "someone silenced this once" is
exactly the kind of unprotected convention this linter exists to end.

Placement: a suppression applies to findings on its own physical line,
or — when the comment stands alone on a line — to the line directly
below it.  Multi-line statements are covered by putting the comment on
the statement's first line (where the AST anchors the finding).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding

#: The suppression grammar.  The reason group is everything after the
#: closing ``]:`` — empty or missing means the suppression is invalid.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<ids>[A-Za-z0-9_,\s]*)\]\s*(?::\s*(?P<reason>.*\S))?\s*$"
)

#: Loose detector for things that *look like* suppression attempts but
#: fail the grammar (a ``repro: noqa`` comment without a rule list).
_NOQA_ATTEMPT_RE = re.compile(r"#\s*repro:\s*noqa")

#: Rule id reserved for invalid suppressions; never itself suppressable.
INVALID_SUPPRESSION = "LNT001"


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment."""

    line: int           # physical line of the comment
    applies_to: int     # line whose findings it silences
    ids: tuple[str, ...]
    reason: str


@dataclass
class SuppressionTable:
    """Every suppression in one file, plus malformed attempts."""

    by_line: dict[int, list[Suppression]] = field(default_factory=dict)
    invalid: list[Finding] = field(default_factory=list)

    def match(self, finding: Finding) -> Suppression | None:
        for supp in self.by_line.get(finding.line, ()):
            if finding.rule in supp.ids:
                return supp
        return None


def parse_suppressions(
    source: str, path: str, known_rules: frozenset[str]
) -> SuppressionTable:
    """Scan one file's comments for suppressions.

    Uses :mod:`tokenize` rather than line regexes so a ``# repro: noqa``
    inside a string literal is not mistaken for a suppression.
    """
    table = SuppressionTable()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        return table  # the engine reports the parse failure separately

    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        if not _NOQA_ATTEMPT_RE.search(tok.string):
            continue
        line = tok.start[0]
        standalone = not tok.line[: tok.start[1]].strip()
        applies_to = line + 1 if standalone else line
        match = _NOQA_RE.search(tok.string)
        if match is None:
            table.invalid.append(
                _invalid(path, line, "malformed suppression; expected "
                                     "'# repro: noqa[RULE-ID]: reason'")
            )
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not ids:
            table.invalid.append(
                _invalid(path, line, "suppression lists no rule ids")
            )
            continue
        unknown = [rule_id for rule_id in ids if rule_id not in known_rules]
        if unknown:
            table.invalid.append(
                _invalid(
                    path, line,
                    f"suppression names unknown rule id(s): {', '.join(unknown)}",
                )
            )
            continue
        if not reason:
            table.invalid.append(
                _invalid(
                    path, line,
                    f"suppression of {', '.join(ids)} has no reason; "
                    f"write '# repro: noqa[{','.join(ids)}]: why'",
                )
            )
            continue
        table.by_line.setdefault(applies_to, []).append(
            Suppression(line=line, applies_to=applies_to, ids=ids, reason=reason)
        )
    return table


def _invalid(path: str, line: int, message: str) -> Finding:
    return Finding(
        rule=INVALID_SUPPRESSION, path=path, line=line, col=1, message=message
    )
