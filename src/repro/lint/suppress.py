"""Inline suppressions: ``# repro: noqa[RULE-ID]: reason``.

A suppression acknowledges one (or several, comma-separated) rule
violations and *must* carry a reason — an unexplained suppression is
itself a finding (LNT001), because "someone silenced this once" is
exactly the kind of unprotected convention this linter exists to end.

Placement: a suppression applies to findings on its own physical line,
or — when the comment stands alone on a line — to the line directly
below it.  Both cases are *statement-aware*: a trailing comment on any
physical line of a multi-line statement (implicit continuation inside
brackets) also covers the statement's anchor line, where the AST pins
findings; a standalone comment above a decorated ``def`` covers the
``def`` line itself, not the decorator it happens to precede.

Interprocedural findings (DET1xx/RES1xx) anchor at their *primary*
site — the frontier call the message points at — so that is where the
suppression goes; a noqa inside a callee never silences a caller's
finding.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding

#: The suppression grammar.  The reason group is everything after the
#: closing ``]:`` — empty or missing means the suppression is invalid.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<ids>[A-Za-z0-9_,\s]*)\]\s*(?::\s*(?P<reason>.*\S))?\s*$"
)

#: Loose detector for things that *look like* suppression attempts but
#: fail the grammar (a ``repro: noqa`` comment without a rule list).
_NOQA_ATTEMPT_RE = re.compile(r"#\s*repro:\s*noqa")

#: Rule id reserved for invalid suppressions; never itself suppressable.
INVALID_SUPPRESSION = "LNT001"


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment."""

    line: int                    # physical line of the comment
    applies_to: tuple[int, ...]  # lines whose findings it silences
    ids: tuple[str, ...]
    reason: str


@dataclass
class SuppressionTable:
    """Every suppression in one file, plus malformed attempts."""

    by_line: dict[int, list[Suppression]] = field(default_factory=dict)
    invalid: list[Finding] = field(default_factory=list)

    def match(self, finding: Finding) -> Suppression | None:
        for supp in self.by_line.get(finding.line, ()):
            if finding.rule in supp.ids:
                return supp
        return None

    def add(self, supp: Suppression) -> None:
        for line in supp.applies_to:
            self.by_line.setdefault(line, []).append(supp)

    # -- cache serialization -------------------------------------------------

    def to_dict(self) -> dict:
        unique: dict[int, Suppression] = {}
        for supps in self.by_line.values():
            for supp in supps:
                unique[id(supp)] = supp
        return {
            "suppressions": [
                {
                    "line": s.line,
                    "applies_to": list(s.applies_to),
                    "ids": list(s.ids),
                    "reason": s.reason,
                }
                for s in sorted(unique.values(), key=lambda s: s.line)
            ],
            "invalid": [f.to_dict() for f in self.invalid],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SuppressionTable":
        table = cls()
        for raw in data.get("suppressions", ()):
            table.add(Suppression(
                line=raw["line"],
                applies_to=tuple(raw["applies_to"]),
                ids=tuple(raw["ids"]),
                reason=raw["reason"],
            ))
        for raw in data.get("invalid", ()):
            table.invalid.append(Finding(
                rule=raw["rule"], path=raw["path"], line=raw["line"],
                col=raw["col"], message=raw["message"],
            ))
        return table


def _anchor_map(tree: ast.Module) -> dict[int, int]:
    """Physical line -> anchor line of the innermost statement covering
    it.  Decorator lines anchor to their ``def``/``class`` line (that is
    where def-anchored findings live)."""
    anchors: dict[int, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        for line in range(node.lineno, end + 1):
            # ast.walk is breadth-first, so inner statements visit
            # after the statements containing them and win the slot.
            anchors[line] = node.lineno
    for node in ast.walk(tree):
        decorators = getattr(node, "decorator_list", None)
        if not decorators:
            continue
        first = min(d.lineno for d in decorators)
        for line in range(first, node.lineno + 1):
            anchors[line] = node.lineno
    return anchors


def parse_suppressions(
    source: str,
    path: str,
    known_rules: frozenset[str],
    tree: ast.Module | None = None,
) -> SuppressionTable:
    """Scan one file's comments for suppressions.

    Uses :mod:`tokenize` rather than line regexes so a ``# repro: noqa``
    inside a string literal is not mistaken for a suppression.  ``tree``
    (parsed separately if omitted) drives the statement-anchor mapping.
    """
    table = SuppressionTable()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        return table  # the engine reports the parse failure separately

    if tree is None:
        from .index import _PARSE_LOCK  # ast.parse races on 3.11
        try:
            with _PARSE_LOCK:
                tree = ast.parse(source)
        except (SyntaxError, ValueError):
            tree = None
    anchors = _anchor_map(tree) if tree is not None else {}

    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        if not _NOQA_ATTEMPT_RE.search(tok.string):
            continue
        line = tok.start[0]
        standalone = not tok.line[: tok.start[1]].strip()
        target = line + 1 if standalone else line
        applies_to = {target}
        anchor = anchors.get(target)
        if anchor is not None:
            applies_to.add(anchor)
        match = _NOQA_RE.search(tok.string)
        if match is None:
            table.invalid.append(
                _invalid(path, line, "malformed suppression; expected "
                                     "'# repro: noqa[RULE-ID]: reason'")
            )
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not ids:
            table.invalid.append(
                _invalid(path, line, "suppression lists no rule ids")
            )
            continue
        unknown = [rule_id for rule_id in ids if rule_id not in known_rules]
        if unknown:
            table.invalid.append(
                _invalid(
                    path, line,
                    f"suppression names unknown rule id(s): {', '.join(unknown)}",
                )
            )
            continue
        if not reason:
            table.invalid.append(
                _invalid(
                    path, line,
                    f"suppression of {', '.join(ids)} has no reason; "
                    f"write '# repro: noqa[{','.join(ids)}]: why'",
                )
            )
            continue
        table.add(Suppression(
            line=line, applies_to=tuple(sorted(applies_to)), ids=ids,
            reason=reason,
        ))
    return table


def _invalid(path: str, line: int, message: str) -> Finding:
    return Finding(
        rule=INVALID_SUPPRESSION, path=path, line=line, col=1, message=message
    )
