"""Finding records shared by the engine, rules and reporters."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``line``/``col`` are 1-based (``col`` follows the convention of
    compiler diagnostics, not the 0-based AST offset).  ``suppressed``
    findings are carried through to the reporters — an audit trail of
    every acknowledged violation — but do not affect the exit code.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    reason: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


@dataclass
class LintError:
    """An internal failure (unreadable file, rule crash) — exit code 2."""

    path: str
    message: str

    def to_dict(self) -> dict:
        return {"path": self.path, "message": self.message}


def sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.col, finding.rule)


@dataclass
class Summary:
    """Aggregate counters for one lint run."""

    files_scanned: int = 0
    by_rule: dict = field(default_factory=dict)

    def count(self, finding: Finding) -> None:
        self.by_rule[finding.rule] = self.by_rule.get(finding.rule, 0) + 1
