"""The lint driver: incremental, parallel, two-phase.

Phase 1 — **per-module analysis** (expensive, cacheable, parallel):
parse, per-module rule findings, suppression table, call-graph facts,
and every :class:`~repro.lint.rules.SummaryRule` extraction.  The
result is one JSON-able *entry* per file, memoized by content sha256
in :class:`~repro.lint.cache.LintCache` and recomputed only for files
whose bytes changed **plus their reverse call-graph closure** (an edit
to a callee can change interprocedural findings anchored in its
callers, so dependents re-analyze even with identical bytes).

Phase 2 — **project resolve** (cheap, never cached): reassemble the
call graph from the per-module facts, run each summary rule's
``resolve`` over all modules' facts, then match suppressions and sort.

``LintResult.analysis`` carries the counters CI asserts on: how many
modules were re-analyzed vs served from cache, whether the run was
cold, and wall-clock duration.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from .cache import LintCache, content_sha
from .config import LintConfig
from .findings import Finding, LintError, Summary, sort_key
from .index import (
    GraphView,
    ModuleInfo,
    ProjectIndex,
    index_module,
    module_graph_facts,
    module_name_for,
)
from .rules import Rule, SummaryRule, select_rules
from .suppress import SuppressionTable, parse_suppressions


@dataclass
class LintResult:
    """Everything one run produced.

    ``findings`` are live (unsuppressed) violations; ``suppressed``
    carries acknowledged ones for the audit trail; ``errors`` are
    internal failures (exit code 2 territory); ``analysis`` holds the
    incremental-run counters and timings.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    summary: Summary = field(default_factory=Summary)
    analysis: dict = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Expand directories to every ``.py`` beneath them, sorted."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    # De-duplicate while keeping order (a file named twice lints once).
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _path_label(path: Path, roots: list[Path]) -> str:
    """Finding path: relative to the lint root when possible."""
    for root in roots:
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            continue
        if not root.is_dir():
            # The root IS the file (lint of a single path): keep the
            # name the caller used, not its parent directory.
            return str(root).replace("\\", "/")
        return str(Path(root) / rel).replace("\\", "/")
    return str(path).replace("\\", "/")


def _finding_from_dict(raw: dict) -> Finding:
    return Finding(
        rule=raw["rule"], path=raw["path"], line=raw["line"],
        col=raw["col"], message=raw["message"],
    )


def _fingerprint(config: LintConfig, rules: list[Rule]) -> str:
    return config.cache_key() + "|" + ",".join(
        sorted(rule.rule_id for rule in rules)
    )


def _analyze_module(
    info: ModuleInfo,
    source: str,
    sha: str,
    index: ProjectIndex,
    plain_rules: list[Rule],
    fact_extractors: dict[str, SummaryRule],
    known: frozenset[str],
    config: LintConfig,
) -> dict:
    """One file's complete cacheable entry.  May raise (caller wraps)."""
    findings: list[dict] = []
    for rule in plain_rules:
        findings.extend(
            f.to_dict() for f in rule.check_module(info, index, config)
        )
    facts = {
        key: extractor.extract(info, config)
        for key, extractor in fact_extractors.items()
    }
    table = parse_suppressions(source, info.path, known, tree=info.tree)
    return {
        "sha": sha,
        "module": info.module,
        "findings": findings,
        "facts": facts,
        "graph": module_graph_facts(info, config.worker_dispatchers),
        "suppressions": table.to_dict(),
    }


def run_lint(
    paths: list[str | Path],
    config: LintConfig | None = None,
    *,
    cache_path: str | Path | None = None,
    focus: list[str] | None = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) and return the result.

    Never raises for problems *in the linted code* — syntax errors and
    unreadable files become :class:`LintError` entries.  Exceptions
    escaping a rule are likewise captured (a linter bug must fail the
    run with exit code 2, not take down CI with a traceback).

    ``cache_path`` opts into the incremental cache (one JSON file); the
    default is a full cold analysis, so library callers stay pure.

    ``focus`` (``--changed`` mode) restricts *reported* findings to the
    given path labels plus their reverse call-graph dependents — the
    analysis itself still spans every file so interprocedural rules see
    the whole program.
    """
    config = config or LintConfig()
    result = LintResult()
    t_start = time.perf_counter()

    roots = [Path(p) for p in paths]

    try:
        rules = select_rules(config.rules)
    except KeyError as exc:
        result.errors.append(LintError(path="", message=str(exc)))
        return result
    known = frozenset(rule.rule_id for rule in rules) | frozenset(
        rule.rule_id for rule in select_rules(())
    )
    plain_rules = [r for r in rules if not isinstance(r, SummaryRule)]
    summary_rules = [r for r in rules if isinstance(r, SummaryRule)]
    fact_extractors: dict[str, SummaryRule] = {}
    for rule in summary_rules:
        fact_extractors.setdefault(rule.fact_key, rule)

    fingerprint = _fingerprint(config, rules)
    cache = LintCache.load(
        Path(cache_path) if cache_path is not None else None, fingerprint
    )
    cold = not cache.loaded_from_disk

    # ---- read + hash every file; decide what the edit set is --------------
    sources: dict[str, tuple[Path, str, str]] = {}  # label -> (path, src, sha)
    order: list[str] = []
    for path in collect_files(paths):
        label = _path_label(path, roots)
        try:
            data = path.read_bytes()
            source = data.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.errors.append(LintError(path=label, message=str(exc)))
            continue
        sources[label] = (path, source, content_sha(data))
        order.append(label)

    changed = [
        label for label in order
        if cache.fresh_entry(label, sources[label][2]) is None
    ]

    # ---- parse what needs parsing -----------------------------------------
    infos: dict[str, ModuleInfo] = {}
    parse_failed: set[str] = set()

    def _parse(label: str) -> None:
        path, source, _sha = sources[label]
        try:
            infos[label] = index_module(
                label, module_name_for(path), source
            )
        except SyntaxError as exc:
            parse_failed.add(label)
            result.errors.append(
                LintError(path=label, message=f"syntax error: {exc.msg} "
                                              f"(line {exc.lineno})")
            )

    jobs = config.jobs or 4
    with ThreadPoolExecutor(max_workers=max(1, jobs)) as pool:
        list(pool.map(_parse, changed))

    # ---- dirty closure over reverse call-graph edges ----------------------
    graph_facts: dict[str, dict] = {}
    module_of: dict[str, str] = {}
    for label in order:
        if label in parse_failed:
            continue
        if label in infos:
            facts = module_graph_facts(
                infos[label], config.worker_dispatchers
            )
        else:
            facts = cache.entries[label]["graph"]
        graph_facts[facts["module"]] = facts
        module_of[label] = facts["module"]

    pre_graph = GraphView(graph_facts)
    changed_modules = {
        module_of[label] for label in changed if label in module_of
    }
    dirty_modules = pre_graph.reverse_module_closure(changed_modules)
    dirty = [
        label for label in order
        if label in module_of and module_of[label] in dirty_modules
    ]

    # ---- per-module analysis (parallel, cached) ---------------------------
    index = ProjectIndex()  # rule API compatibility; rules are per-module
    entries: dict[str, dict] = {}

    def _analyze(label: str) -> None:
        path, source, sha = sources[label]
        if label not in infos:
            _parse(label)
        if label in parse_failed:
            return
        try:
            entry = _analyze_module(
                infos[label], source, sha, index, plain_rules,
                fact_extractors, known, config,
            )
        except Exception as exc:  # a rule crash is an internal error
            result.errors.append(
                LintError(path=label, message=f"analysis crashed: {exc!r}")
            )
            return
        entries[label] = entry

    with ThreadPoolExecutor(max_workers=max(1, jobs)) as pool:
        list(pool.map(_analyze, dirty))
    analyzed = len(entries)
    for label in order:
        if label not in entries and label in module_of and label not in dirty:
            entries[label] = cache.entries[label]

    result.summary.files_scanned = len(entries)

    # ---- project resolve over all modules' facts --------------------------
    graph = GraphView({
        entry["graph"]["module"]: entry["graph"]
        for entry in entries.values()
    })
    raw: list[Finding] = []
    for label in order:
        entry = entries.get(label)
        if entry is not None:
            raw.extend(_finding_from_dict(f) for f in entry["findings"])
    for rule in summary_rules:
        facts = {
            entry["module"]: entry["facts"].get(rule.fact_key, {})
            for entry in entries.values()
        }
        try:
            raw.extend(rule.resolve(facts, graph, config))
        except Exception as exc:
            result.errors.append(
                LintError(
                    path="", message=f"rule {rule.rule_id} crashed: {exc!r}"
                )
            )

    # ---- suppressions -----------------------------------------------------
    tables = {
        label: SuppressionTable.from_dict(entry["suppressions"])
        for label, entry in entries.items()
    }
    for table in tables.values():
        raw.extend(table.invalid)

    for finding in sorted(raw, key=sort_key):
        table = tables.get(finding.path)
        supp = table.match(finding) if table is not None else None
        if supp is not None:
            result.suppressed.append(
                Finding(
                    rule=finding.rule, path=finding.path, line=finding.line,
                    col=finding.col, message=finding.message,
                    suppressed=True, reason=supp.reason,
                )
            )
        else:
            result.findings.append(finding)
            result.summary.count(finding)

    # ---- --changed focus: report only the edit + its dependents -----------
    focus_labels: set[str] | None = None
    if focus is not None:
        focus_set = {str(f).replace("\\", "/") for f in focus}
        focus_modules = {
            module_of[label] for label in focus_set if label in module_of
        }
        closure = graph.reverse_module_closure(focus_modules)
        focus_labels = {
            label for label in order
            if module_of.get(label) in closure
        }
        result.findings = [
            f for f in result.findings if f.path in focus_labels
        ]
        result.suppressed = [
            f for f in result.suppressed if f.path in focus_labels
        ]
        result.summary = Summary(files_scanned=result.summary.files_scanned)
        for finding in result.findings:
            result.summary.count(finding)

    # ---- cache writeback + counters ---------------------------------------
    cache.prune(set(entries))
    for label, entry in entries.items():
        cache.put(label, entry)
    cache.save(fingerprint)

    result.analysis = {
        "cold": cold,
        "modules_total": len(entries),
        "modules_analyzed": analyzed,
        "modules_cached": len(entries) - analyzed,
        "changed": sorted(
            label for label in changed if label in module_of
        ),
        "dirty": sorted(dirty),
        "jobs": max(1, jobs),
        "duration_s": round(time.perf_counter() - t_start, 4),
    }
    if focus_labels is not None:
        result.analysis["focus"] = sorted(focus_labels)
    return result
