"""The lint driver: collect files, index, run rules, apply suppressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .config import LintConfig
from .findings import Finding, LintError, Summary, sort_key
from .index import ModuleInfo, ProjectIndex, build_index, index_module, module_name_for
from .rules import select_rules
from .suppress import SuppressionTable, parse_suppressions


@dataclass
class LintResult:
    """Everything one run produced.

    ``findings`` are live (unsuppressed) violations; ``suppressed``
    carries acknowledged ones for the audit trail; ``errors`` are
    internal failures (exit code 2 territory).
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    summary: Summary = field(default_factory=Summary)

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Expand directories to every ``.py`` beneath them, sorted."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    # De-duplicate while keeping order (a file named twice lints once).
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _path_label(path: Path, roots: list[Path]) -> str:
    """Finding path: relative to the lint root when possible."""
    for root in roots:
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            continue
        if not root.is_dir():
            # The root IS the file (lint of a single path): keep the
            # name the caller used, not its parent directory.
            return str(root).replace("\\", "/")
        return str(Path(root) / rel).replace("\\", "/")
    return str(path).replace("\\", "/")


def run_lint(
    paths: list[str | Path],
    config: LintConfig | None = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) and return the result.

    Never raises for problems *in the linted code* — syntax errors and
    unreadable files become :class:`LintError` entries.  Exceptions
    escaping a rule are likewise captured (a linter bug must fail the
    run with exit code 2, not take down CI with a traceback).
    """
    config = config or LintConfig()
    result = LintResult()

    roots = [Path(p) for p in paths]
    modules: list[ModuleInfo] = []
    tables: dict[str, SuppressionTable] = {}

    try:
        rules = select_rules(config.rules)
    except KeyError as exc:
        result.errors.append(LintError(path="", message=str(exc)))
        return result
    known = frozenset(rule.rule_id for rule in rules) | frozenset(
        rule.rule_id for rule in select_rules(())
    )

    for path in collect_files(paths):
        label = _path_label(path, roots)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.errors.append(LintError(path=label, message=str(exc)))
            continue
        try:
            info = index_module(label, module_name_for(path), source)
        except SyntaxError as exc:
            result.errors.append(
                LintError(path=label, message=f"syntax error: {exc.msg} "
                                              f"(line {exc.lineno})")
            )
            continue
        modules.append(info)
        tables[label] = parse_suppressions(source, label, known)

    result.summary.files_scanned = len(modules)
    index: ProjectIndex = build_index(modules, config.worker_dispatchers)

    raw: list[Finding] = []
    for rule in rules:
        try:
            raw.extend(rule.check_project(index, config))
        except Exception as exc:  # a rule crash is an internal error
            result.errors.append(
                LintError(
                    path="", message=f"rule {rule.rule_id} crashed: {exc!r}"
                )
            )

    # Invalid suppressions are findings in their own right.
    for table in tables.values():
        raw.extend(table.invalid)

    for finding in sorted(raw, key=sort_key):
        table = tables.get(finding.path)
        supp = table.match(finding) if table is not None else None
        if supp is not None:
            result.suppressed.append(
                Finding(
                    rule=finding.rule, path=finding.path, line=finding.line,
                    col=finding.col, message=finding.message,
                    suppressed=True, reason=supp.reason,
                )
            )
        else:
            result.findings.append(finding)
            result.summary.count(finding)
    return result
