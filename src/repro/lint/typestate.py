"""Typestate machinery for the durable-commit protocol (RES1xx).

The storage engine's commit discipline (``docs/STORAGE.md``) is a
five-step protocol: *write* the payload to a temp path, *flush*,
*fsync the handle*, ``os.replace`` to the final name, *fsync the
directory* that now holds the new entry.  This module models it as a
typestate automaton over **origin tokens** — abstract identities for
the paths and handles a function manipulates:

``p0, p1, ...``            the function's parameters
``lit:<text>``             a literal path
``sub(B,<n>)``             a child of directory ``B`` (``B / name``)
``sib(B)``                 a sibling of ``B`` (``B + ".tmp"`` and kin)
``dir(B)``                 the directory containing ``B``
``tmp@<line>``             a ``tempfile.mkstemp`` creation
``h(T)``                   an open handle (or fd) onto token ``T``
``?``                      untracked — rules must stay silent

Protocol progress is a **must-set of achievement entries**
(intersection at joins — an fsync on one branch proves nothing):

``s:<T>``                  token ``T`` was fsync'd on every path here
``c:<G>:<k>:<T>``          project function ``G`` was called with ``T``
                           as parameter ``k`` (``k`` may be ``kw=name``)
                           — whether that *counts* as an fsync of ``T``
                           is only decidable at resolve time from
                           ``G``'s own summary; the entry defers the
                           question across the call graph.

:class:`ProtocolInterpreter` runs the forward must-analysis over one
function's CFG and emits a serializable summary: publish sites
(``os.replace``/``os.rename``) with payload/directory tokens and the
achievement sets before and after them, exit achievements on *normal
return paths* (so "this helper fsyncs its argument" summaries survive
a ``try/finally``), and call records for resolving obligations in
callers.  Cross-module composition lives in
``rules/commit_protocol.py``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .cfg import CFG, Block, build_cfg
from .dataflow import solve_forward
from .index import ModuleInfo

#: Attribute methods that write bytes through a handle or path object.
_HANDLE_WRITES = frozenset({"write", "writelines"})
_PATH_WRITES = frozenset({"write_bytes", "write_text"})
#: ``module.fn(path_or_handle, ...)`` writers: name -> payload arg index.
_FUNC_WRITES = {
    "numpy.save": 0, "numpy.savez": 0, "numpy.savez_compressed": 0,
    "json.dump": 1, "pickle.dump": 1, "marshal.dump": 1,
}
_OPENERS = frozenset({"open", "io.open", "os.fdopen", "gzip.open",
                      "bz2.open", "lzma.open", "os.open"})

UNKNOWN = "?"


def dir_of(token: str) -> str:
    """The directory token containing ``token`` (symbolic)."""
    if token == UNKNOWN:
        return UNKNOWN
    if token.startswith("sub(") and token.endswith(")"):
        base, _name = split_sub(token)
        return base
    if token.startswith("sib(") and token.endswith(")"):
        return dir_of(token[4:-1])
    return f"dir({token})"


def split_sub(token: str) -> tuple[str, str]:
    """``sub(B,n)`` -> ``(B, n)``, honouring nested parens in ``B``."""
    inner = token[4:-1]
    depth = 0
    for i, ch in enumerate(inner):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            return inner[:i], inner[i + 1:]
    return inner, ""


def normalize(token: str) -> str:
    """Collapse ``dir(sub(B,n)) -> B`` and ``dir(sib(B)) -> dir(B)``."""
    if token.startswith("dir(") and token.endswith(")"):
        inner = normalize(token[4:-1])
        return dir_of(inner)
    return token


def handle_target(value: str) -> str:
    """The path token behind a handle value (identity otherwise)."""
    if value.startswith("h(") and value.endswith(")"):
        return value[2:-1]
    return value


def project_target(target: str | None, module: "ModuleInfo") -> str | None:
    """Qualified name of a project-internal call target, else None.

    Import-resolved targets already carry dots; a bare name is a
    project call only when it names a function defined in this module
    (``helper(...)`` next to ``def helper``), in which case it
    qualifies to the module's own namespace.  Builtins and unresolved
    names stay None so they never grow call records.
    """
    if target is None:
        return None
    if "." in target:
        return target
    qual = f"{module.module}.{target}"
    if qual in module.functions:
        return qual
    return None


@dataclass
class PublishSite:
    """One ``os.replace``/``os.rename`` call."""

    line: int
    col: int
    src: str
    dst: str
    dst_dir: str
    written: bool            # src carried locally-written bytes
    before: list = field(default_factory=list)   # must-entries at site
    after: list = field(default_factory=list)    # on all normal paths out

    def to_dict(self) -> dict:
        return {
            "line": self.line, "col": self.col, "src": self.src,
            "dst": self.dst, "dst_dir": self.dst_dir,
            "written": self.written, "before": sorted(self.before),
            "after": sorted(self.after),
        }


@dataclass
class CallRecord:
    """A call into the project, with per-argument protocol state."""

    target: str
    line: int
    col: int
    pos: list = field(default_factory=list)    # [{token, written}]
    kw: dict = field(default_factory=dict)     # name -> {token, written}
    before: list = field(default_factory=list)
    after: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "target": self.target, "line": self.line, "col": self.col,
            "pos": self.pos, "kw": self.kw,
            "before": sorted(self.before), "after": sorted(self.after),
        }


# ---------------------------------------------------------------------------
# The abstract interpreter
# ---------------------------------------------------------------------------

_State = tuple  # (env: dict[str, str], achieved: frozenset, written: frozenset)


class ProtocolInterpreter:
    """Forward must-analysis of one function's commit-protocol state."""

    def __init__(self, fn_node: ast.AST, module: ModuleInfo):
        self.fn = fn_node
        self.module = module
        self.cfg: CFG = build_cfg(fn_node)
        self.publishes: list[PublishSite] = []
        self.call_records: list[CallRecord] = []
        self.has_fsync = False
        self.exit_entries: frozenset = frozenset()
        #: Recording-pass event log (None while solving).  Events:
        #: ("ach", entry) | ("site", PublishSite) | ("call", CallRecord).
        self._log: list | None = None
        self._block_logs: dict[int, list] = {}

    # -- driving ------------------------------------------------------------

    def run(self) -> None:
        init = (self._initial_env(), frozenset(), frozenset())
        entry_facts = solve_forward(
            self.cfg, init, self._transfer_block, self._join
        )
        # Recording pass: re-run each block's transfer on its fixpoint
        # entry fact, logging achievement order and site positions.
        for block in self.cfg.blocks:
            fact = entry_facts.get(block.idx)
            if fact is None:
                continue
            self._log = []
            self._transfer_block(block, fact)
            self._block_logs[block.idx] = self._log
        self._log = None
        self.exit_entries = self._exit_entries(entry_facts)
        self._fill_after()

    def _initial_env(self) -> dict:
        env: dict[str, str] = {}
        args = self.fn.args
        ordered = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        for i, arg in enumerate(ordered):
            env[arg.arg] = f"p{i}"
        return env

    @staticmethod
    def _join(a: _State | None, b: _State) -> _State:
        if a is None:
            return b
        env_a, ach_a, wr_a = a
        env_b, ach_b, wr_b = b
        env = {
            name: val
            for name, val in env_a.items()
            if env_b.get(name) == val
        }
        return (env, ach_a & ach_b, wr_a | wr_b)

    def _exit_entries(self, entry_facts: dict) -> frozenset:
        """Must-achievements over normal (non-raising) return paths."""
        out: frozenset | None = None
        for pred in self.cfg.normal_preds(self.cfg.exit):
            fact = entry_facts.get(pred)
            if fact is None:
                continue
            achieved = self._transfer_block(self.cfg.blocks[pred], fact)[1]
            out = achieved if out is None else (out & achieved)
        return out if out is not None else frozenset()

    # -- transfer -----------------------------------------------------------

    def _transfer_block(self, block: Block, fact: _State) -> _State:
        env = dict(fact[0])
        achieved = set(fact[1])
        written = set(fact[2])
        for stmt in block.stmts:
            self._stmt(stmt, env, achieved, written)
        return (env, frozenset(achieved), frozenset(written))

    def _achieve(self, achieved: set, entry: str) -> None:
        if entry not in achieved:
            achieved.add(entry)
            if self._log is not None:
                self._log.append(("ach", entry))

    def _stmt(self, stmt, env, achieved, written) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env, achieved, written)
            for target in stmt.targets:
                self._bind(target, value, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self._eval(stmt.value, env, achieved, written)
            self._bind(stmt.target, value, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr, env, achieved, written)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, env)
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            if getattr(stmt, "value", None) is not None:
                self._eval(stmt.value, env, achieved, written)
        elif isinstance(stmt, ast.expr):
            # Branch conditions parked in the block by the CFG builder.
            self._eval(stmt, env, achieved, written)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env, achieved, written)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = UNKNOWN
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, env, achieved, written)

    def _bind(self, target, value: str, env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Tuple) and value.startswith("tmp@"):
            # fd, path = tempfile.mkstemp(...): both halves of the pair
            # denote the same file.
            names = [t.id for t in target.elts if isinstance(t, ast.Name)]
            if len(names) == 2:
                env[names[0]] = f"h({value})"
                env[names[1]] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    env[elt.id] = UNKNOWN

    # -- expression evaluation ----------------------------------------------

    def _eval(self, node, env, achieved, written) -> str:
        """Evaluate to an origin token, recording protocol events."""
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str) and node.value:
                return f"lit:{node.value}"
            return UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env, achieved, written)
            right_lit = (
                node.right.value
                if isinstance(node.right, ast.Constant)
                and isinstance(node.right.value, str)
                else None
            )
            if isinstance(node.op, ast.Div) and left != UNKNOWN:
                name = right_lit if right_lit is not None else \
                    f"@{node.lineno}:{node.col_offset}"
                return f"sub({left},{name})"
            if isinstance(node.op, ast.Add) and left != UNKNOWN:
                # path + ".tmp": same directory, different name.
                self._eval(node.right, env, achieved, written)
                return f"sib({left})"
            self._eval(node.right, env, achieved, written)
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, env, achieved, written)
            if node.attr == "parent" and base != UNKNOWN:
                return dir_of(base)
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env, achieved, written)
            a = self._eval(node.body, env, achieved, written)
            b = self._eval(node.orelse, env, achieved, written)
            return a if a == b else UNKNOWN
        if isinstance(node, ast.Call):
            return self._call(node, env, achieved, written)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env, achieved, written)
        return UNKNOWN

    def _call(self, node: ast.Call, env, achieved, written) -> str:
        from .rules.determinism import _call_target

        target = _call_target(node, self.module)
        arg_vals = [
            self._eval(arg, env, achieved, written) for arg in node.args
        ]
        kw_vals = {}
        for kw in node.keywords:
            val = self._eval(kw.value, env, achieved, written)
            if kw.arg is not None:
                kw_vals[kw.arg] = val

        # fsync: the one true durability event.
        if target == "os.fsync" and arg_vals:
            token = handle_target(arg_vals[0])
            self.has_fsync = True
            if token != UNKNOWN:
                self._achieve(achieved, f"s:{token}")
            return UNKNOWN
        # Path/handle producers.
        if target in _OPENERS:
            payload = arg_vals[0] if arg_vals else UNKNOWN
            return f"h({handle_target(payload)})"
        if target == "tempfile.mkstemp":
            return f"tmp@{node.lineno}"
        if target in ("pathlib.Path", "Path", "str", "os.fspath"):
            return arg_vals[0] if arg_vals else UNKNOWN
        if target == "os.path.join" and arg_vals:
            name = (
                node.args[1].value
                if len(node.args) > 1
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
                else f"@{node.lineno}:{node.col_offset}"
            )
            if arg_vals[0] != UNKNOWN:
                return f"sub({arg_vals[0]},{name})"
            return UNKNOWN
        if target == "os.path.dirname" and arg_vals:
            return dir_of(arg_vals[0])
        # Method calls on tracked values.
        if isinstance(node.func, ast.Attribute):
            recv = self._eval(node.func.value, env, achieved, written)
            attr = node.func.attr
            if attr == "fileno":
                return recv
            if attr in _HANDLE_WRITES and recv != UNKNOWN:
                written.add(handle_target(recv))
                return UNKNOWN
            if attr in _PATH_WRITES and recv != UNKNOWN:
                written.add(recv)
                return UNKNOWN
            if attr in ("with_suffix", "with_name", "with_stem") and \
                    recv != UNKNOWN:
                return f"sib({recv})"
            if attr in ("resolve", "absolute", "expanduser"):
                return recv
        # Module-level writers (np.save & friends).
        if target in _FUNC_WRITES:
            index = _FUNC_WRITES[target]
            if index < len(arg_vals) and arg_vals[index] != UNKNOWN:
                written.add(handle_target(arg_vals[index]))
            return UNKNOWN
        # The publish event itself.
        if target in ("os.replace", "os.rename") and len(arg_vals) >= 2:
            src = handle_target(arg_vals[0])
            dst = arg_vals[1]
            if self._log is not None:
                site = PublishSite(
                    line=node.lineno, col=node.col_offset + 1,
                    src=src, dst=dst, dst_dir=dir_of(dst),
                    written=src in written, before=sorted(achieved),
                )
                self.publishes.append(site)
                self._log.append(("site", site))
            return UNKNOWN
        # A call into the project: defer judgement to resolve time.
        target = project_target(target, self.module)
        if target is not None:
            entry_args = []
            for i, val in enumerate(arg_vals):
                token = handle_target(val)
                entry_args.append(
                    {"token": token, "written": token in written}
                )
                if token != UNKNOWN:
                    self._achieve(achieved, f"c:{target}:{i}:{token}")
            entry_kw = {}
            for name, val in kw_vals.items():
                token = handle_target(val)
                entry_kw[name] = {
                    "token": token, "written": token in written,
                }
                if token != UNKNOWN:
                    self._achieve(achieved, f"c:{target}:kw={name}:{token}")
            if self._log is not None and (
                any(a["token"] != UNKNOWN for a in entry_args)
                or any(a["token"] != UNKNOWN for a in entry_kw.values())
            ):
                rec = CallRecord(
                    target=target, line=node.lineno,
                    col=node.col_offset + 1, pos=entry_args,
                    kw=entry_kw, before=sorted(achieved),
                )
                self.call_records.append(rec)
                self._log.append(("call", rec))
        return UNKNOWN

    # -- "after" sets: must-achievements on all normal paths to exit --------

    def _fill_after(self) -> None:
        """Greatest fixpoint of ``M(b)`` = entries every normal path from
        the start of ``b`` to the exit accrues.  A site's ``after`` is
        what its own block logs past the site, plus the meet over its
        normal successors.  Blocks with no normal continuation (a bare
        ``raise``) contribute vacuous truth — the publish never takes
        effect on those paths."""
        universe: set = set()
        for log in self._block_logs.values():
            universe |= {e for kind, e in log if kind == "ach"}
        frozen_universe = frozenset(universe)

        m: dict[int, frozenset] = {
            b.idx: frozen_universe for b in self.cfg.blocks
        }
        m[self.cfg.exit] = frozenset()
        block_entries = {
            idx: frozenset(e for kind, e in log if kind == "ach")
            for idx, log in self._block_logs.items()
        }
        changed = True
        while changed:
            changed = False
            for block in self.cfg.blocks:
                if block.idx == self.cfg.exit:
                    continue
                meet = frozen_universe
                for s in self.cfg.normal_succs(block.idx):
                    meet = meet & m[s]
                new = block_entries.get(block.idx, frozenset()) | meet
                if new != m[block.idx]:
                    m[block.idx] = new
                    changed = True

        for idx, log in self._block_logs.items():
            meet = frozen_universe
            for s in self.cfg.normal_succs(idx):
                meet = meet & m[s]
            for i, (kind, payload) in enumerate(log):
                if kind == "ach":
                    continue
                rest = {e for k, e in log[i + 1:] if k == "ach"}
                payload.after = sorted(frozenset(rest) | meet)


def extract_protocol(fn_qualname: str, fn_node, module: ModuleInfo) -> dict:
    """Run the interpreter; return the serializable summary dict."""
    interp = ProtocolInterpreter(fn_node, module)
    interp.run()
    return {
        "qualname": fn_qualname,
        "publishes": [p.to_dict() for p in interp.publishes],
        "calls": [c.to_dict() for c in interp.call_records],
        "exit_entries": sorted(interp.exit_entries),
        "has_fsync": interp.has_fsync,
    }
