"""reprolint: repo-specific static analysis for the reproduction's invariants.

The reproduction's headline guarantees — bit-identical campaigns across
backends, crash-safe journals, NaN-correct pruning — rest on coding
conventions that no general-purpose linter knows about:

* RNG must flow from spawned per-node streams, never the global NumPy or
  stdlib generators (determinism);
* simulation code must never read the wall clock (determinism);
* locks and file handles must be lexically scoped (concurrency, resource
  discipline);
* durable writes must fsync before rename (resource discipline);
* hot NumPy kernels must not silently upcast to float64 or fall back to
  Python lists (NumPy hygiene).

This package parses every module under ``src/repro`` into an AST plus a
lightweight symbol/call-graph index (:mod:`repro.lint.index`), runs a
pluggable rule set (:mod:`repro.lint.rules`) and reports findings as
``file:line:col RULE-ID message`` text or JSON.  Pure stdlib — the
linter must run even where NumPy is broken.

Entry points: ``repro lint`` (CLI) or :func:`run_lint`.  Inline
suppressions use ``# repro: noqa[RULE-ID]: reason`` (the reason is
mandatory; see :mod:`repro.lint.suppress`).
"""

from __future__ import annotations

from .cache import default_cache_path
from .config import LintConfig
from .engine import LintResult, run_lint
from .findings import Finding
from .report import render_json, render_json_v1, render_sarif, render_text
from .rules import all_rules

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "all_rules",
    "default_cache_path",
    "render_json",
    "render_json_v1",
    "render_sarif",
    "render_text",
    "run_lint",
]
