"""Per-function control-flow graphs for the dataflow rule families.

A :class:`CFG` is a list of basic blocks over the *statements* of one
function body.  Expression-level ordering inside a statement is the
transfer function's business (it walks the statement AST in evaluation
order); the CFG's job is the branch structure: ``if``/``while``/``for``
arms, ``try`` bodies with edges into their handlers (any statement may
raise), ``break``/``continue``/``return``/``raise`` shortcuts, and a
single synthetic exit block that every path reaches.

The builder is deliberately coarse where precision buys nothing for the
rules built on it: every block created inside a ``try`` body gets an
edge to each handler (over-approximating raise points), and a ``with``
body is linear (the context manager's ``__exit__`` is not modelled).
Coarseness here is *conservative* for must-analyses — extra edges can
only remove facts at joins, never invent them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class Block:
    """One basic block: straight-line statements plus out-edges."""

    idx: int
    stmts: list[ast.AST] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


@dataclass
class CFG:
    """Blocks of one function; ``entry`` falls in, ``exit`` collects."""

    blocks: list[Block]
    entry: int
    exit: int
    #: Edges taken only when an exception propagates (raise sites, try
    #: body -> handler, finally -> function exit).  Must-analyses that
    #: reason about *successful* completion meet over normal edges only.
    exc_edges: set = field(default_factory=set)

    def successors(self, idx: int) -> list[int]:
        return self.blocks[idx].succs

    def normal_succs(self, idx: int) -> list[int]:
        return [
            s for s in self.blocks[idx].succs
            if (idx, s) not in self.exc_edges
        ]

    def normal_preds(self, idx: int) -> list[int]:
        return [
            p for p in self.blocks[idx].preds
            if (p, idx) not in self.exc_edges
        ]

    def rpo(self) -> list[int]:
        """Reverse postorder from the entry — a good worklist seed."""
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, int]] = [(self.entry, 0)]
        while stack:
            node, child = stack[-1]
            if child == 0:
                seen.add(node)
            succs = self.blocks[node].succs
            if child < len(succs):
                stack[-1] = (node, child + 1)
                nxt = succs[child]
                if nxt not in seen:
                    stack.append((nxt, 0))
            else:
                order.append(node)
                stack.pop()
        return list(reversed(order))


class _Builder:
    """Recursive-descent CFG construction over a statement list."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.exc_edges: set = set()
        self.exit = self._new()
        # (break_target, continue_target) per enclosing loop.
        self._loops: list[tuple[int, int]] = []
        # Handler-entry blocks of enclosing trys (raise edges), innermost
        # last; each entry also carries the finally entry (or None).
        self._trys: list[tuple[list[int], int | None]] = []

    def _new(self) -> int:
        self.blocks.append(Block(idx=len(self.blocks)))
        return self.blocks[-1].idx

    def _edge(self, src: int, dst: int, exc: bool = False) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)
        if exc:
            self.exc_edges.add((src, dst))

    def _raise_targets(self) -> list[int]:
        """Where control may go when a statement raises."""
        for handlers, final in reversed(self._trys):
            targets = list(handlers)
            if final is not None:
                targets.append(final)
            if targets:
                return targets
        return [self.exit]

    # -- statement dispatch -------------------------------------------------

    def build(self, body: list[ast.stmt], current: int) -> int:
        """Append ``body`` starting at block ``current``; return the
        block where control continues (dead blocks return fresh ones)."""
        for stmt in body:
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, cur: int) -> int:
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, cur)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # Linear: items evaluate, then the body runs.
            self.blocks[cur].stmts.append(stmt)
            return self.build(stmt.body, cur)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[cur].stmts.append(stmt)
            if isinstance(stmt, ast.Raise):
                for target in self._raise_targets():
                    self._edge(cur, target, exc=True)
            else:
                self._edge(cur, self.exit)
            return self._new()  # unreachable continuation
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._edge(cur, self._loops[-1][0])
            return self._new()
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._edge(cur, self._loops[-1][1])
            return self._new()
        # Nested defs/classes are separate analysis units; the statement
        # still lands in the block so transfer functions see the binding.
        self.blocks[cur].stmts.append(stmt)
        return cur

    def _if(self, stmt: ast.If, cur: int) -> int:
        self.blocks[cur].stmts.append(stmt.test)
        then_entry = self._new()
        self._edge(cur, then_entry)
        then_exit = self.build(stmt.body, then_entry)
        join = self._new()
        self._edge(then_exit, join)
        if stmt.orelse:
            else_entry = self._new()
            self._edge(cur, else_entry)
            self._edge(self.build(stmt.orelse, else_entry), join)
        else:
            self._edge(cur, join)
        return join

    def _loop(self, stmt, cur: int) -> int:
        head = self._new()
        self._edge(cur, head)
        if isinstance(stmt, ast.While):
            self.blocks[head].stmts.append(stmt.test)
        else:
            # ``for target in iter``: both evaluate at the head.
            self.blocks[head].stmts.append(stmt)
        after = self._new()
        body_entry = self._new()
        self._edge(head, body_entry)
        self._loops.append((after, head))
        body_exit = self.build(stmt.body, body_entry)
        self._loops.pop()
        self._edge(body_exit, head)
        if stmt.orelse:
            # Normal loop exit runs the else-arm before falling through.
            else_entry = self._new()
            self._edge(head, else_entry)
            self._edge(self.build(stmt.orelse, else_entry), after)
        else:
            self._edge(head, after)  # zero iterations / condition false
        return after

    def _try(self, stmt: ast.Try, cur: int) -> int:
        handler_entries = [self._new() for _ in stmt.handlers]
        final_entry = self._new() if stmt.finalbody else None
        join = self._new()

        self._trys.append((handler_entries, final_entry))
        body_entry = self._new()
        self._edge(cur, body_entry)
        first_new = body_entry
        body_exit = self.build(stmt.body, body_entry)
        self._trys.pop()

        # Any block born inside the try body may raise into the handlers
        # (and the finally): coarse, and conservative for must-facts.
        for block in self.blocks[first_new:]:
            if block.idx in handler_entries or block.idx == final_entry:
                continue
            for h in handler_entries:
                self._edge(block.idx, h, exc=True)
            if final_entry is not None and not handler_entries:
                self._edge(block.idx, final_entry, exc=True)

        else_exit = self.build(stmt.orelse, body_exit) if stmt.orelse \
            else body_exit

        tails = [else_exit]
        for entry, handler in zip(handler_entries, stmt.handlers):
            tails.append(self.build(handler.body, entry))

        if final_entry is not None:
            for tail in tails:
                self._edge(tail, final_entry)
            final_exit = self.build(stmt.finalbody, final_entry)
            self._edge(final_exit, join)
            # A raise that entered the finally leaves the function.
            self._edge(final_exit, self.exit, exc=True)
        else:
            for tail in tails:
                self._edge(tail, join)
        return join


def build_cfg(fn_node: ast.AST) -> CFG:
    """CFG of one ``FunctionDef``/``AsyncFunctionDef``/``Lambda`` body."""
    builder = _Builder()
    entry = builder._new()
    if isinstance(fn_node, ast.Lambda):
        builder.blocks[entry].stmts.append(ast.Expr(value=fn_node.body))
        end = entry
    else:
        end = builder.build(list(fn_node.body), entry)
    builder._edge(end, builder.exit)
    return CFG(blocks=builder.blocks, entry=entry, exit=builder.exit,
               exc_edges=builder.exc_edges)
