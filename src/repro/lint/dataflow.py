"""Worklist dataflow solving, tag lattices, and interprocedural glue.

Three layers, each one small:

* :func:`solve_forward` — the classic monotone-framework worklist over a
  :class:`~repro.lint.cfg.CFG`.  The analysis supplies ``transfer`` and
  ``join``; the solver owns termination (facts must only grow — every
  analysis here uses finite tag sets or bounded must-sets).

* **Tag lattices** — an abstract value is a ``frozenset[str]`` of tags:
  concrete sources (``"const"``, ``"derived"``, ``"foreign"``, a dtype
  name) mixed with symbolic references (``"param:2"``) that only the
  cross-function phase can resolve.  Joins are unions; ``"?"`` is top.

* :class:`ParamFlow` — the interprocedural fixpoint.  Per-function
  *facts* are extracted once per module (and cached by content hash);
  this class stitches them together each run: every call-site argument's
  tags flow into the callee's parameter, ``param:i`` references resolve
  against the caller's own solved parameters, and the iteration runs to
  a fixpoint over the (finite, monotone) tag universe.  Because it
  consumes only serialized facts — never ASTs — it is cheap enough to
  recompute on every warm run, which is what lets the expensive
  per-module extraction be the only thing the incremental cache has to
  manage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from .cfg import CFG

TagSet = frozenset

#: Symbolic tag prefix: value flows from the enclosing function's param.
PARAM = "param:"
#: Top: provenance unknowable; analyses must stay silent.
UNKNOWN = "?"


def param_tag(i: int) -> str:
    return f"{PARAM}{i}"


def is_param(tag: str) -> bool:
    return tag.startswith(PARAM)


def param_index(tag: str) -> int:
    return int(tag[len(PARAM):])


# ---------------------------------------------------------------------------
# Intraprocedural worklist
# ---------------------------------------------------------------------------


def solve_forward(
    cfg: CFG,
    init,
    transfer: Callable,
    join: Callable,
):
    """Forward dataflow: returns ``{block_idx: fact_at_entry}``.

    ``transfer(block, fact) -> fact`` must not mutate its input;
    ``join(a, b) -> fact`` merges two predecessors' out-facts (``a`` may
    be ``None`` for a not-yet-visited edge).  Standard worklist with an
    iteration ceiling as a belt-and-braces guard against a non-monotone
    transfer bug — hitting it raises rather than spinning CI forever.
    """
    entry_facts = {cfg.entry: init}
    out_facts: dict[int, object] = {}
    worklist = cfg.rpo()
    queued = set(worklist)
    ceiling = max(64, len(cfg.blocks) * len(cfg.blocks) * 4)
    steps = 0
    while worklist:
        steps += 1
        if steps > ceiling:
            raise RuntimeError(
                f"dataflow failed to converge after {steps} steps "
                f"({len(cfg.blocks)} blocks)"
            )
        idx = worklist.pop(0)
        queued.discard(idx)
        if idx not in entry_facts:
            continue
        block = cfg.blocks[idx]
        out = transfer(block, entry_facts[idx])
        if idx in out_facts and out == out_facts[idx]:
            continue
        out_facts[idx] = out
        for succ in block.succs:
            merged = join(entry_facts.get(succ), out)
            if succ not in entry_facts or merged != entry_facts[succ]:
                entry_facts[succ] = merged
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return entry_facts


def join_union(a: dict | None, b: dict) -> dict:
    """May-join for ``{var: TagSet}`` maps: union tags per variable."""
    if a is None:
        return dict(b)
    out = dict(a)
    for key, tags in b.items():
        have = out.get(key)
        out[key] = tags if have is None else (have | tags)
    return out


def join_intersect(a: frozenset | None, b: frozenset) -> frozenset:
    """Must-join for achievement sets: a fact holds only on all paths."""
    if a is None:
        return b
    return a & b


# ---------------------------------------------------------------------------
# Interprocedural parameter/return flow over serialized facts
# ---------------------------------------------------------------------------


@dataclass
class CallArgs:
    """One call site's argument tags, caller-relative."""

    target: str                       # callee qualname
    line: int
    col: int
    pos: list = field(default_factory=list)        # list[TagSet]
    kw: dict = field(default_factory=dict)         # name -> TagSet

    def to_dict(self) -> dict:
        return {
            "target": self.target, "line": self.line, "col": self.col,
            "pos": [sorted(t) for t in self.pos],
            "kw": {k: sorted(t) for k, t in self.kw.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallArgs":
        return cls(
            target=data["target"], line=data["line"], col=data["col"],
            pos=[frozenset(t) for t in data["pos"]],
            kw={k: frozenset(t) for k, t in data["kw"].items()},
        )


class ParamFlow:
    """Fixpoint solver for parameter tags across the call graph.

    Inputs are pure data: per-function parameter names, default-value
    tags, and per-call-site argument tags (which may themselves contain
    ``param:i`` references to the *caller's* parameters).  The solve is
    context-insensitive — a parameter's tags are the union over every
    call site — which under-approximates nothing the rules act on: a
    finding requires the resolved set to be unambiguously bad.
    """

    def __init__(
        self,
        params: dict[str, list],            # qualname -> param names
        defaults: dict[str, dict],          # qualname -> {param name: TagSet}
        calls: dict[str, list],             # caller qualname -> [CallArgs]
    ) -> None:
        self.params = params
        self.defaults = defaults
        self.calls = calls
        #: (qualname, index) -> solved TagSet
        self.solution: dict[tuple[str, int], frozenset] = {}
        #: (qualname, index) -> call sites that fed tags in
        self.feeders: dict[tuple[str, int], list[tuple[str, CallArgs]]] = {}

    def _arg_binding(
        self, callee: str, call: CallArgs
    ) -> Iterable[tuple[int, frozenset]]:
        names = self.params.get(callee, [])
        for i, tags in enumerate(call.pos):
            if i < len(names):
                yield i, tags
        for name, tags in call.kw.items():
            if name in names:
                yield names.index(name), tags
        # Parameters no call-site argument reaches fall back to their
        # declared default — the "laundered through a default" case.
        supplied = {i for i, _ in enumerate(call.pos) if i < len(names)}
        supplied |= {names.index(n) for n in call.kw if n in names}
        for name, tags in self.defaults.get(callee, {}).items():
            if name in names and names.index(name) not in supplied:
                yield names.index(name), tags

    def solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for caller, sites in self.calls.items():
                for call in sites:
                    if call.target not in self.params:
                        continue
                    for index, raw in self._arg_binding(call.target, call):
                        tags = self.resolve(raw, caller)
                        key = (call.target, index)
                        have = self.solution.get(key, frozenset())
                        merged = have | tags
                        if merged != have:
                            self.solution[key] = merged
                            changed = True
                        feeders = self.feeders.setdefault(key, [])
                        if all(c is not call for _, c in feeders):
                            feeders.append((caller, call))

    def resolve(self, tags: frozenset, owner: str) -> frozenset:
        """Replace ``param:i`` references with the owner's solved tags.

        A parameter nothing ever feeds (an external API surface) resolves
        to ``{"?"}`` — unknown, so the rules stay silent about it.
        """
        out: set = set()
        for tag in tags:
            if is_param(tag):
                solved = self.solution.get((owner, param_index(tag)))
                out |= solved if solved else {UNKNOWN}
            else:
                out.add(tag)
        return frozenset(out)

    def blame_sites(
        self, callee: str, index: int, bad: Callable[[frozenset], bool],
        _seen: frozenset = frozenset(),
    ) -> list[tuple[str, CallArgs]]:
        """Call sites that concretely introduce bad tags for a param.

        Walks feeder chains upward: a site whose argument tags are bad
        *without* symbolic references is a frontier (the finding anchors
        there); a site passing its own parameter recurses into its
        callers.  Cycles terminate via ``_seen``.
        """
        key = (callee, index)
        if key in _seen:
            return []
        seen = _seen | {key}
        frontier: list[tuple[str, CallArgs]] = []
        for caller, call in self.feeders.get(key, []):
            bound = dict(self._arg_binding(callee, call))
            raw = bound.get(index)
            if raw is None:
                continue
            concrete = frozenset(t for t in raw if not is_param(t))
            if concrete and bad(concrete):
                frontier.append((caller, call))
                continue
            for tag in raw:
                if is_param(tag) and bad(
                    self.resolve(frozenset([tag]), caller)
                ):
                    frontier.extend(
                        self.blame_sites(
                            caller, param_index(tag), bad, seen
                        )
                    )
        return frontier
