"""Concurrency rules: lock scoping and worker-visible shared state.

CON001 is the classic leak: ``lock.acquire()`` with no lexical guarantee
of release.  CON002 is repo-specific — a static race detector over the
call graph: any function reachable from a ``supervised_map`` /
``parallel_map`` worker argument must not write module-level mutable
state, because on the thread backend those writes interleave, and on the
process backend they silently *don't replicate* to the parent (the
subtler bug: code that "works" serially and loses data in parallel).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig
from ..findings import Finding
from ..index import ModuleInfo, ProjectIndex
from . import Rule, SummaryRule, register

_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
    "sort", "reverse",
})


def _receiver_of(call: ast.Call) -> str | None:
    """``X`` of an ``X.acquire()`` / ``X.release()`` style call."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    dotted: list[str] = []
    node = func.value
    while isinstance(node, ast.Attribute):
        dotted.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        dotted.append(node.id)
        return ".".join(reversed(dotted))
    return None


def _calls_on(nodes: list[ast.stmt], receiver: str, method: str) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
                and _receiver_of(node) == receiver
            ):
                return True
    return False


@register
class BareAcquire(Rule):
    """CON001: ``.acquire()`` with no lexically-paired release."""

    rule_id = "CON001"
    title = "bare lock acquire"
    category = "concurrency"

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        for parent_body in _bodies(module.tree):
            for pos, stmt in enumerate(parent_body):
                call = _bare_acquire_stmt(stmt)
                if call is None:
                    continue
                receiver = _receiver_of(call)
                if receiver is None:
                    continue
                if self._is_scoped(parent_body, pos, receiver, call, module):
                    continue
                yield self.finding(
                    module.path, call,
                    f"{receiver}.acquire() is not scoped: pair it with "
                    f"{receiver}.release() in a finally/except-reraise, "
                    f"follow it immediately with such a try, or use "
                    f"'with {receiver}:'",
                )

    def _is_scoped(
        self,
        body: list[ast.stmt],
        pos: int,
        receiver: str,
        call: ast.Call,
        module: ModuleInfo,
    ) -> bool:
        # Pattern A: acquire() immediately followed by a try whose
        # finally (or a re-raising except) releases the same receiver.
        if pos + 1 < len(body):
            nxt = body[pos + 1]
            if isinstance(nxt, ast.Try) and _try_releases(nxt, receiver):
                return True
        # Pattern B: acquire() itself inside a try that releases on the
        # failure path (finally, or except that releases).
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Try) and _contains(node.body, call):
                if _try_releases(node, receiver):
                    return True
        return False


def _bare_acquire_stmt(stmt: ast.stmt) -> ast.Call | None:
    if not isinstance(stmt, ast.Expr):
        return None
    node = stmt.value
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "acquire"
    ):
        return node
    return None


def _try_releases(node: ast.Try, receiver: str) -> bool:
    if _calls_on(node.finalbody, receiver, "release"):
        return True
    for handler in node.handlers:
        if _calls_on(handler.body, receiver, "release"):
            return True
    return False


def _contains(body: list[ast.stmt], target: ast.AST) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if node is target:
                return True
    return False


def _bodies(tree: ast.AST):
    """Every statement list in the tree (module, defs, loops, handlers)."""
    for node in ast.walk(tree):
        for attr in ("body", "orelse", "finalbody"):
            body = getattr(node, attr, None)
            if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                yield body
        for handler in getattr(node, "handlers", ()):
            yield handler.body


@register
class WorkerGlobalWrite(SummaryRule):
    """CON002: worker-reachable write to module-level mutable state.

    Split into cacheable per-module extraction (every function's writes
    to module-level mutable bindings, with *scope-correct* local-name
    masking — a comprehension target does not leak into function scope
    in Python 3, so ``[x for OUT in ...]`` no longer hides a later
    ``OUT.append``) and a resolve phase that walks worker reachability
    over the reassembled call graph.
    """

    rule_id = "CON002"
    title = "worker writes module state"
    category = "concurrency"
    fact_key = "worker_writes"

    def extract(self, module: ModuleInfo, config: LintConfig) -> dict:
        functions: dict[str, list] = {}
        for qual, fn in module.functions.items():
            writes = list(self._writes_of(fn.node, module))
            if writes:
                functions[qual] = writes
        # Worker lambdas are indexed under the same synthetic qualnames
        # module_graph_facts() assigns, so reachability finds them.
        lambda_count = 0
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if name not in config.worker_dispatchers or not node.args:
                continue
            fn_arg = node.args[0]
            if not isinstance(fn_arg, ast.Lambda):
                continue
            qual = f"{module.module}.<lambda:{fn_arg.lineno}:{lambda_count}>"
            lambda_count += 1
            writes = list(self._writes_of(fn_arg, module))
            if writes:
                functions[qual] = writes
        return {"functions": functions} if functions else {}

    def resolve(
        self, facts: dict[str, dict], graph, config: LintConfig
    ) -> Iterator[Finding]:
        by_fn: dict[str, list] = {}
        for module_facts in facts.values():
            by_fn.update(module_facts.get("functions", {}))
        reachable = graph.reachable_from(graph.worker_roots)
        for qual in sorted(reachable):
            if qual in graph.initializers:
                continue
            for write in by_fn.get(qual, ()):
                path = graph.path_of(qual) or ""
                where = f"(reachable from worker dispatch via {qual})"
                if write["kind"] == "global":
                    message = (
                        f"assignment to global {write['name']!r} from "
                        f"worker code {where}; workers must return "
                        f"results, not write shared state"
                    )
                elif write["kind"] == "subscript":
                    message = (
                        f"subscript write to module-level "
                        f"{write['name']!r} from worker code {where}"
                    )
                else:
                    message = (
                        f"{write['name']}.{write['attr']}(...) mutates "
                        f"module-level state from worker code {where}"
                    )
                yield self.finding_at(
                    path, write["line"], write["col"], message
                )

    # -- extraction helpers --------------------------------------------------

    def _writes_of(self, fn_node, module: ModuleInfo) -> Iterator[dict]:
        body = fn_node.body if not isinstance(fn_node, ast.Lambda) else [
            ast.Expr(value=fn_node.body)
        ]
        declared_global: set[str] = set()
        for node in _walk_same_scope(body):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        local_names = _scope_locals(fn_node, body)
        for node in _walk_same_scope(body):
            write = _write_in(node, module, declared_global, local_names)
            if write is not None:
                yield write


def _walk_same_scope(body: list):
    """All nodes in these statements, skipping nested def/class bodies
    (they are separate call-graph nodes) but descending into lambdas and
    comprehensions, which execute when the enclosing function runs."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            stack.append(child)


def _scope_locals(fn_node, body: list) -> set[str]:
    """Names bound in the *function's own scope* — parameters, plain
    assignment/loop targets, and walrus targets (PEP 572 binds them in
    the enclosing function even from inside a comprehension).
    Comprehension iteration targets bind only inside the comprehension
    and are deliberately excluded: counting them used to mask real
    module-state writes."""
    names: set[str] = set()
    args = fn_node.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)

    def walk(node, in_comp: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue  # separate scope; lambda params don't leak out
            if isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp,
                                  ast.GeneratorExp)):
                walk(child, True)
                continue
            if isinstance(child, ast.NamedExpr):
                if isinstance(child.target, ast.Name):
                    names.add(child.target.id)
                walk(child.value, in_comp)
                continue
            if (
                not in_comp
                and isinstance(child, ast.Name)
                and isinstance(child.ctx, ast.Store)
            ):
                names.add(child.id)
            walk(child, in_comp)

    for stmt in body:
        walk(stmt, False)
    return names


def _write_in(
    node: ast.AST,
    module: ModuleInfo,
    declared_global: set[str],
    local_names: set[str],
) -> dict | None:
    # global X; X = ... — rebinding module state from a worker.
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared_global:
                return {
                    "kind": "global", "name": target.id,
                    "line": node.lineno, "col": node.col_offset + 1,
                }
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                if module.module_state.get(name) == "mutable" and \
                        name not in local_names:
                    return {
                        "kind": "subscript", "name": name,
                        "line": node.lineno, "col": node.col_offset + 1,
                    }
    # X.append(...) etc. on a module-level mutable binding.
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATING_METHODS and isinstance(
            node.func.value, ast.Name
        ):
            name = node.func.value.id
            if module.module_state.get(name) == "mutable" and \
                    name not in local_names:
                return {
                    "kind": "method", "name": name,
                    "attr": node.func.attr,
                    "line": node.lineno, "col": node.col_offset + 1,
                }
    return None
