"""Concurrency rules: lock scoping and worker-visible shared state.

CON001 is the classic leak: ``lock.acquire()`` with no lexical guarantee
of release.  CON002 is repo-specific — a static race detector over the
call graph: any function reachable from a ``supervised_map`` /
``parallel_map`` worker argument must not write module-level mutable
state, because on the thread backend those writes interleave, and on the
process backend they silently *don't replicate* to the parent (the
subtler bug: code that "works" serially and loses data in parallel).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig
from ..findings import Finding
from ..index import FunctionInfo, ModuleInfo, ProjectIndex
from . import Rule, register

_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
    "sort", "reverse",
})


def _receiver_of(call: ast.Call) -> str | None:
    """``X`` of an ``X.acquire()`` / ``X.release()`` style call."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    dotted: list[str] = []
    node = func.value
    while isinstance(node, ast.Attribute):
        dotted.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        dotted.append(node.id)
        return ".".join(reversed(dotted))
    return None


def _calls_on(nodes: list[ast.stmt], receiver: str, method: str) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
                and _receiver_of(node) == receiver
            ):
                return True
    return False


@register
class BareAcquire(Rule):
    """CON001: ``.acquire()`` with no lexically-paired release."""

    rule_id = "CON001"
    title = "bare lock acquire"
    category = "concurrency"

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        for parent_body in _bodies(module.tree):
            for pos, stmt in enumerate(parent_body):
                call = _bare_acquire_stmt(stmt)
                if call is None:
                    continue
                receiver = _receiver_of(call)
                if receiver is None:
                    continue
                if self._is_scoped(parent_body, pos, receiver, call, module):
                    continue
                yield self.finding(
                    module.path, call,
                    f"{receiver}.acquire() is not scoped: pair it with "
                    f"{receiver}.release() in a finally/except-reraise, "
                    f"follow it immediately with such a try, or use "
                    f"'with {receiver}:'",
                )

    def _is_scoped(
        self,
        body: list[ast.stmt],
        pos: int,
        receiver: str,
        call: ast.Call,
        module: ModuleInfo,
    ) -> bool:
        # Pattern A: acquire() immediately followed by a try whose
        # finally (or a re-raising except) releases the same receiver.
        if pos + 1 < len(body):
            nxt = body[pos + 1]
            if isinstance(nxt, ast.Try) and _try_releases(nxt, receiver):
                return True
        # Pattern B: acquire() itself inside a try that releases on the
        # failure path (finally, or except that releases).
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Try) and _contains(node.body, call):
                if _try_releases(node, receiver):
                    return True
        return False


def _bare_acquire_stmt(stmt: ast.stmt) -> ast.Call | None:
    if not isinstance(stmt, ast.Expr):
        return None
    node = stmt.value
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "acquire"
    ):
        return node
    return None


def _try_releases(node: ast.Try, receiver: str) -> bool:
    if _calls_on(node.finalbody, receiver, "release"):
        return True
    for handler in node.handlers:
        if _calls_on(handler.body, receiver, "release"):
            return True
    return False


def _contains(body: list[ast.stmt], target: ast.AST) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if node is target:
                return True
    return False


def _bodies(tree: ast.AST):
    """Every statement list in the tree (module, defs, loops, handlers)."""
    for node in ast.walk(tree):
        for attr in ("body", "orelse", "finalbody"):
            body = getattr(node, attr, None)
            if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                yield body
        for handler in getattr(node, "handlers", ()):
            yield handler.body


@register
class WorkerGlobalWrite(Rule):
    """CON002: worker-reachable write to module-level mutable state."""

    rule_id = "CON002"
    title = "worker writes module state"
    category = "concurrency"

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        reachable = index.reachable_from_workers()
        for qualname in sorted(reachable):
            fn = index.functions[qualname]
            if fn.is_initializer:
                continue
            module = index.by_module.get(fn.module)
            if module is None:
                continue
            yield from self._check_function(fn, module)

    def _check_function(
        self, fn: FunctionInfo, module: ModuleInfo
    ) -> Iterator[Finding]:
        declared_global: set[str] = set()
        body = fn.node.body if not isinstance(fn.node, ast.Lambda) else [
            ast.Expr(value=fn.node.body)
        ]
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break  # nested defs are separate graph nodes
        for stmt in body:
            for node in ast.walk(stmt):
                finding = self._write_in(node, module, declared_global, fn)
                if finding is not None:
                    yield finding

    def _write_in(
        self,
        node: ast.AST,
        module: ModuleInfo,
        declared_global: set[str],
        fn: FunctionInfo,
    ) -> Finding | None:
        where = f"(reachable from worker dispatch via {fn.qualname})"
        # global X; X = ... — rebinding module state from a worker.
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    return self.finding(
                        module.path, node,
                        f"assignment to global {target.id!r} from worker "
                        f"code {where}; workers must return results, not "
                        f"write shared state",
                    )
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    name = target.value.id
                    if module.module_state.get(name) == "mutable" and \
                            name not in _locals_of(fn):
                        return self.finding(
                            module.path, node,
                            f"subscript write to module-level {name!r} from "
                            f"worker code {where}",
                        )
        # X.append(...) etc. on a module-level mutable binding.
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS and isinstance(
                node.func.value, ast.Name
            ):
                name = node.func.value.id
                if module.module_state.get(name) == "mutable" and \
                        name not in _locals_of(fn):
                    return self.finding(
                        module.path, node,
                        f"{name}.{node.func.attr}(...) mutates module-level "
                        f"state from worker code {where}",
                    )
        return None


def _locals_of(fn: FunctionInfo) -> set[str]:
    """Names bound locally (params + assignments) — not module state."""
    cached = getattr(fn, "_locals_cache", None)
    if cached is not None:
        return cached
    names: set[str] = set()
    node = fn.node
    args = node.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    if not isinstance(node, ast.Lambda):
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                names.add(sub.id)
            elif isinstance(sub, (ast.For, ast.comprehension)):
                pass
    object.__setattr__(fn, "_locals_cache", names)
    return names
