"""Resource-discipline rules: handle scoping and durable-write protocol.

RES001 keeps file handles lexically scoped: an ``open()`` (or
``gzip.open``/``np.load``/``os.fdopen``) whose handle neither enters a
``with`` nor becomes attribute-managed state is a leak waiting for the
first exception.  RES002 enforces the journal protocol every durable
writer in this repo follows: bytes are fsync'd *before* the
``os.replace``/``os.rename`` that publishes them — rename-without-fsync
is exactly the torn-write class the crash-safety tests exist to catch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig
from ..findings import Finding
from ..index import ModuleInfo, ProjectIndex
from . import Rule, register
from .determinism import _call_target

#: Callables returning a handle that must be scoped.
_OPENERS = frozenset({
    "open",             # builtin
    "gzip.open",
    "bz2.open",
    "lzma.open",
    "os.fdopen",
    "numpy.load",
    "io.open",
})


def _opener_name(node: ast.Call, module: ModuleInfo) -> str | None:
    target = _call_target(node, module)
    if target is None:
        return None
    if target in _OPENERS:
        return target
    # Same-module fallback resolution renders builtins as "<module>.open".
    leaf = target.rsplit(".", 1)[-1]
    if leaf == "open" and target == f"{module.module}.open":
        return "open"
    return None


@register
class OpenWithoutWith(Rule):
    """RES001: file handle not scoped by a context manager."""

    rule_id = "RES001"
    title = "unscoped file handle"
    category = "resources"

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        compliant = _compliant_open_calls(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or node in compliant:
                continue
            name = _opener_name(node, module)
            if name is None:
                continue
            yield self.finding(
                module.path, node,
                f"{name}(...) handle is not scoped: use 'with', bind it "
                f"to a name later used as a 'with' context, or store it "
                f"on an object that owns its lifecycle",
            )


def _compliant_open_calls(tree: ast.AST) -> set[ast.Call]:
    """Open-calls that are acceptably scoped.

    * the context expression of a ``with`` item (directly);
    * assigned to a name that is *some* ``with`` item's context later in
      the same scope (the two-branch ``opener = ...; with opener as fh``
      idiom), including through a conditional expression;
    * assigned to an attribute (``self._fh = open(...)``) — the object
      owns the lifecycle (its ``close()`` is that object's contract);
    * returned directly (``return open(...)``) — a factory transfers
      ownership to its caller.
    """
    compliant: set[ast.Call] = set()
    with_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for call in _calls_of(item.context_expr):
                    compliant.add(call)
                if isinstance(item.context_expr, ast.Name):
                    with_names.add(item.context_expr.id)
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) or (
                    isinstance(target, ast.Name) and target.id in with_names
                ):
                    compliant.update(_calls_of(node.value))
        elif isinstance(node, ast.Return) and node.value is not None:
            compliant.update(_calls_of(node.value))
    return compliant


def _calls_of(expr: ast.expr) -> list[ast.Call]:
    """The call(s) an expression may evaluate to (ternaries branch)."""
    if isinstance(expr, ast.Call):
        return [expr]
    if isinstance(expr, ast.IfExp):
        return _calls_of(expr.body) + _calls_of(expr.orelse)
    return []


@register
class RenameWithoutFsync(Rule):
    """RES002: publishes written bytes via rename without an fsync."""

    rule_id = "RES002"
    title = "rename without fsync"
    category = "resources"

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        for fn in module.functions.values():
            if isinstance(fn.node, ast.Lambda):
                continue
            renames: list[ast.Call] = []
            has_fsync = False
            has_write = False
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                target = _call_target(node, module)
                if target in ("os.replace", "os.rename"):
                    renames.append(node)
                elif target == "os.fsync":
                    has_fsync = True
                elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "write", "writelines", "write_bytes", "write_text",
                    "dump", "savez", "savez_compressed", "save",
                ):
                    has_write = True
            if renames and has_write and not has_fsync:
                for rename in renames:
                    yield self.finding(
                        module.path, rename,
                        "bytes written in this function are published by "
                        "rename without os.fsync; a crash can publish an "
                        "empty or torn file (write, flush, fsync, then "
                        "replace — see repro.cache.CampaignCache.store)",
                    )
