"""dtype flow (NPY1xx): implicit promotion breaks bit-parity.

The differential harness proves the vectorized kernels bit-identical to
their reference implementations — a contract that dies silently the
moment an intermediate upcasts (``int32 / int32 -> float64``,
``float32 * float64 -> float64``) or a store truncates
(``out32[i] = acc64``).  These rules propagate a small dtype lattice
through the hot-path modules (``kernels/``, ``logs/``, ``query/``,
``ml/`` — the same set NPY001 polices) and flag arithmetic whose
operands resolve to *different* concrete dtypes, true division of
integer arrays, and subscript stores that narrow.

Everything runs on the shared machinery: per-function CFG dataflow at
extraction (dtype tags per variable: concrete names, ``pyint``/
``pyfloat`` literals, ``param:i``, ``ret:<qual>``, ``?``), then a
cross-module resolve that feeds call-site argument tags into
:class:`~repro.lint.dataflow.ParamFlow` and expands return tags to a
fixpoint.  Promotion semantics are a deliberate, dependency-free
re-implementation of NumPy's NEP-50 rules for the dtypes this codebase
uses — the linter must run where NumPy itself is broken.

Unknowns stay silent: a finding requires both operands to resolve to a
single concrete dtype.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..cfg import Block, build_cfg
from ..config import LintConfig
from ..dataflow import (
    UNKNOWN,
    CallArgs,
    ParamFlow,
    is_param,
    join_union,
    param_tag,
    solve_forward,
)
from ..findings import Finding
from ..index import GraphView, ModuleInfo, param_names
from ..typestate import project_target
from . import SummaryRule, register
from .determinism import _call_target

#: kind ("b"ool / "i"nt / "u"int / "f"loat) and byte size per dtype.
_DTYPES: dict[str, tuple[str, int]] = {
    "bool": ("b", 1),
    "int8": ("i", 1), "int16": ("i", 2), "int32": ("i", 4),
    "int64": ("i", 8),
    "uint8": ("u", 1), "uint16": ("u", 2), "uint32": ("u", 4),
    "uint64": ("u", 8),
    "float32": ("f", 4), "float64": ("f", 8),
}

_PYINT = "pyint"
_PYFLOAT = "pyfloat"
_RET = "ret:"

#: numpy constructors defaulting to float64 when no dtype= is given.
_FLOAT64_CTORS = frozenset({"zeros", "ones", "empty", "full", "linspace",
                            "zeros_like", "ones_like", "empty_like",
                            "full_like"})
#: array-producing constructors whose dtype we only know from dtype=.
_ANY_CTORS = frozenset({"array", "asarray", "ascontiguousarray",
                        "frombuffer", "fromfile", "arange", "concatenate",
                        "stack", "where"})
#: methods through which the receiver's dtype flows unchanged.
_PASSTHROUGH_METHODS = frozenset({
    "copy", "reshape", "ravel", "flatten", "transpose", "clip", "round",
    "view", "squeeze", "take", "repeat", "cumsum", "sum", "min", "max",
})


def promote(a: str, b: str, truediv: bool = False) -> str | None:
    """NEP-50 style promotion for the dtypes above; None = not modelled.

    Python scalars (``pyint``/``pyfloat``) are weak: ``pyint`` never
    changes the array dtype, ``pyfloat`` forces a float result
    (``float64`` against integer arrays, same dtype against floats).
    """
    if a == _PYINT:
        a, b = b, a
    if b == _PYINT:
        if a in _DTYPES:
            if truediv and _DTYPES[a][0] in "biu":
                return "float64"
            return a
        return None
    if a == _PYFLOAT:
        a, b = b, a
    if b == _PYFLOAT:
        if a in _DTYPES:
            return a if _DTYPES[a][0] == "f" else "float64"
        return None
    if a not in _DTYPES or b not in _DTYPES:
        return None
    if truediv and _DTYPES[a][0] in "biu" and _DTYPES[b][0] in "biu":
        return "float64"
    if a == b:
        return a
    ka, sa = _DTYPES[a]
    kb, sb = _DTYPES[b]
    if ka == "b":
        return b
    if kb == "b":
        return a
    if ka == kb:
        return a if sa >= sb else b
    if {ka, kb} == {"i", "u"}:
        i_size = sa if ka == "i" else sb
        u_size = sa if ka == "u" else sb
        size = max(i_size, 2 * u_size)
        return "float64" if size > 8 else f"int{size * 8}"
    # int/uint against float: float32 absorbs only small ints.
    f_dtype = a if ka == "f" else b
    int_size = sb if ka == "f" else sa
    if f_dtype == "float32" and int_size <= 2:
        return "float32"
    return "float64"


def _narrows(value: str, target: str) -> bool:
    """Would storing ``value`` into a ``target``-typed array lose bits?"""
    if value == _PYFLOAT:
        return target in _DTYPES and _DTYPES[target][0] in "biu"
    if value not in _DTYPES or target not in _DTYPES:
        return False
    kv, sv = _DTYPES[value]
    kt, st = _DTYPES[target]
    if kv == "f" and kt in "biu":
        return True
    if kv == kt and sv > st:
        return True
    if {kv, kt} == {"i", "u"} and kv == "i":
        return True  # signed into unsigned
    return False


_OP_NAMES = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**", ast.MatMult: "@",
}


def _dtype_of_expr(node, module: ModuleInfo) -> str | None:
    """``np.float32`` / ``"float32"`` / ``numpy.dtype("float32")``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in _DTYPES else None
    if isinstance(node, ast.Attribute):
        target = _call_target(
            ast.Call(func=node, args=[], keywords=[]), module
        )
        if target is not None:
            leaf = target.rsplit(".", 1)[-1]
            if leaf in _DTYPES and target.startswith("numpy."):
                return leaf
    if isinstance(node, ast.Call):
        target = _call_target(node, module)
        if target == "numpy.dtype" and node.args:
            return _dtype_of_expr(node.args[0], module)
    return None


class _DtypeTagger:
    """Per-function dtype dataflow; records ops, stores, and call args."""

    def __init__(self, qual: str, fn_node, module: ModuleInfo):
        self.qual = qual
        self.fn = fn_node
        self.module = module
        self.ops: list[dict] = []
        self.stores: list[dict] = []
        self.calls: list[CallArgs] = []
        self.returns: set = set()
        self._recording = False

    def run(self) -> None:
        cfg = build_cfg(self.fn)
        init = {
            name: frozenset([param_tag(i)])
            for i, name in enumerate(param_names(self.fn))
        }
        entry_facts = solve_forward(cfg, init, self._transfer, join_union)
        self._recording = True
        for block in cfg.blocks:
            fact = entry_facts.get(block.idx)
            if fact is None:
                continue
            self._transfer(block, fact)
        self._recording = False

    def _transfer(self, block: Block, fact: dict) -> dict:
        env = dict(fact)
        for stmt in block.stmts:
            self._stmt(stmt, env)
        return env

    def _interesting(self, tags: frozenset) -> bool:
        return any(
            t in _DTYPES or is_param(t) or t.startswith(_RET)
            for t in tags
        )

    def _stmt(self, stmt, env: dict) -> None:
        if isinstance(stmt, ast.Assign):
            tags = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign_target(target, tags, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign_target(
                stmt.target, self._eval(stmt.value, env), env
            )
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                left = env.get(stmt.target.id, frozenset([UNKNOWN]))
                self._record_op(stmt, left, value, stmt.op)
                env[stmt.target.id] = self._result(left, value, stmt.op)
            elif isinstance(stmt.target, ast.Subscript):
                self._record_store(stmt, stmt.target, value, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self._eval(item.context_expr, env)
                if isinstance(item.optional_vars, ast.Name):
                    env[item.optional_vars.id] = tags
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = frozenset([UNKNOWN])
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                tags = self._eval(stmt.value, env)
                if self._recording:
                    self.returns |= tags
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.expr):
            self._eval(stmt, env)

    def _assign_target(self, target, tags: frozenset, env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = tags
        elif isinstance(target, ast.Subscript):
            self._record_store(target, target, tags, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    env[elt.id] = frozenset([UNKNOWN])

    def _record_store(self, node, target: ast.Subscript, value: frozenset,
                      env: dict) -> None:
        if not self._recording:
            return
        if not isinstance(target.value, ast.Name):
            return
        base = env.get(target.value.id, frozenset([UNKNOWN]))
        if self._interesting(base) and (
            self._interesting(value) or value <= {_PYFLOAT, _PYINT}
        ):
            self.stores.append({
                "line": node.lineno, "col": node.col_offset + 1,
                "fn": self.qual, "target": sorted(base),
                "value": sorted(value),
            })

    def _record_op(self, node, left: frozenset, right: frozenset,
                   op) -> None:
        if not self._recording:
            return
        if not (self._interesting(left) or self._interesting(right)):
            return
        self.ops.append({
            "line": node.lineno, "col": node.col_offset + 1,
            "fn": self.qual, "op": _OP_NAMES.get(type(op), "?"),
            "left": sorted(left), "right": sorted(right),
        })

    @staticmethod
    def _result(left: frozenset, right: frozenset, op) -> frozenset:
        if len(left) == 1 and len(right) == 1:
            p = promote(
                next(iter(left)), next(iter(right)),
                truediv=isinstance(op, ast.Div),
            )
            if p is not None:
                return frozenset([p])
        return frozenset([UNKNOWN])

    def _eval(self, node, env: dict) -> frozenset:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return frozenset([UNKNOWN])
            if isinstance(node.value, int):
                return frozenset([_PYINT])
            if isinstance(node.value, float):
                return frozenset([_PYFLOAT])
            return frozenset([UNKNOWN])
        if isinstance(node, ast.Name):
            return env.get(node.id, frozenset([UNKNOWN]))
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            if type(node.op) in _OP_NAMES:
                self._record_op(node, left, right, node.op)
                return self._result(left, right, node.op)
            return frozenset([UNKNOWN])
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env)
        if isinstance(node, ast.Subscript):
            # Loads keep the base dtype (scalar or slice of the array).
            base = self._eval(node.value, env)
            self._eval(node.slice, env)
            return base
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return self._eval(node.body, env) | self._eval(node.orelse, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env)
        return frozenset([UNKNOWN])

    def _call(self, node: ast.Call, env: dict) -> frozenset:
        target = _call_target(node, self.module)
        arg_tags = [self._eval(arg, env) for arg in node.args]
        kw_tags = {}
        for kw in node.keywords:
            tags = self._eval(kw.value, env)
            if kw.arg is not None:
                kw_tags[kw.arg] = tags

        dtype_kw = None
        for kw in node.keywords:
            if kw.arg == "dtype":
                dtype_kw = _dtype_of_expr(kw.value, self.module)

        if target is not None and target.startswith("numpy."):
            leaf = target.rsplit(".", 1)[-1]
            if leaf in _DTYPES:
                return frozenset([leaf])
            if dtype_kw is not None:
                return frozenset([dtype_kw])
            if leaf in _FLOAT64_CTORS:
                return frozenset(["float64"])
            if leaf in _ANY_CTORS:
                return frozenset([UNKNOWN])
            return frozenset([UNKNOWN])
        if isinstance(node.func, ast.Attribute):
            recv = self._eval(node.func.value, env)
            attr = node.func.attr
            if attr == "astype" and node.args:
                dtype = _dtype_of_expr(node.args[0], self.module)
                if dtype is not None:
                    return frozenset([dtype])
                return frozenset([UNKNOWN])
            if attr in _PASSTHROUGH_METHODS:
                return recv
            return frozenset([UNKNOWN])
        target = project_target(target, self.module)
        if target is not None:
            if self._recording and (arg_tags or kw_tags):
                self.calls.append(CallArgs(
                    target=target, line=node.lineno,
                    col=node.col_offset + 1, pos=arg_tags, kw=kw_tags,
                ))
            return frozenset([f"{_RET}{target}"])
        return frozenset([UNKNOWN])


def _extract_dtype_facts(module: ModuleInfo, config: LintConfig) -> dict:
    if not config.is_hot_path(module.path):
        return {}
    functions: dict[str, dict] = {}
    for qual, fn in module.functions.items():
        if isinstance(fn.node, ast.Lambda):
            continue
        tagger = _DtypeTagger(qual, fn.node, module)
        try:
            tagger.run()
        except (RecursionError, RuntimeError):
            continue
        entry: dict = {}
        if tagger.ops:
            entry["ops"] = tagger.ops
        if tagger.stores:
            entry["stores"] = tagger.stores
        if tagger.calls:
            entry["calls"] = [c.to_dict() for c in tagger.calls]
        if tagger.returns:
            entry["returns"] = sorted(tagger.returns)
        if entry:
            functions[qual] = entry
    return {"functions": functions} if functions else {}


class _Resolver:
    """Cross-module tag expansion: params via ParamFlow, returns via a
    memoized fixpoint (cycles collapse to unknown)."""

    def __init__(self, fns: dict[str, dict], graph: GraphView):
        params = {q: graph.params(q) for q in graph.functions}
        calls = {
            qual: [CallArgs.from_dict(c) for c in entry.get("calls", ())]
            for qual, entry in fns.items()
        }
        self.flow = ParamFlow(params, {}, calls)
        self.flow.solve()
        self.fns = fns
        self._returns: dict[str, frozenset] = {}

    def returns_of(self, qual: str, seen: frozenset = frozenset()) -> frozenset:
        if qual in self._returns:
            return self._returns[qual]
        if qual in seen:
            return frozenset([UNKNOWN])
        entry = self.fns.get(qual)
        if entry is None or "returns" not in entry:
            return frozenset([UNKNOWN])
        out = self.expand(
            frozenset(entry["returns"]), qual, seen | {qual}
        )
        self._returns[qual] = out
        return out

    def expand(self, tags: frozenset, owner: str,
               seen: frozenset = frozenset()) -> frozenset:
        out: set = set()
        for tag in tags:
            if is_param(tag):
                resolved = self.flow.resolve(frozenset([tag]), owner)
                for r in resolved:
                    if r.startswith(_RET):
                        out |= self.returns_of(r[len(_RET):], seen)
                    elif is_param(r):
                        out.add(UNKNOWN)
                    else:
                        out.add(r)
            elif tag.startswith(_RET):
                out |= self.returns_of(tag[len(_RET):], seen)
            else:
                out.add(tag)
        return frozenset(out)

    def concrete(self, tags: frozenset, owner: str) -> str | None:
        """The single concrete dtype/scalar these tags resolve to."""
        expanded = self.expand(tags, owner)
        if len(expanded) != 1:
            return None
        tag = next(iter(expanded))
        if tag in _DTYPES or tag in (_PYINT, _PYFLOAT):
            return tag
        return None


def _gather(facts: dict[str, dict]) -> dict[str, dict]:
    fns: dict[str, dict] = {}
    for module_facts in facts.values():
        fns.update(module_facts.get("functions", {}))
    return fns


@register
class ImplicitPromotion(SummaryRule):
    """NPY101: mixed-dtype arithmetic / int true-division in hot paths."""

    rule_id = "NPY101"
    title = "implicit dtype promotion"
    category = "numpy"
    fact_key = "dtype"

    def extract(self, module: ModuleInfo, config: LintConfig) -> dict:
        return _extract_dtype_facts(module, config)

    def resolve(
        self, facts: dict[str, dict], graph: GraphView, config: LintConfig
    ) -> Iterator[Finding]:
        fns = _gather(facts)
        resolver = _Resolver(fns, graph)
        emitted: set[tuple] = set()
        for qual, entry in fns.items():
            path = graph.path_of(qual) or ""
            for op in entry.get("ops", ()):
                left = resolver.concrete(frozenset(op["left"]), qual)
                right = resolver.concrete(frozenset(op["right"]), qual)
                if left is None or right is None:
                    continue
                if left == _PYINT or right == _PYINT:
                    if op["op"] != "/" or (left == _PYINT and
                                           right == _PYINT):
                        continue
                    # int_array / python_int still promotes to float64.
                    array_side = left if right == _PYINT else right
                    if array_side not in _DTYPES or \
                            _DTYPES[array_side][0] not in "biu":
                        continue
                result = promote(left, right, truediv=op["op"] == "/")
                if result is None:
                    continue
                # Only array-typed operands count: weak Python scalars
                # never make a result "promoted".
                sides = [d for d in (left, right) if d in _DTYPES]
                if not sides or all(result == d for d in sides):
                    continue
                key = (path, op["line"], op["col"])
                if key in emitted:
                    continue
                emitted.add(key)
                yield self.finding_at(
                    path, op["line"], op["col"],
                    f"`{left} {op['op']} {right}` promotes to {result} "
                    f"implicitly; hot-path arithmetic must pin dtypes "
                    f"(cast explicitly with astype) to keep the "
                    f"differential harness bit-identical",
                )


@register
class NarrowingStore(SummaryRule):
    """NPY102: subscript store narrows the value's dtype."""

    rule_id = "NPY102"
    title = "narrowing subscript store"
    category = "numpy"
    fact_key = "dtype"

    def extract(self, module: ModuleInfo, config: LintConfig) -> dict:
        return _extract_dtype_facts(module, config)

    def resolve(
        self, facts: dict[str, dict], graph: GraphView, config: LintConfig
    ) -> Iterator[Finding]:
        fns = _gather(facts)
        resolver = _Resolver(fns, graph)
        emitted: set[tuple] = set()
        for qual, entry in fns.items():
            path = graph.path_of(qual) or ""
            for store in entry.get("stores", ()):
                target = resolver.concrete(frozenset(store["target"]), qual)
                value = resolver.concrete(frozenset(store["value"]), qual)
                if target is None or value is None or target not in _DTYPES:
                    continue
                if not _narrows(value, target):
                    continue
                key = (path, store["line"], store["col"])
                if key in emitted:
                    continue
                emitted.add(key)
                yield self.finding_at(
                    path, store["line"], store["col"],
                    f"storing a {value} value into a {target} array "
                    f"truncates silently; cast explicitly (astype) or "
                    f"widen the destination",
                )
