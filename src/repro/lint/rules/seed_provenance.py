"""Seed provenance (DET1xx): interprocedural RNG taint tracking.

The campaign's bit-identity contract says every generator reachable
from campaign or worker code must be seeded from the per-node spawned
stream (``repro.core.rng.stream`` / ``RngFactory``) — a pure function
of ``(root_seed, key)``.  DET001 catches the syntactic offenders;
DET101 catches the laundered ones: a constant or entropy seed passed
through helpers, defaults, or kwargs before it reaches
``default_rng``/``Generator``.

Per-module extraction runs a forward tag dataflow over each function's
CFG.  Tags: ``const`` (literal), ``foreign`` (wall clock, urandom,
stdlib random, pid), ``derived`` (flowed out of a blessed rng module),
``param:i`` (the enclosing function's parameter — resolved later), and
``?`` (unknown: stay silent).  Construction sites and call-site
argument tags are serialized; the cross-module resolve feeds them into
:class:`~repro.lint.dataflow.ParamFlow` and flags reachable sites whose
resolved seed tags are unambiguously bad, anchoring the finding at the
*frontier* call that introduced the bad value (satellite: suppressions
then anchor where the culprit is, not at the innocent callee).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..cfg import Block, build_cfg
from ..config import LintConfig
from ..dataflow import (
    UNKNOWN,
    CallArgs,
    ParamFlow,
    is_param,
    join_union,
    param_index,
    param_tag,
    solve_forward,
)
from ..findings import Finding
from ..index import GraphView, ModuleInfo, ProjectIndex, param_names
from ..typestate import project_target
from . import Rule, SummaryRule, register
from .determinism import _call_target

#: Constructors that *are* provenance sites (an RNG object is born).
_SITE_CTORS = frozenset({"default_rng", "Generator"})
#: Constructors/wrappers that merely carry a seed through.
_CARRIER_CTORS = frozenset({
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "SeedSequence",
})
#: Calls whose result is nondeterministic process/system entropy.
_FOREIGN_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "os.urandom",
    "os.getpid", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.randbits",
})
#: Methods that yield a blessed stream wherever they are called.
_DERIVED_METHODS = frozenset({"spawn", "fresh"})
#: Pass-through builtins: tags flow through unchanged.
_TRANSPARENT_CALLS = frozenset({"int", "abs", "min", "max"})

_BAD = frozenset({"const", "foreign"})


def _is_bad(tags: frozenset) -> bool:
    return bool(tags) and tags <= _BAD


def _classify(tags: frozenset) -> str:
    kinds = tags & _BAD
    if kinds == {"const"}:
        return "constant"
    if kinds == {"foreign"}:
        return "foreign-entropy"
    return "constant/foreign"


class _SeedTagger:
    """Per-function forward tag analysis; records sites and call args."""

    def __init__(self, qual: str, fn_node, module: ModuleInfo,
                 config: LintConfig):
        self.qual = qual
        self.fn = fn_node
        self.module = module
        self.config = config
        self.sites: list[dict] = []
        self.calls: list[CallArgs] = []
        self._recording = False

    def run(self) -> None:
        cfg = build_cfg(self.fn)
        init = {
            name: frozenset([param_tag(i)])
            for i, name in enumerate(param_names(self.fn))
        }
        entry_facts = solve_forward(cfg, init, self._transfer, join_union)
        self._recording = True
        seen_sites: set[tuple[int, int]] = set()
        for block in cfg.blocks:
            fact = entry_facts.get(block.idx)
            if fact is None:
                continue
            self._transfer(block, fact)
        self._recording = False
        # The recording pass visits each block once, but loop heads can
        # appear in their own bodies' statements only once, so sites are
        # unique already; dedupe defensively anyway.
        unique = []
        for site in self.sites:
            key = (site["line"], site["col"])
            if key not in seen_sites:
                seen_sites.add(key)
                unique.append(site)
        self.sites = unique

    # -- dataflow -----------------------------------------------------------

    def _transfer(self, block: Block, fact: dict) -> dict:
        env = dict(fact)
        for stmt in block.stmts:
            self._stmt(stmt, env)
        return env

    def _stmt(self, stmt, env: dict) -> None:
        if isinstance(stmt, ast.Assign):
            tags = self._eval(stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = tags
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            env[elt.id] = frozenset([UNKNOWN])
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            tags = self._eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = tags
        elif isinstance(stmt, ast.AugAssign):
            tags = self._eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                have = env.get(stmt.target.id, frozenset([UNKNOWN]))
                env[stmt.target.id] = have | tags
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self._eval(item.context_expr, env)
                if isinstance(item.optional_vars, ast.Name):
                    env[item.optional_vars.id] = tags
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = frozenset([UNKNOWN])
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            if getattr(stmt, "value", None) is not None:
                self._eval(stmt.value, env)
        elif isinstance(stmt, ast.expr):
            self._eval(stmt, env)

    def _eval(self, node, env: dict) -> frozenset:
        if isinstance(node, ast.Constant):
            return frozenset(["const"])
        if isinstance(node, ast.Name):
            return env.get(node.id, frozenset([UNKNOWN]))
        if isinstance(node, ast.BinOp):
            return self._eval(node.left, env) | self._eval(node.right, env)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env)
        if isinstance(node, ast.BoolOp):
            out: frozenset = frozenset()
            for value in node.values:
                out |= self._eval(value, env)
            return out
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return self._eval(node.body, env) | self._eval(node.orelse, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env)
        return frozenset([UNKNOWN])

    def _call(self, node: ast.Call, env: dict) -> frozenset:
        target = _call_target(node, self.module)
        arg_tags = [self._eval(arg, env) for arg in node.args]
        kw_tags = {}
        for kw in node.keywords:
            tags = self._eval(kw.value, env)
            if kw.arg is not None:
                kw_tags[kw.arg] = tags
        seed_tags: frozenset = frozenset()
        for tags in arg_tags:
            seed_tags |= tags
        for tags in kw_tags.values():
            seed_tags |= tags

        if target is not None:
            if self.config.is_blessed_rng_module(target.rsplit(".", 1)[0]) \
                    or any(
                        target == m or target.startswith(m + ".")
                        for m in self.config.blessed_rng_modules
                    ):
                return frozenset(["derived"])
            if target in _FOREIGN_CALLS or (
                target.startswith("random.") and target.count(".") == 1
            ):
                return frozenset(["foreign"])
            leaf = target.rsplit(".", 1)[-1]
            if target.startswith("numpy.random.") and (
                leaf in _SITE_CTORS or leaf in _CARRIER_CTORS
            ):
                result = seed_tags if (node.args or node.keywords) else \
                    frozenset(["foreign"])
                if leaf in _SITE_CTORS and self._recording:
                    self.sites.append({
                        "line": node.lineno, "col": node.col_offset + 1,
                        "ctor": leaf, "fn": self.qual,
                        "tags": sorted(result),
                    })
                return result
            if leaf in _TRANSPARENT_CALLS and target == leaf:
                return seed_tags
            # Project-internal call: record args for ParamFlow.  Even a
            # zero-argument call matters — it is exactly how a constant
            # *default* seed gets laundered into the callee.
            ptarget = project_target(target, self.module)
            if ptarget is not None and self._recording:
                self.calls.append(CallArgs(
                    target=ptarget, line=node.lineno,
                    col=node.col_offset + 1, pos=arg_tags, kw=kw_tags,
                ))
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _DERIVED_METHODS:
            return frozenset(["derived"])
        return frozenset([UNKNOWN])


def _default_tags(fn_node) -> dict:
    """Parameter-default tags: ``def f(seed=1234)`` taints param seed."""
    args = fn_node.args
    out: dict = {}
    pos = list(args.posonlyargs) + list(args.args)
    for name, default in zip(
        [a.arg for a in pos[len(pos) - len(args.defaults):]], args.defaults
    ):
        if isinstance(default, ast.Constant) and isinstance(
            default.value, (int, float)
        ) and not isinstance(default.value, bool):
            out[name] = ["const"]
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None and isinstance(default, ast.Constant) and \
                isinstance(default.value, (int, float)) and \
                not isinstance(default.value, bool):
            out[arg.arg] = ["const"]
    return out


@register
class LaunderedSeed(SummaryRule):
    """DET101: campaign-reachable RNG seeded from constant/entropy."""

    rule_id = "DET101"
    title = "laundered RNG seed"
    category = "determinism"
    fact_key = "seed"

    def extract(self, module: ModuleInfo, config: LintConfig) -> dict:
        functions: dict[str, dict] = {}
        blessed = config.is_blessed_rng_module(module.module)
        for qual, fn in module.functions.items():
            tagger = _SeedTagger(qual, fn.node, module, config)
            try:
                tagger.run()
            except RecursionError:
                continue
            entry: dict = {}
            if tagger.calls:
                entry["calls"] = [c.to_dict() for c in tagger.calls]
            if tagger.sites and not blessed:
                entry["sites"] = tagger.sites
            defaults = _default_tags(fn.node)
            if defaults:
                entry["defaults"] = defaults
            if entry:
                functions[qual] = entry
        return {"functions": functions}

    def resolve(
        self, facts: dict[str, dict], graph: GraphView, config: LintConfig
    ) -> Iterator[Finding]:
        params = {q: graph.params(q) for q in graph.functions}
        defaults: dict[str, dict] = {}
        calls: dict[str, list] = {}
        sites: list[dict] = []
        for module_facts in facts.values():
            for qual, entry in module_facts.get("functions", {}).items():
                if "defaults" in entry:
                    defaults[qual] = {
                        name: frozenset(tags)
                        for name, tags in entry["defaults"].items()
                    }
                if "calls" in entry:
                    calls[qual] = [
                        CallArgs.from_dict(c) for c in entry["calls"]
                    ]
                sites.extend(entry.get("sites", ()))

        flow = ParamFlow(params, defaults, calls)
        flow.solve()
        roots = list(graph.worker_roots) + [
            e for e in config.entry_points if e in graph.functions
        ]
        reachable = graph.reachable_from(roots)

        emitted: set[tuple] = set()
        for site in sites:
            owner = site["fn"]
            if owner not in reachable:
                continue
            raw = frozenset(site["tags"])
            resolved = flow.resolve(raw, owner)
            if not _is_bad(resolved):
                continue
            path = graph.path_of(owner) or ""
            concrete = frozenset(t for t in raw if not is_param(t))
            if concrete and not any(is_param(t) for t in raw):
                key = (path, site["line"], site["col"])
                if key not in emitted:
                    emitted.add(key)
                    yield self.finding_at(
                        path, site["line"], site["col"],
                        f"{site['ctor']}(...) is seeded from a "
                        f"{_classify(resolved)} value in campaign-reachable "
                        f"code; derive the seed from the per-node spawned "
                        f"stream (repro.core.rng)",
                    )
                continue
            # Seed arrives through a parameter: blame the frontier call
            # sites that concretely introduce the bad value.
            frontier: list = []
            for tag in raw:
                if is_param(tag):
                    frontier.extend(flow.blame_sites(
                        owner, param_index(tag), _is_bad
                    ))
            if not frontier:
                key = (path, site["line"], site["col"])
                if key not in emitted:
                    emitted.add(key)
                    yield self.finding_at(
                        path, site["line"], site["col"],
                        f"{site['ctor']}(...) resolves to a "
                        f"{_classify(resolved)} seed in campaign-reachable "
                        f"code; derive it from the per-node spawned stream",
                    )
                continue
            short = owner.rsplit(".", 1)[-1]
            for caller, call in frontier:
                caller_path = graph.path_of(caller) or ""
                key = (caller_path, call.line, call.col)
                if key in emitted:
                    continue
                emitted.add(key)
                yield self.finding_at(
                    caller_path, call.line, call.col,
                    f"this call forwards a {_classify(resolved)} seed into "
                    f"{site['ctor']} via {short} ({path}:{site['line']}); "
                    f"pass a stream spawned from the campaign seed instead",
                )


@register
class RngInDefaultArg(Rule):
    """DET102: RNG constructed in a parameter default (one per import)."""

    rule_id = "DET102"
    title = "RNG in parameter default"
    category = "determinism"

    _CTORS = frozenset({"default_rng", "Generator", "Random"})

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                for call in ast.walk(default):
                    if not isinstance(call, ast.Call):
                        continue
                    target = _call_target(call, module)
                    if target is None:
                        continue
                    leaf = target.rsplit(".", 1)[-1]
                    if leaf in self._CTORS and (
                        target.startswith(("numpy.random.", "random."))
                        or target.endswith((".default_rng", ".Generator"))
                    ):
                        yield self.finding(
                            module.path, call,
                            f"{leaf}(...) in a parameter default is "
                            f"evaluated once at import and shared by every "
                            f"call; take an explicit stream argument",
                        )
