"""Rule registry.

A rule is a class with ``rule_id``, ``title``, ``category`` and a
``check_module(module, index, config)`` generator (or, for whole-program
rules, ``check_project(index, config)``).  Registration is a decorator so
adding a rule is: write the class, decorate it, document it in
``docs/LINTING.md`` — the engine, CLI ``--list-rules`` and the
suppression validator all pick it up from here.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..config import LintConfig
from ..findings import Finding
from ..index import ModuleInfo, ProjectIndex

_REGISTRY: dict[str, "Rule"] = {}


class Rule:
    """Base class: per-module by default, project-wide if overridden."""

    rule_id: str = ""
    title: str = ""
    category: str = ""

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        for module in index.modules.values():
            yield from self.check_module(module, index, config)

    def finding(self, module_path: str, node, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    def finding_at(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id, path=path, line=line, col=col,
            message=message,
        )


class SummaryRule(Rule):
    """A project rule split into cacheable extraction + cheap resolve.

    ``extract(module, config)`` runs once per module and must return
    plain JSON-able data — it is what the incremental cache stores,
    keyed by the file's content hash.  ``resolve(facts, graph, config)``
    runs every time over *all* modules' facts (cached or fresh) plus the
    reassembled call graph; it must be cheap, because it is never
    cached.  Rules sharing a ``fact_key`` share one extraction (the
    engine extracts once per key per module).
    """

    fact_key: str = ""

    def extract(self, module: ModuleInfo, config: LintConfig) -> dict:
        return {}

    def resolve(
        self, facts: dict[str, dict], graph, config: LintConfig
    ) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        # Engine-less path (direct rule invocation): extract everything,
        # then resolve against a graph built from the same modules.
        from ..index import GraphView, module_graph_facts

        facts = {
            info.module: self.extract(info, config)
            for info in index.modules.values()
        }
        graph = GraphView({
            info.module: module_graph_facts(info, config.worker_dispatchers)
            for info in index.modules.values()
        })
        yield from self.resolve(facts, graph, config)


def register(cls: type) -> type:
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> dict[str, Rule]:
    """id -> rule instance, importing the built-in rule modules once."""
    from . import (  # noqa: F401
        commit_protocol,
        concurrency,
        determinism,
        dtype_flow,
        numpy_hygiene,
        resources,
        seed_provenance,
    )

    return dict(_REGISTRY)


def select_rules(only: Iterable[str] = ()) -> list[Rule]:
    rules = all_rules()
    wanted = tuple(only)
    if not wanted:
        return [rules[rule_id] for rule_id in sorted(rules)]
    unknown = [rule_id for rule_id in wanted if rule_id not in rules]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    return [rules[rule_id] for rule_id in sorted(wanted)]
