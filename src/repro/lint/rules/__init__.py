"""Rule registry.

A rule is a class with ``rule_id``, ``title``, ``category`` and a
``check_module(module, index, config)`` generator (or, for whole-program
rules, ``check_project(index, config)``).  Registration is a decorator so
adding a rule is: write the class, decorate it, document it in
``docs/LINTING.md`` — the engine, CLI ``--list-rules`` and the
suppression validator all pick it up from here.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..config import LintConfig
from ..findings import Finding
from ..index import ModuleInfo, ProjectIndex

_REGISTRY: dict[str, "Rule"] = {}


class Rule:
    """Base class: per-module by default, project-wide if overridden."""

    rule_id: str = ""
    title: str = ""
    category: str = ""

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        for module in index.modules.values():
            yield from self.check_module(module, index, config)

    def finding(self, module_path: str, node, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def register(cls: type) -> type:
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> dict[str, Rule]:
    """id -> rule instance, importing the built-in rule modules once."""
    from . import concurrency, determinism, numpy_hygiene, resources  # noqa: F401

    return dict(_REGISTRY)


def select_rules(only: Iterable[str] = ()) -> list[Rule]:
    rules = all_rules()
    wanted = tuple(only)
    if not wanted:
        return [rules[rule_id] for rule_id in sorted(rules)]
    unknown = [rule_id for rule_id in wanted if rule_id not in rules]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    return [rules[rule_id] for rule_id in sorted(wanted)]
