"""Determinism rules: RNG discipline and wall-clock isolation.

The campaign's bit-identity guarantee (serial == thread == process for
the same seed) holds because every random draw flows from a spawned
per-node stream — a pure function of ``(root_seed, key)`` — and no
simulation code observes the wall clock.  These rules make both
conventions machine-checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig
from ..findings import Finding
from ..index import ModuleInfo, ProjectIndex
from . import Rule, register

#: Legacy global-state RNG entry points (numpy and stdlib).  Any call is
#: a violation: they draw from hidden process-wide state, so results
#: depend on import order and worker scheduling.
_GLOBAL_NP_RANDOM = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_integers",
    "random_sample", "ranf", "sample", "choice", "shuffle", "permutation",
    "bytes", "uniform", "normal", "standard_normal", "poisson",
    "exponential", "binomial", "beta", "gamma", "lognormal",
})

_STDLIB_RANDOM = frozenset({
    "seed", "random", "randint", "randrange", "getrandbits", "choice",
    "choices", "shuffle", "sample", "uniform", "triangular", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "betavariate",
    "paretovariate", "vonmisesvariate", "weibullvariate", "gammavariate",
})

#: Wall-clock reads.  ``time.monotonic``/``perf_counter`` are fine —
#: they measure durations, they never become simulation input.
_TIME_FUNCS = frozenset({"time", "time_ns"})
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve_dotted(dotted: str, module: ModuleInfo) -> str:
    """Expand the leading alias through the module's import table."""
    head, _, rest = dotted.partition(".")
    target = module.imports.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def _call_target(node: ast.Call, module: ModuleInfo) -> str | None:
    dotted = _dotted(node.func)
    if dotted is None:
        return None
    return _resolve_dotted(dotted, module)


def _at_module_scope(tree: ast.Module, call: ast.Call) -> bool:
    """True when the call executes at import time (incl. class bodies)."""
    scopes = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
    stack: list[tuple[ast.AST, bool]] = [(tree, True)]
    while stack:
        node, at_top = stack.pop()
        for child in ast.iter_child_nodes(node):
            if child is call:
                return at_top
            child_top = at_top and not isinstance(child, scopes)
            stack.append((child, child_top))
    return False


@register
class UnseededGlobalRng(Rule):
    """DET001: draws from the process-global RNG (or an unseeded one)."""

    rule_id = "DET001"
    title = "global or unseeded RNG"
    category = "determinism"

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, module)
            if target is None:
                continue
            if target.startswith("numpy.random."):
                leaf = target.rsplit(".", 1)[1]
                if leaf in _GLOBAL_NP_RANDOM:
                    yield self.finding(
                        module.path, node,
                        f"np.random.{leaf} draws from the process-global "
                        f"RNG; spawn a stream via repro.core.rng instead",
                    )
                    continue
            if target.startswith("random.") and target.count(".") == 1:
                leaf = target.rsplit(".", 1)[1]
                if leaf in _STDLIB_RANDOM:
                    yield self.finding(
                        module.path, node,
                        f"random.{leaf} uses the hidden stdlib RNG state; "
                        f"use a seeded np.random.Generator stream",
                    )
                    continue
            if target.endswith(("numpy.random.default_rng", ".default_rng")) \
                    or target == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module.path, node,
                        "default_rng() without a seed is entropy-seeded; "
                        "every campaign draw must trace back to the root seed",
                    )


@register
class ImportTimeRng(Rule):
    """DET002: a generator constructed at import time is shared state."""

    rule_id = "DET002"
    title = "module-level RNG construction"
    category = "determinism"

    _CTORS = ("default_rng", "Generator", "Random")

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, module)
            if target is None:
                continue
            leaf = target.rsplit(".", 1)[-1]
            if leaf not in self._CTORS:
                continue
            if not (
                target.startswith(("numpy.random.", "random."))
                or target.endswith((".default_rng", ".Generator"))
                or target in self._CTORS
            ):
                continue
            if _at_module_scope(module.tree, node):
                yield self.finding(
                    module.path, node,
                    f"{leaf}(...) at module scope creates an RNG shared by "
                    f"every caller and every thread; construct streams "
                    f"per-unit from the campaign seed",
                )


@register
class WallClockRead(Rule):
    """DET003: simulation/storage code reading the wall clock."""

    rule_id = "DET003"
    title = "wall-clock read outside allowlist"
    category = "determinism"

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        if config.is_clock_allowed(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, module)
            if target is None:
                continue
            message = None
            if target.startswith("time."):
                leaf = target.rsplit(".", 1)[1]
                if leaf in _TIME_FUNCS:
                    message = (
                        f"time.{leaf}() reads the wall clock; simulated "
                        f"time must come from the campaign's time base "
                        f"(use time.monotonic/perf_counter for durations)"
                    )
            else:
                leaf = target.rsplit(".", 1)[-1]
                if leaf in _DATETIME_FUNCS and (
                    "datetime" in target or target.endswith((".date." + leaf,))
                ):
                    message = (
                        f"{leaf}() reads the wall clock; convert through "
                        f"repro.core.timeutils so runs stay reproducible"
                    )
            if message is not None:
                yield self.finding(module.path, node, message)
