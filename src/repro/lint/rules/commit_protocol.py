"""Commit-protocol conformance (RES1xx): interprocedural fsync+rename.

RES002 (PR 5) is a per-function heuristic: "rename in a function that
writes but never fsyncs".  It cannot see the split-protocol case this
family exists for — the payload is written in one function and
published (``os.replace``) in another, or the fsync exists but does not
*dominate* the rename.  The typestate layer
(:mod:`repro.lint.typestate`) summarizes each function's protocol
state over origin tokens; this module composes the summaries across the
call graph:

* **RES101** — the renamed payload is not proven fsynced on every path
  to the rename, counting fsyncs performed by callees ("this helper
  syncs its argument" summaries, fixpointed over the graph).  When the
  payload enters through a parameter, the obligation walks up to the
  caller that actually wrote the bytes — the finding anchors at that
  frontier call, not inside the innocent publisher.
* **RES102** — after a successful rename, the *directory* that now
  holds the entry is not fsynced on any normal path to return: the
  rename itself can be lost on power failure.  Directory-fsync
  obligations likewise discharge through callees
  (``repro.core.fsio.fsync_dir``) and walk up through parameters.

Unknown-origin tokens (``?``) stay silent — the rules only speak when
the whole chain is tracked.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..config import LintConfig
from ..findings import Finding
from ..index import GraphView, ModuleInfo
from ..typestate import UNKNOWN, extract_protocol, normalize
from . import SummaryRule, register

#: Quick syntactic gate: only functions touching these names get the
#: (comparatively expensive) typestate interpretation.
_INTERESTING = frozenset({
    "replace", "rename", "fsync", "mkstemp", "write", "writelines",
    "write_bytes", "write_text", "save", "savez", "savez_compressed",
    "dump",
})

_PARAM_RE = re.compile(r"\bp(\d+)\b")


def _is_interesting(fn_node: ast.AST) -> bool:
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else None
            )
            if name in _INTERESTING:
                return True
    return False


def _extract_module_protocols(
    module: ModuleInfo, config: LintConfig
) -> dict:
    functions: dict[str, dict] = {}
    for qual, fn in module.functions.items():
        if isinstance(fn.node, ast.Lambda):
            continue
        if not _is_interesting(fn.node):
            continue
        try:
            summary = extract_protocol(qual, fn.node, module)
        except (RecursionError, RuntimeError):
            continue
        if summary["publishes"] or summary["calls"] or \
                summary["exit_entries"] or summary["has_fsync"]:
            functions[qual] = summary
    return {"functions": functions}


class _Expander:
    """Fixpoint over "does function G fsync its parameter k" summaries,
    then entry-set expansion: which tokens are proven synced by a given
    achievement set."""

    def __init__(self, fns: dict[str, dict], graph: GraphView):
        self.fns = fns
        self.graph = graph
        self.syncs: set[tuple[str, int]] = set()
        changed = True
        while changed:
            changed = False
            for qual, proto in fns.items():
                achieved = self.expand(proto["exit_entries"])
                for i in range(len(graph.params(qual))):
                    key = (qual, i)
                    if key not in self.syncs and f"p{i}" in achieved:
                        self.syncs.add(key)
                        changed = True

    def _param_index(self, callee: str, k: str) -> int | None:
        if k.startswith("kw="):
            names = self.graph.params(callee)
            name = k[3:]
            return names.index(name) if name in names else None
        try:
            return int(k)
        except ValueError:
            return None

    def expand(self, entries) -> set[str]:
        out: set[str] = set()
        for entry in entries:
            if entry.startswith("s:"):
                out.add(entry[2:])
            elif entry.startswith("c:"):
                # c:<target>:<k>:<token>; target contains dots but no
                # colons, k is an index or kw=name.
                rest = entry[2:]
                target, _, tail = rest.partition(":")
                k, _, token = tail.partition(":")
                index = self._param_index(target, k)
                if index is not None and (target, index) in self.syncs:
                    out.add(token)
        return out

    def call_records_to(self, callee: str) -> list[tuple[str, dict]]:
        if not hasattr(self, "_records"):
            records: dict[str, list[tuple[str, dict]]] = {}
            for qual, proto in self.fns.items():
                for rec in proto["calls"]:
                    records.setdefault(rec["target"], []).append(
                        (qual, rec)
                    )
            self._records = records
        return self._records.get(callee, [])

    def bound_arg(self, callee: str, index: int, rec: dict) -> dict | None:
        """The caller-side {token, written} bound to ``callee`` param
        ``index`` at call record ``rec``."""
        if index < len(rec["pos"]):
            return rec["pos"][index]
        names = self.graph.params(callee)
        if index < len(names):
            return rec["kw"].get(names[index])
        return None


def _gather(facts: dict[str, dict]) -> dict[str, dict]:
    fns: dict[str, dict] = {}
    for module_facts in facts.values():
        fns.update(module_facts.get("functions", {}))
    for qual, proto in fns.items():
        for site in proto["publishes"]:
            site["fn"] = qual
    return fns


def _short(qual: str) -> str:
    return qual.rsplit(".", 1)[-1]


@register
class UnsyncedPayloadRename(SummaryRule):
    """RES101: published payload not fsynced on every path to rename."""

    rule_id = "RES101"
    title = "rename of unsynced payload"
    category = "resources"
    fact_key = "protocol"

    def extract(self, module: ModuleInfo, config: LintConfig) -> dict:
        return _extract_module_protocols(module, config)

    def resolve(
        self, facts: dict[str, dict], graph: GraphView, config: LintConfig
    ) -> Iterator[Finding]:
        fns = _gather(facts)
        exp = _Expander(fns, graph)
        emitted: set[tuple] = set()
        for qual, proto in fns.items():
            for site in proto["publishes"]:
                src = site["src"]
                if UNKNOWN in src:
                    continue
                if src in exp.expand(site["before"]):
                    continue
                match = _PARAM_RE.fullmatch(src)
                if match is not None:
                    # Payload enters through a parameter: the obligation
                    # belongs to whoever wrote the bytes.
                    yield from self._blame_callers(
                        exp, graph, qual, int(match.group(1)), site,
                        emitted, frozenset([qual]),
                    )
                elif site["written"] and proto["has_fsync"]:
                    # Local fsync exists but does not dominate the
                    # rename (RES002's blind spot: path-sensitive).
                    path = graph.path_of(qual) or ""
                    key = (path, site["line"], site["col"])
                    if key not in emitted:
                        emitted.add(key)
                        yield self.finding_at(
                            path, site["line"], site["col"],
                            "os.replace of a payload that is not fsynced "
                            "on every path to this point; the fsync must "
                            "dominate the rename",
                        )

    def _blame_callers(
        self, exp: _Expander, graph: GraphView, callee: str, index: int,
        site: dict, emitted: set, seen: frozenset,
    ) -> Iterator[Finding]:
        for caller, rec in exp.call_records_to(callee):
            arg = exp.bound_arg(callee, index, rec)
            if arg is None or UNKNOWN in arg["token"]:
                continue
            token = arg["token"]
            if token in exp.expand(rec["before"]):
                continue
            match = _PARAM_RE.fullmatch(token)
            if match is not None and caller not in seen:
                yield from self._blame_callers(
                    exp, graph, caller, int(match.group(1)), site,
                    emitted, seen | {caller},
                )
                continue
            if not arg["written"]:
                continue
            path = graph.path_of(caller) or ""
            key = (path, rec["line"], rec["col"])
            if key in emitted:
                continue
            emitted.add(key)
            site_path = graph.path_of(site.get("fn", callee)) or \
                graph.path_of(callee) or ""
            yield self.finding_at(
                path, rec["line"], rec["col"],
                f"payload written here is renamed by {_short(callee)} "
                f"({site_path}:{site['line']}) without an fsync before "
                f"this call; fsync the handle (and flush) first",
            )


@register
class UnsyncedDirectoryAfterRename(SummaryRule):
    """RES102: directory not fsynced after the publish rename."""

    rule_id = "RES102"
    title = "rename without directory fsync"
    category = "resources"
    fact_key = "protocol"

    def extract(self, module: ModuleInfo, config: LintConfig) -> dict:
        return _extract_module_protocols(module, config)

    def resolve(
        self, facts: dict[str, dict], graph: GraphView, config: LintConfig
    ) -> Iterator[Finding]:
        fns = _gather(facts)
        exp = _Expander(fns, graph)
        emitted: set[tuple] = set()
        for qual, proto in fns.items():
            for site in proto["publishes"]:
                directory = normalize(site["dst_dir"])
                if UNKNOWN in directory:
                    continue
                if directory in exp.expand(site["after"]):
                    continue
                match = _PARAM_RE.search(directory)
                if match is not None:
                    yield from self._blame_callers(
                        exp, graph, qual, directory, site, emitted,
                        frozenset([qual]),
                    )
                else:
                    path = graph.path_of(qual) or ""
                    key = (path, site["line"], site["col"])
                    if key not in emitted:
                        emitted.add(key)
                        yield self.finding_at(
                            path, site["line"], site["col"],
                            "the directory holding the renamed entry is "
                            "never fsynced after os.replace; the rename "
                            "itself can be lost on crash (use "
                            "repro.core.fsio.fsync_dir)",
                        )

    def _blame_callers(
        self, exp: _Expander, graph: GraphView, callee: str,
        directory: str, site: dict, emitted: set, seen: frozenset,
    ) -> Iterator[Finding]:
        match = _PARAM_RE.search(directory)
        if match is None:
            return
        index = int(match.group(1))
        records = exp.call_records_to(callee)
        if not records:
            # The chain dead-ends (entry point / externally-called
            # function): nobody can discharge the obligation, so anchor
            # back at the publish site itself.
            yield from self._site_finding(graph, site, emitted)
            return
        for caller, rec in records:
            arg = exp.bound_arg(callee, index, rec)
            if arg is None or UNKNOWN in arg["token"]:
                continue
            required = normalize(
                directory.replace(f"p{index}", arg["token"])
            )
            if UNKNOWN in required:
                continue
            if required in exp.expand(rec["after"]):
                continue
            if _PARAM_RE.search(required):
                if caller not in seen:
                    yield from self._blame_callers(
                        exp, graph, caller, required, site, emitted,
                        seen | {caller},
                    )
                continue
            path = graph.path_of(caller) or ""
            key = (path, rec["line"], rec["col"])
            if key in emitted:
                continue
            emitted.add(key)
            yield self.finding_at(
                path, rec["line"], rec["col"],
                f"{_short(callee)} publishes into a directory that is "
                f"never fsynced after this call returns; call "
                f"repro.core.fsio.fsync_dir on it to make the rename "
                f"durable",
            )

    def _site_finding(
        self, graph: GraphView, site: dict, emitted: set
    ) -> Iterator[Finding]:
        path = graph.path_of(site["fn"]) or ""
        key = (path, site["line"], site["col"])
        if key not in emitted:
            emitted.add(key)
            yield self.finding_at(
                path, site["line"], site["col"],
                "the directory holding the renamed entry is never "
                "fsynced after os.replace; the rename itself can be "
                "lost on crash (use repro.core.fsio.fsync_dir)",
            )
