"""NumPy hygiene for hot-path modules.

The ingest and query kernels are benchmark-gated (>=5x ingest, >=3x
pruned queries); the two quiet ways those gates rot are implicit float64
upcasts (``np.zeros(n)`` where an int32 column was meant — 2x memory,
and comparisons start promoting) and ``.tolist()`` round-trips through
Python objects inside per-row code.  Both are legitimate *outside* the
hot set, so these rules fire only on ``LintConfig.hot_paths``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig
from ..findings import Finding
from ..index import ModuleInfo, ProjectIndex
from . import Rule, register
from .determinism import _call_target

#: Constructors whose default dtype is float64 (or value-inferred).
_DTYPE_CTORS = frozenset({
    "numpy.array", "numpy.asarray", "numpy.ascontiguousarray",
    "numpy.empty", "numpy.zeros", "numpy.ones", "numpy.full",
    "numpy.empty_like", "numpy.zeros_like", "numpy.ones_like",
    "numpy.full_like",
})


@register
class ImplicitDtype(Rule):
    """NPY001: hot-path array constructor without an explicit dtype."""

    rule_id = "NPY001"
    title = "implicit dtype in hot path"
    category = "numpy"

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        if not config.is_hot_path(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, module)
            if target not in _DTYPE_CTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            # np.array(x, np.int64) — dtype as the 2nd positional arg.
            if len(node.args) >= 2 and target in (
                "numpy.array", "numpy.asarray", "numpy.empty", "numpy.zeros",
                "numpy.ones", "numpy.ascontiguousarray",
            ):
                continue
            if len(node.args) >= 3 and target == "numpy.full":
                continue
            leaf = target.rsplit(".", 1)[1]
            yield self.finding(
                module.path, node,
                f"np.{leaf}(...) without an explicit dtype in a hot-path "
                f"module; the float64 default silently doubles memory and "
                f"upcasts downstream arithmetic",
            )


@register
class TolistInHotPath(Rule):
    """NPY002: ``.tolist()`` materializes Python objects in a kernel."""

    rule_id = "NPY002"
    title = ".tolist() in hot path"
    category = "numpy"

    def check_module(
        self, module: ModuleInfo, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        if not config.is_hot_path(module.path):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "tolist"
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    module.path, node,
                    ".tolist() in a hot-path module round-trips the column "
                    "through Python objects; keep the computation in the "
                    "array domain (or suppress with the reason it is a "
                    "boundary/presentation conversion)",
                )
