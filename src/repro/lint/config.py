"""Lint configuration: which modules get which special treatment.

The defaults encode this repository's layout.  Tests (and future tools)
construct a :class:`LintConfig` with different path sets to lint fixture
trees, so nothing here hard-codes ``src/repro`` as a filesystem
location — only *relative* path suffixes within whatever tree is being
linted.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_clock_allowlist() -> tuple[str, ...]:
    # Only operator-facing monitoring legitimately reads the wall
    # clock; simulation, analysis, storage — and, since the resilience
    # rework, the whole serving tier (monotonic/perf_counter only) —
    # must not.
    return ("monitoring.py",)


def _default_hot_paths() -> tuple[str, ...]:
    # The vectorized kernels where a silent float64 upcast or a Python
    # list round-trip costs real throughput (benchmarks gate these).
    return (
        "query/engine.py",
        "query/prune.py",
        "logs/columnar.py",
        "logs/frame.py",
        "logs/ingest.py",
        "kernels/",
        # The prediction package: feature extraction runs per refresh
        # over the whole fleet, and its artifacts must be dtype-stable
        # to stay bit-reproducible.
        "ml/",
    )


def _default_dispatchers() -> tuple[str, ...]:
    return ("supervised_map", "parallel_map")


def _default_entry_points() -> tuple[str, ...]:
    # Campaign drivers: seed provenance is checked from these roots in
    # addition to worker-dispatch targets.
    return (
        "repro.faultinjection.campaign.run_campaign",
        "repro.faultinjection.campaign.run_unit",
    )


def _default_blessed_rng() -> tuple[str, ...]:
    # The one module allowed to construct generators from raw material:
    # everything else must go through its stream()/RngFactory surface.
    return ("repro.core.rng",)


@dataclass(frozen=True)
class LintConfig:
    """Knobs for the rule set.

    ``clock_allowlist`` / ``hot_paths`` match on *suffixes* of the
    linted file's path with ``/`` separators (a trailing ``/`` matches a
    whole directory), so they work for any tree layout.
    """

    #: Module suffixes allowed to read the wall clock (DET003).
    clock_allowlist: tuple[str, ...] = field(
        default_factory=_default_clock_allowlist
    )
    #: Module suffixes held to NumPy-hygiene rules (NPY001/NPY002).
    hot_paths: tuple[str, ...] = field(default_factory=_default_hot_paths)
    #: Function names whose first argument is dispatched to workers
    #: (CON002 call-graph roots).
    worker_dispatchers: tuple[str, ...] = field(
        default_factory=_default_dispatchers
    )
    #: Restrict the run to these rule ids (empty = all registered rules).
    rules: tuple[str, ...] = ()
    #: Additional call-graph roots for seed provenance (DET101): the
    #: campaign drivers, on top of worker-dispatch targets.
    entry_points: tuple[str, ...] = field(default_factory=_default_entry_points)
    #: Dotted module prefixes whose RNG constructions are the sanctioned
    #: source of streams; calls *into* them yield derived seeds and
    #: construction sites *inside* them are exempt from DET101.
    blessed_rng_modules: tuple[str, ...] = field(
        default_factory=_default_blessed_rng
    )
    #: Worker threads for the per-module analysis phase (None = cpu count).
    jobs: int | None = None

    def is_blessed_rng_module(self, module: str) -> bool:
        return any(
            module == m or module.startswith(m + ".")
            for m in self.blessed_rng_modules
        )

    def cache_key(self) -> str:
        """Stable digest of every knob that shapes per-module facts."""
        import hashlib

        parts = repr((
            sorted(self.clock_allowlist), sorted(self.hot_paths),
            sorted(self.worker_dispatchers), sorted(self.rules),
            sorted(self.entry_points), sorted(self.blessed_rng_modules),
        ))
        return hashlib.sha256(parts.encode("utf-8")).hexdigest()[:16]

    def path_matches(self, path: str, suffixes: tuple[str, ...]) -> bool:
        norm = path.replace("\\", "/")
        for suffix in suffixes:
            if suffix.endswith("/"):
                if f"/{suffix}" in f"/{norm}/":
                    return True
            elif norm.endswith(suffix):
                return True
        return False

    def is_clock_allowed(self, path: str) -> bool:
        return self.path_matches(path, self.clock_allowlist)

    def is_hot_path(self, path: str) -> bool:
        return self.path_matches(path, self.hot_paths)
