"""Reporters: text, JSON (v2 + legacy v1), and SARIF 2.1.0.

The JSON contract moved to ``schema_version`` 2 with the incremental
engine: the payload now carries the analysis counters and timings CI
asserts on.  v1 (the PR-5 shape, with its ``version`` key) is frozen
and stays available for older tooling via ``--format json-v1``:

.. code-block:: json

    {
      "schema_version": 2,
      "clean": false,
      "files_scanned": 104,
      "analysis": {"cold": true, "modules_total": 104,
                   "modules_analyzed": 104, "modules_cached": 0,
                   "jobs": 4, "duration_s": 3.2,
                   "changed": ["..."], "dirty": ["..."]},
      "findings": [{"rule": "...", "path": "...", "line": 1, "col": 1,
                    "message": "...", "suppressed": false, "reason": ""}],
      "suppressed": [...],
      "errors": [{"path": "...", "message": "..."}],
      "summary": {"by_rule": {"DET001": 2}}
    }

SARIF output follows the OASIS 2.1.0 schema closely enough for GitHub
code scanning upload: one run, one driver, one rule descriptor per
distinct rule id, one result per live finding (suppressed findings are
carried with ``suppressions`` entries as the spec intends).
"""

from __future__ import annotations

import json

from .engine import LintResult
from .rules import all_rules

JSON_SCHEMA_VERSION = 2
JSON_SCHEMA_VERSION_LEGACY = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-lint"


def render_text(result: LintResult, *, show_suppressed: bool = False) -> str:
    lines: list[str] = []
    for error in result.errors:
        where = f"{error.path}: " if error.path else ""
        lines.append(f"error: {where}{error.message}")
    for finding in result.findings:
        lines.append(f"{finding.location()} {finding.rule} {finding.message}")
    if show_suppressed:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location()} {finding.rule} suppressed "
                f"({finding.reason})"
            )
    n = len(result.findings)
    lines.append(
        f"{result.summary.files_scanned} files scanned: "
        + (
            f"{n} finding{'s' if n != 1 else ''}"
            if n
            else "clean"
        )
        + (
            f", {len(result.suppressed)} suppressed"
            if result.suppressed
            else ""
        )
    )
    analysis = result.analysis
    if analysis:
        lines.append(
            f"analysis: {analysis.get('modules_analyzed', 0)} analyzed, "
            f"{analysis.get('modules_cached', 0)} cached "
            f"({'cold' if analysis.get('cold') else 'warm'}, "
            f"{analysis.get('duration_s', 0.0):.2f}s)"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "clean": not result.findings and not result.errors,
        "files_scanned": result.summary.files_scanned,
        "analysis": result.analysis,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "errors": [e.to_dict() for e in result.errors],
        "summary": {"by_rule": dict(sorted(result.summary.by_rule.items()))},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_json_v1(result: LintResult) -> str:
    """The frozen PR-5 payload, byte-compatible for old consumers."""
    payload = {
        "version": JSON_SCHEMA_VERSION_LEGACY,
        "clean": not result.findings and not result.errors,
        "files_scanned": result.summary.files_scanned,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "errors": [e.to_dict() for e in result.errors],
        "summary": {"by_rule": dict(sorted(result.summary.by_rule.items()))},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_result(finding, *, suppressed: bool) -> dict:
    entry = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col,
                },
            },
        }],
    }
    if suppressed:
        entry["suppressions"] = [{
            "kind": "inSource",
            "justification": finding.reason,
        }]
    return entry


def render_sarif(result: LintResult) -> str:
    registry = all_rules()
    used = sorted(
        {f.rule for f in result.findings}
        | {f.rule for f in result.suppressed}
    )
    descriptors = []
    for rule_id in used:
        rule = registry.get(rule_id)
        descriptors.append({
            "id": rule_id,
            "name": rule.title if rule is not None else rule_id,
            "shortDescription": {
                "text": rule.title if rule is not None else rule_id,
            },
            "properties": {
                "category": rule.category if rule is not None else "lint",
            },
        })
    results = [
        _sarif_result(f, suppressed=False) for f in result.findings
    ] + [
        _sarif_result(f, suppressed=True) for f in result.suppressed
    ]
    invocation = {
        "executionSuccessful": not result.errors,
    }
    if result.errors:
        invocation["toolExecutionNotifications"] = [
            {
                "level": "error",
                "message": {"text": e.message},
                **(
                    {"locations": [{
                        "physicalLocation": {
                            "artifactLocation": {"uri": e.path},
                        },
                    }]}
                    if e.path else {}
                ),
            }
            for e in result.errors
        ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri": "https://example.invalid/repro-lint",
                    "rules": descriptors,
                },
            },
            "invocations": [invocation],
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
