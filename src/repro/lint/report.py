"""Reporters: ``file:line:col RULE-ID message`` text, and JSON.

The JSON schema (``version`` 1) is a stable contract — the CI gate and
any future tooling parse it:

.. code-block:: json

    {
      "version": 1,
      "clean": false,
      "files_scanned": 104,
      "findings": [{"rule": "...", "path": "...", "line": 1, "col": 1,
                    "message": "...", "suppressed": false, "reason": ""}],
      "suppressed": [...],
      "errors": [{"path": "...", "message": "..."}],
      "summary": {"by_rule": {"DET001": 2}}
    }
"""

from __future__ import annotations

import json

from .engine import LintResult

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, *, show_suppressed: bool = False) -> str:
    lines: list[str] = []
    for error in result.errors:
        where = f"{error.path}: " if error.path else ""
        lines.append(f"error: {where}{error.message}")
    for finding in result.findings:
        lines.append(f"{finding.location()} {finding.rule} {finding.message}")
    if show_suppressed:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location()} {finding.rule} suppressed "
                f"({finding.reason})"
            )
    n = len(result.findings)
    lines.append(
        f"{result.summary.files_scanned} files scanned: "
        + (
            f"{n} finding{'s' if n != 1 else ''}"
            if n
            else "clean"
        )
        + (
            f", {len(result.suppressed)} suppressed"
            if result.suppressed
            else ""
        )
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "clean": not result.findings and not result.errors,
        "files_scanned": result.summary.files_scanned,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "errors": [e.to_dict() for e in result.errors],
        "summary": {"by_rule": dict(sorted(result.summary.by_rule.items()))},
    }
    return json.dumps(payload, indent=2, sort_keys=True)
