"""Incremental analysis cache: per-module facts keyed by content hash.

Everything expensive the engine does is per-module — parsing, the
intraprocedural dataflow passes, summary extraction, per-module rule
findings, suppression tables.  All of it is deterministic in (file
bytes, lint config, rule set), so one JSON file memoizes it:

* an entry is keyed by the file's *path label* and guarded by the
  sha256 of its bytes — edit the file, lose the entry;
* the whole cache is guarded by a header of (cache format version,
  config fingerprint, rule ids) — change any knob, lose everything;
* cross-module phases (call-graph resolve, reachability, suppression
  matching) are cheap and re-run every time, so stale *global* state
  cannot be served from here.  Invalidation along reverse call-graph
  edges is the engine's job: it re-analyzes changed modules **and**
  their reverse-dependency closure even when the dependents' bytes are
  unchanged, so interprocedural findings never outlive the edit that
  caused them.

The cache file itself is committed with the same fsync+rename protocol
the linter enforces on everyone else.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from ..core.fsio import fsync_dir

#: Bump when the entry layout (or anything feeding it) changes shape.
CACHE_VERSION = 2


def content_sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class LintCache:
    """One lint tree's memoized per-module analysis."""

    def __init__(self, path: Path | None = None):
        self.path = path
        self.entries: dict[str, dict] = {}
        self.loaded_from_disk = False

    # -- persistence ---------------------------------------------------------

    @classmethod
    def load(cls, path: Path | None, fingerprint: str) -> "LintCache":
        """Read the cache; any mismatch or damage yields an empty one."""
        cache = cls(path)
        if path is None or not path.exists():
            return cache
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, ValueError):
            return cache
        if not isinstance(data, dict):
            return cache
        if data.get("version") != CACHE_VERSION:
            return cache
        if data.get("fingerprint") != fingerprint:
            return cache
        entries = data.get("entries")
        if isinstance(entries, dict):
            cache.entries = entries
            cache.loaded_from_disk = True
        return cache

    def save(self, fingerprint: str) -> None:
        if self.path is None:
            return
        payload = json.dumps({
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "entries": self.entries,
        }, sort_keys=True)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.path.parent, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
                fsync_dir(self.path.parent)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            pass  # a cache that cannot be written is just a slow run

    # -- entry access --------------------------------------------------------

    def fresh_entry(self, label: str, sha: str) -> dict | None:
        """The stored entry for ``label`` iff its content hash matches."""
        entry = self.entries.get(label)
        if entry is not None and entry.get("sha") == sha:
            return entry
        return None

    def put(self, label: str, entry: dict) -> None:
        self.entries[label] = entry

    def prune(self, labels: set[str]) -> None:
        """Drop entries for files no longer part of the lint tree."""
        for stale in set(self.entries) - labels:
            del self.entries[stale]


def default_cache_path(root: Path | None = None) -> Path:
    """Where the CLI keeps the cache unless told otherwise.

    ``REPRO_LINT_CACHE_DIR`` wins; otherwise the cache lives under the
    user cache home so a read-only checkout still lints fast.
    """
    env = os.environ.get("REPRO_LINT_CACHE_DIR")
    if env:
        base = Path(env)
    else:
        xdg = os.environ.get("XDG_CACHE_HOME")
        base = Path(xdg) if xdg else Path.home() / ".cache"
        base = base / "repro-lint"
    tag = "default"
    if root is not None:
        tag = hashlib.sha256(
            str(Path(root).resolve()).encode("utf-8")
        ).hexdigest()[:16]
    return base / f"{tag}.json"
