"""Symbol and call-graph index over the linted tree.

One pass per file builds a :class:`ModuleInfo` — imports (with aliases
resolved), functions by qualified name, module-level bindings classified
as mutable or immutable — and a best-effort static call graph across the
project.  Resolution is deliberately conservative: a call edge is only
recorded when the target can be tied to a definition through an explicit
import or a same-module name, so the concurrency rule's reachability
walk under-approximates rather than hallucinating edges.
"""

from __future__ import annotations

import ast
import threading
from dataclasses import dataclass, field
from pathlib import Path

#: Literal AST nodes that cannot be mutated through a module-level name.
_IMMUTABLE_NODES = (ast.Constant,)


def param_names(node: ast.AST) -> list[str]:
    """Positional-or-keyword parameter names in binding order."""
    args = node.args
    return [
        a.arg
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs))
    ]


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str               # module-qualified, e.g. "repro.cache.FileLock.acquire"
    module: str
    node: ast.AST               # FunctionDef | AsyncFunctionDef | Lambda
    lineno: int
    #: Names this function's body calls, resolved to project qualnames
    #: where possible (unresolvable calls are dropped, not guessed).
    calls: list[str] = field(default_factory=list)
    #: True for functions passed as ``initializer=`` to a dispatcher —
    #: per-process setup is *expected* to write module state once.
    is_initializer: bool = False

    @property
    def params(self) -> list[str]:
        return param_names(self.node)


@dataclass
class ModuleInfo:
    """Everything the rules need to know about one parsed file."""

    path: str                   # as reported in findings (relative, "/" separators)
    module: str                 # dotted module name ("repro.logs.store")
    tree: ast.Module
    source: str
    #: local alias -> imported dotted target ("np" -> "numpy",
    #: "stream" -> "repro.core.rng.stream").
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level assigned names -> "mutable" | "immutable" | "unknown".
    module_state: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ProjectIndex:
    """All modules plus the cross-module call graph."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)   # by path
    by_module: dict[str, ModuleInfo] = field(default_factory=dict)  # by dotted name
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Worker-dispatch roots: qualnames of functions passed as the
    #: mapped ``fn`` to a dispatcher (plus lambdas, indexed under a
    #: synthetic qualname).
    worker_roots: list[str] = field(default_factory=list)

    def reachable_from_workers(self) -> set[str]:
        """Function qualnames transitively callable from a worker."""
        seen: set[str] = set()
        frontier = [root for root in self.worker_roots if root in self.functions]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for callee in self.functions[name].calls:
                if callee in self.functions and callee not in seen:
                    frontier.append(callee)
        return seen


# ---------------------------------------------------------------------------
# Per-module indexing
# ---------------------------------------------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name, walking up while ``__init__.py`` exists."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _resolve_relative(module: str, level: int, target: str | None) -> str:
    """Resolve ``from ..x import y`` against the importing module."""
    base = module.split(".")
    # level 1 strips the module's own name, each further level one package.
    base = base[: len(base) - level] if level <= len(base) else []
    if target:
        base.append(target)
    return ".".join(base)


#: ``compile(..., PyCF_ONLY_AST)`` is not thread-safe on CPython 3.11:
#: the AST-constructor recursion counter lives in per-interpreter (not
#: per-thread) state, so two pool workers parsing at once can race it
#: into ``SystemError: AST constructor recursion depth mismatch``.
#: Parsing holds the GIL anyway, so serializing it costs nothing.
_PARSE_LOCK = threading.Lock()


def index_module(path_label: str, module: str, source: str) -> ModuleInfo:
    """Parse and index one file (raises ``SyntaxError`` on bad source)."""
    with _PARSE_LOCK:
        tree = ast.parse(source, filename=path_label)
    info = ModuleInfo(path=path_label, module=module, tree=tree, source=source)
    _collect_imports(info)
    _collect_module_state(info)
    _collect_functions(info)
    return info


def _collect_imports(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = (
                _resolve_relative(info.module, node.level, node.module)
                if node.level
                else (node.module or "")
            )
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                info.imports[alias.asname or alias.name] = target


def _classify_binding(value: ast.expr) -> str:
    if isinstance(value, _IMMUTABLE_NODES):
        return "immutable"
    if isinstance(value, ast.Tuple) and all(
        isinstance(elt, _IMMUTABLE_NODES) for elt in value.elts
    ):
        return "immutable"
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return "mutable"
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name in ("dict", "list", "set", "defaultdict", "deque", "Counter",
                    "OrderedDict", "bytearray"):
            return "mutable"
    return "unknown"


def _collect_module_state(info: ModuleInfo) -> None:
    for node in info.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                info.module_state[target.id] = _classify_binding(value)


class _CallCollector(ast.NodeVisitor):
    """Record resolvable call targets inside one function body."""

    def __init__(self, info: ModuleInfo, out: list[str]):
        self.info = info
        self.out = out

    def visit_Call(self, node: ast.Call) -> None:
        target = resolve_call_target(node.func, self.info)
        if target is not None:
            self.out.append(target)
        self.generic_visit(node)

    # Nested defs get their own FunctionInfo; don't double-count their
    # calls as the parent's.  (Lambdas stay inline: they run when the
    # enclosing function runs often enough that attributing their calls
    # to the parent is the conservative choice.)
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass


def resolve_call_target(func: ast.expr, info: ModuleInfo) -> str | None:
    """Dotted project-level target of a call expression, if derivable.

    ``f(...)`` resolves through the import table or to a same-module
    definition; ``mod.f(...)`` resolves when ``mod`` is an imported
    module.  Anything else (attribute calls on objects, subscripts)
    returns ``None``.
    """
    if isinstance(func, ast.Name):
        imported = info.imports.get(func.id)
        if imported is not None:
            return imported
        return f"{info.module}.{func.id}"
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        base = info.imports.get(func.value.id)
        if base is not None:
            return f"{base}.{func.attr}"
    return None


def _collect_functions(info: ModuleInfo) -> None:
    def visit(body: list[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{node.name}"
                fn = FunctionInfo(
                    qualname=qual, module=info.module, node=node,
                    lineno=node.lineno,
                )
                collector = _CallCollector(info, fn.calls)
                for stmt in node.body:
                    collector.visit(stmt)
                info.functions[qual] = fn
                visit(node.body, qual)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, f"{prefix}.{node.name}")
            elif isinstance(node, (ast.If, ast.Try)):
                visit(node.body, prefix)
                for handler in getattr(node, "handlers", ()):
                    visit(handler.body, prefix)
                visit(node.orelse, prefix)
                visit(getattr(node, "finalbody", []), prefix)

    visit(info.tree.body, info.module)


# ---------------------------------------------------------------------------
# Project-level assembly
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# Serializable graph facts + the resolve-time view over them
# ---------------------------------------------------------------------------


def module_graph_facts(
    info: ModuleInfo, dispatchers: tuple[str, ...]
) -> dict:
    """Call-graph facts of one module as plain JSON-able data.

    This is what the incremental cache stores: enough to rebuild the
    project call graph (and the worker-dispatch roots) without re-parsing
    unchanged files.
    """
    functions: dict[str, dict] = {}
    for qual, fn in info.functions.items():
        functions[qual] = {
            "params": param_names(fn.node),
            "calls": sorted(set(fn.calls)),
            "lineno": fn.lineno,
        }
    roots: list[str] = []
    initializers: list[str] = []
    lambda_count = 0
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if name not in dispatchers:
            continue
        for kw in node.keywords:
            if kw.arg == "initializer":
                target = resolve_call_target(kw.value, info)
                if target is not None:
                    initializers.append(target)
        if not node.args:
            continue
        fn_arg = node.args[0]
        if isinstance(fn_arg, ast.Lambda):
            qual = f"{info.module}.<lambda:{fn_arg.lineno}:{lambda_count}>"
            lambda_count += 1
            calls: list[str] = []
            _CallCollector(info, calls).visit(fn_arg.body)
            functions[qual] = {
                "params": param_names(fn_arg),
                "calls": sorted(set(calls)),
                "lineno": fn_arg.lineno,
            }
            roots.append(qual)
        else:
            target = resolve_call_target(fn_arg, info)
            if target is not None:
                roots.append(target)
    return {
        "module": info.module,
        "path": info.path,
        "functions": functions,
        "worker_roots": sorted(set(roots)),
        "initializers": sorted(set(initializers)),
    }


class GraphView:
    """Project call graph reassembled from per-module graph facts.

    Built fresh each run from serialized facts (cached or just
    extracted) — never from ASTs — so a warm run pays only for the
    modules it actually re-analyzed.
    """

    def __init__(self, facts_by_module: dict[str, dict]):
        self.functions: dict[str, dict] = {}
        self.worker_roots: list[str] = []
        self.initializers: set[str] = set()
        for facts in facts_by_module.values():
            for qual, fn in facts["functions"].items():
                self.functions[qual] = {
                    **fn, "module": facts["module"], "path": facts["path"],
                }
            self.worker_roots.extend(facts["worker_roots"])
            self.initializers.update(facts["initializers"])
        self._callers: dict[str, list[str]] | None = None

    def params(self, qual: str) -> list[str]:
        fn = self.functions.get(qual)
        return fn["params"] if fn else []

    def path_of(self, qual: str) -> str | None:
        fn = self.functions.get(qual)
        return fn["path"] if fn else None

    def module_of(self, qual: str) -> str | None:
        fn = self.functions.get(qual)
        return fn["module"] if fn else None

    def line_of(self, qual: str) -> int:
        fn = self.functions.get(qual)
        return fn["lineno"] if fn else 1

    def callers_of(self, qual: str) -> list[str]:
        if self._callers is None:
            callers: dict[str, list[str]] = {}
            for caller, fn in self.functions.items():
                for callee in fn["calls"]:
                    callers.setdefault(callee, []).append(caller)
            self._callers = callers
        return self._callers.get(qual, [])

    def reachable_from(self, roots: list[str]) -> set[str]:
        seen: set[str] = set()
        frontier = [r for r in roots if r in self.functions]
        while frontier:
            qual = frontier.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for callee in self.functions[qual]["calls"]:
                if callee in self.functions and callee not in seen:
                    frontier.append(callee)
        return seen

    def reverse_module_closure(self, changed: set[str]) -> set[str]:
        """Modules whose analysis may be stale when ``changed`` modules
        change: the changed set plus everything that calls into it,
        transitively (summaries flow callee -> caller)."""
        module_callers: dict[str, set[str]] = {}
        for caller, fn in self.functions.items():
            caller_mod = fn["module"]
            for callee in fn["calls"]:
                callee_fn = self.functions.get(callee)
                if callee_fn is None:
                    continue
                callee_mod = callee_fn["module"]
                if callee_mod != caller_mod:
                    module_callers.setdefault(callee_mod, set()).add(
                        caller_mod
                    )
        out = set(changed)
        frontier = list(changed)
        while frontier:
            mod = frontier.pop()
            for dep in module_callers.get(mod, ()):
                if dep not in out:
                    out.add(dep)
                    frontier.append(dep)
        return out


def build_index(
    modules: list[ModuleInfo], worker_dispatchers: tuple[str, ...]
) -> ProjectIndex:
    index = ProjectIndex()
    for info in modules:
        index.modules[info.path] = info
        index.by_module[info.module] = info
        index.functions.update(info.functions)
    for info in modules:
        _collect_worker_roots(info, index, worker_dispatchers)
    return index


def _collect_worker_roots(
    info: ModuleInfo, index: ProjectIndex, dispatchers: tuple[str, ...]
) -> None:
    lambda_count = 0
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if name not in dispatchers:
            continue
        # Initializers are per-process setup: exempt from CON002, and
        # their callees are not traversed as worker code.
        for kw in node.keywords:
            if kw.arg == "initializer":
                target = resolve_call_target(kw.value, info)
                if target is not None and target in index.functions:
                    index.functions[target].is_initializer = True
        if not node.args:
            continue
        fn_arg = node.args[0]
        if isinstance(fn_arg, ast.Lambda):
            qual = f"{info.module}.<lambda:{fn_arg.lineno}:{lambda_count}>"
            lambda_count += 1
            lam = FunctionInfo(
                qualname=qual, module=info.module, node=fn_arg,
                lineno=fn_arg.lineno,
            )
            collector = _CallCollector(info, lam.calls)
            collector.visit(fn_arg.body)
            info.functions[qual] = lam
            index.functions[qual] = lam
            index.worker_roots.append(qual)
        else:
            target = resolve_call_target(fn_arg, info)
            if target is not None:
                index.worker_roots.append(target)
